//! # qrec-nn — sequence models, training, and decoding
//!
//! The deep-learning layer of the `qrec` reproduction, built entirely on
//! [`qrec_tensor`]'s autodiff:
//!
//! * [`params`] — parameter store + per-graph binding (enables the
//!   paper's fine-tuning: clone the store, append a head, keep encoder
//!   ids valid).
//! * [`layers`] / [`attention`] — linear, embedding, layer norm, dropout,
//!   feed-forward, sinusoidal positions, multi-head attention.
//! * [`transformer`], [`convs2s`], [`gru`] — the three seq2seq
//!   architectures behind the [`seq2seq::Seq2Seq`] trait.
//! * [`adam`] / [`trainer`] — Adam with clipping; mini-batch training
//!   with validation early stopping, for both seq2seq and classification.
//! * [`mod@decode`] — greedy, beam, diverse-beam, and stochastic decoding,
//!   returning per-token probabilities for the paper's search-tree
//!   fragment aggregation.
//! * [`incremental`] — per-architecture KV/window/hidden decode caches
//!   that let the beam family run one batched forward per step instead
//!   of a full-prefix forward per hypothesis.
//! * [`classifier`] — the two-layer template classification head
//!   (Section 4.1.2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adam;
pub mod attention;
pub mod classifier;
pub mod convs2s;
pub mod decode;
pub mod gru;
pub mod incremental;
pub mod layers;
pub mod params;
pub mod quant;
pub mod schedule;
pub mod seq2seq;
pub mod trainer;
pub mod transformer;

pub use adam::{Adam, AdamConfig};
pub use classifier::ClassifierHead;
pub use convs2s::{ConvS2S, ConvS2SConfig};
pub use decode::{decode, Hypothesis, Strategy};
pub use gru::{GruConfig, GruSeq2Seq};
pub use incremental::DecodeState;
pub use params::{Binding, Fwd, ParamId, Params};
pub use quant::QuantParams;
pub use schedule::LrSchedule;
pub use seq2seq::Seq2Seq;
pub use trainer::{
    train_classifier, train_seq2seq, try_train_classifier, try_train_seq2seq, EncodedPair,
    LabeledSeq, TrainConfig, TrainError, TrainReport,
};
pub use transformer::{Transformer, TransformerConfig};
