//! Basic neural layers: linear, embedding, layer norm, dropout,
//! position-wise feed-forward, and sinusoidal positional encodings.

use crate::params::{Fwd, ParamId, Params};
use qrec_tensor::{init, NodeId, Tensor};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fully connected layer `y = x·W + b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    /// Input width (for diagnostics).
    pub d_in: usize,
    /// Output width.
    pub d_out: usize,
}

impl Linear {
    /// Create a linear layer with bias.
    pub fn new(
        params: &mut Params,
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = params.add(format!("{name}.w"), init::xavier_uniform(d_in, d_out, rng));
        let b = params.add(format!("{name}.b"), Tensor::zeros(1, d_out));
        Linear {
            w,
            b: Some(b),
            d_in,
            d_out,
        }
    }

    /// Create a linear layer without bias.
    pub fn new_no_bias(
        params: &mut Params,
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = params.add(format!("{name}.w"), init::xavier_uniform(d_in, d_out, rng));
        Linear {
            w,
            b: None,
            d_in,
            d_out,
        }
    }

    /// Apply to `x` of shape `n × d_in`.
    ///
    /// When the parameter store carries an int8 sidecar
    /// ([`Params::quantize`]) and the pass is not training, the
    /// projection runs through the quantized GEMM
    /// ([`qrec_tensor::qi8::qgemm`]): the weight's pre-packed int8
    /// panels against dynamically per-row-quantized activations, with
    /// the dequantized f32 result entering the graph as a constant
    /// (inference builds no gradients, so a leaf is sufficient). Stores
    /// without a sidecar — and every training pass — take the f32
    /// matmul path bitwise unchanged.
    pub fn forward(&self, fwd: &mut Fwd<'_>, x: NodeId) -> NodeId {
        let y = match (
            fwd.training,
            fwd.params.quant().and_then(|q| q.weight(self.w)),
        ) {
            (false, Some(qw)) => {
                let packed = std::sync::Arc::clone(&qw.packed);
                let xv = fwd.graph.value(x);
                let n = xv.rows();
                let data = qrec_tensor::qi8::qgemm(xv.data(), &packed, n);
                fwd.constant(Tensor::from_vec(n, self.d_out, data))
            }
            _ => {
                let w = fwd.param(self.w);
                fwd.graph.matmul(x, w)
            }
        };
        match self.b {
            Some(b) => {
                let b = fwd.param(b);
                fwd.graph.add_bias(y, b)
            }
            None => y,
        }
    }
}

/// Token embedding table.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Embedding {
    weight: ParamId,
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl Embedding {
    /// Create an embedding with `N(0, 0.02)` initialisation.
    pub fn new(
        params: &mut Params,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let weight = params.add(format!("{name}.emb"), init::normal(vocab, dim, 0.1, rng));
        Embedding { weight, vocab, dim }
    }

    /// Look up a sequence of token ids: returns `len(ids) × dim`.
    ///
    /// When the parameter store carries an int8 sidecar and the pass is
    /// not training, the looked-up rows are gathered straight from the
    /// int8 table ([`crate::quant::QEmbed::gather`]) — only the
    /// requested rows are dequantized, and the f32 table never
    /// materialises. Training passes and stores without a sidecar take
    /// the f32 gather bitwise unchanged.
    pub fn forward(&self, fwd: &mut Fwd<'_>, ids: &[usize]) -> NodeId {
        match (
            fwd.training,
            fwd.params.quant().and_then(|q| q.embed(self.weight)),
        ) {
            (false, Some(qe)) => {
                let rows = qe.gather(ids);
                fwd.constant(Tensor::from_vec(ids.len(), self.dim, rows))
            }
            _ => {
                let w = fwd.param(self.weight);
                fwd.graph.embedding(w, ids)
            }
        }
    }
}

/// Layer normalisation with learnable gain/bias.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
}

impl LayerNorm {
    /// Create for feature width `d`.
    pub fn new(params: &mut Params, name: &str, d: usize) -> Self {
        LayerNorm {
            gamma: params.add(format!("{name}.gamma"), Tensor::ones(1, d)),
            beta: params.add(format!("{name}.beta"), Tensor::zeros(1, d)),
        }
    }

    /// Apply row-wise normalisation.
    pub fn forward(&self, fwd: &mut Fwd<'_>, x: NodeId) -> NodeId {
        let g = fwd.param(self.gamma);
        let b = fwd.param(self.beta);
        fwd.graph.layer_norm(x, g, b)
    }
}

/// Inverted dropout: active only in training mode.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
}

impl Dropout {
    /// Create with drop probability `p` (0 disables).
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p }
    }

    /// Apply dropout to `x`.
    pub fn forward(&self, fwd: &mut Fwd<'_>, x: NodeId) -> NodeId {
        if !fwd.training || self.p == 0.0 {
            return x;
        }
        let (rows, cols) = fwd.graph.value(x).shape();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(rows, cols);
        for v in mask.data_mut() {
            if fwd.rng.gen::<f32>() < keep {
                *v = scale;
            }
        }
        let m = fwd.constant(mask);
        fwd.graph.mul(x, m)
    }
}

/// Position-wise feed-forward block: `Linear → ReLU → Dropout → Linear`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeedForward {
    lin1: Linear,
    lin2: Linear,
    drop: Dropout,
}

impl FeedForward {
    /// Create with hidden width `d_ff`.
    pub fn new(
        params: &mut Params,
        name: &str,
        d: usize,
        d_ff: usize,
        dropout: f32,
        rng: &mut StdRng,
    ) -> Self {
        FeedForward {
            lin1: Linear::new(params, &format!("{name}.ff1"), d, d_ff, rng),
            lin2: Linear::new(params, &format!("{name}.ff2"), d_ff, d, rng),
            drop: Dropout::new(dropout),
        }
    }

    /// Apply the block.
    pub fn forward(&self, fwd: &mut Fwd<'_>, x: NodeId) -> NodeId {
        let h = self.lin1.forward(fwd, x);
        let h = fwd.graph.relu(h);
        let h = self.drop.forward(fwd, h);
        self.lin2.forward(fwd, h)
    }
}

/// The sinusoidal positional encoding of the transformer paper, for
/// positions `0..len` and dimension `d`.
pub fn positional_encoding(len: usize, d: usize) -> Tensor {
    let mut pe = Tensor::zeros(len, d);
    for pos in 0..len {
        for i in 0..d {
            let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / d as f32);
            let v = if i % 2 == 0 { angle.sin() } else { angle.cos() };
            pe.set(pos, i, v);
        }
    }
    pe
}

/// A single row of [`positional_encoding`]: the encoding of `pos` alone.
/// Bitwise identical to `positional_encoding(n, d).row(pos)` for any
/// `n > pos` (each row is a pure function of its position) — the
/// incremental decoder uses this to avoid rebuilding the whole table
/// every step.
pub fn positional_encoding_row(pos: usize, d: usize) -> Vec<f32> {
    let mut row = vec![0.0; d];
    for (i, slot) in row.iter_mut().enumerate() {
        let angle = pos as f32 / 10_000f32.powf((2 * (i / 2)) as f32 / d as f32);
        *slot = if i % 2 == 0 { angle.sin() } else { angle.cos() };
    }
    row
}

/// A causal attention mask: `len × len` with 0 on/below the diagonal and
/// a large negative value above it (added to logits before softmax).
pub fn causal_mask(len: usize) -> Tensor {
    let mut m = Tensor::zeros(len, len);
    for r in 0..len {
        for c in (r + 1)..len {
            m.set(r, c, -1e9);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{forward_eval, Params};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut params = Params::new();
        let mut r = rng();
        let lin = Linear::new(&mut params, "l", 4, 3, &mut r);
        assert_eq!(params.len(), 2);
        let mut r2 = rng();
        let out_shape = forward_eval(&params, &mut r2, |fwd| {
            let x = fwd.constant(Tensor::ones(2, 4));
            let y = lin.forward(fwd, x);
            fwd.graph.value(y).shape()
        });
        assert_eq!(out_shape, (2, 3));
    }

    #[test]
    fn embedding_rows_match_table() {
        let mut params = Params::new();
        let mut r = rng();
        let emb = Embedding::new(&mut params, "e", 10, 4, &mut r);
        let row2 = params.value(crate::params::ParamId(0)).row(2).to_vec();
        let mut r2 = rng();
        let got = forward_eval(&params, &mut r2, |fwd| {
            let e = emb.forward(fwd, &[2, 2, 5]);
            fwd.graph.value(e).row(0).to_vec()
        });
        assert_eq!(got, row2);
    }

    #[test]
    fn layer_norm_normalises_rows() {
        let mut params = Params::new();
        let ln = LayerNorm::new(&mut params, "ln", 4);
        let mut r = rng();
        let (mean, var) = forward_eval(&params, &mut r, |fwd| {
            let x = fwd.constant(Tensor::from_vec(1, 4, vec![1., 2., 3., 10.]));
            let y = ln.forward(fwd, x);
            let row = fwd.graph.value(y).row(0);
            let mean = row.iter().sum::<f32>() / 4.0;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            (mean, var)
        });
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn dropout_inactive_in_eval_mode() {
        let params = Params::new();
        let d = Dropout::new(0.5);
        let mut r = rng();
        let same = forward_eval(&params, &mut r, |fwd| {
            let x = fwd.constant(Tensor::ones(2, 8));
            let y = d.forward(fwd, x);
            fwd.graph.value(y).data().iter().all(|&v| v == 1.0)
        });
        assert!(same);
    }

    #[test]
    fn dropout_zeroes_and_rescales_in_training() {
        let mut params = Params::new();
        let _ = &mut params;
        let d = Dropout::new(0.5);
        let mut graph = qrec_tensor::Graph::new();
        let mut bind = crate::params::Binding::new(0);
        let mut r = rng();
        let mut fwd = Fwd {
            graph: &mut graph,
            params: &params,
            bind: &mut bind,
            rng: &mut r,
            training: true,
        };
        let x = fwd.constant(Tensor::ones(10, 10));
        let y = d.forward(&mut fwd, x);
        let data = graph.value(y).data();
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        let twos = data.iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + twos, 100);
        assert!(zeros > 20 && zeros < 80, "zeros {zeros}");
    }

    #[test]
    fn positional_encoding_properties() {
        let pe = positional_encoding(8, 6);
        assert_eq!(pe.shape(), (8, 6));
        // Position 0: sin(0)=0 at even dims, cos(0)=1 at odd dims.
        assert_eq!(pe.get(0, 0), 0.0);
        assert_eq!(pe.get(0, 1), 1.0);
        // Distinct positions get distinct encodings.
        assert_ne!(pe.row(1), pe.row(2));
        assert!(pe.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn positional_encoding_row_matches_table_bitwise() {
        let pe = positional_encoding(9, 6);
        for pos in 0..9 {
            assert_eq!(positional_encoding_row(pos, 6), pe.row(pos));
        }
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = causal_mask(3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert!(m.get(0, 1) < -1e8);
        assert!(m.get(0, 2) < -1e8);
        assert!(m.get(1, 2) < -1e8);
    }

    #[test]
    fn feed_forward_shapes() {
        let mut params = Params::new();
        let mut r = rng();
        let ff = FeedForward::new(&mut params, "ff", 4, 16, 0.0, &mut r);
        let mut r2 = rng();
        let shape = forward_eval(&params, &mut r2, |fwd| {
            let x = fwd.constant(Tensor::ones(3, 4));
            let y = ff.forward(fwd, x);
            fwd.graph.value(y).shape()
        });
        assert_eq!(shape, (3, 4));
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn dropout_rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}
