//! The Transformer seq2seq architecture (Vaswani et al.), sized for the
//! paper's query-prediction task.

use crate::attention::MultiHeadAttention;
use crate::incremental::{
    full_prefix_step, repeat_row, DecodeState, KvCache, StateKind, TransformerLayerState,
    TransformerState,
};
use crate::layers::{
    causal_mask, positional_encoding, positional_encoding_row, Dropout, Embedding, FeedForward,
    LayerNorm, Linear,
};
use crate::params::{Fwd, Params};
use crate::seq2seq::Seq2Seq;
use qrec_tensor::{NodeId, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Transformer hyper-parameters. The paper tunes heads in `[8, 16]`,
/// hidden size in `[512, 1024]`, and layers in `[2, 12]`; our scaled-down
/// defaults keep the same shape at laptop cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder and decoder layer count.
    pub layers: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Maximum sequence length (positional table size).
    pub max_len: usize,
}

impl TransformerConfig {
    /// A small configuration good for the synthetic workloads.
    pub fn small(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 48,
            heads: 4,
            layers: 2,
            d_ff: 96,
            dropout: 0.1,
            max_len: 160,
        }
    }

    /// A minimal configuration for tests.
    pub fn test(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 16,
            heads: 2,
            layers: 1,
            d_ff: 32,
            dropout: 0.0,
            max_len: 64,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EncoderLayer {
    attn: MultiHeadAttention,
    ff: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    drop: Dropout,
}

impl EncoderLayer {
    fn new(params: &mut Params, name: &str, cfg: &TransformerConfig, rng: &mut StdRng) -> Self {
        EncoderLayer {
            attn: MultiHeadAttention::new(
                params,
                &format!("{name}.self"),
                cfg.d_model,
                cfg.heads,
                rng,
            ),
            ff: FeedForward::new(params, name, cfg.d_model, cfg.d_ff, cfg.dropout, rng),
            ln1: LayerNorm::new(params, &format!("{name}.ln1"), cfg.d_model),
            ln2: LayerNorm::new(params, &format!("{name}.ln2"), cfg.d_model),
            drop: Dropout::new(cfg.dropout),
        }
    }

    fn forward(&self, fwd: &mut Fwd<'_>, x: NodeId) -> NodeId {
        let a = self.attn.forward(fwd, x, x, None);
        let a = self.drop.forward(fwd, a);
        let x = fwd.graph.add(x, a);
        let x = self.ln1.forward(fwd, x);
        let f = self.ff.forward(fwd, x);
        let f = self.drop.forward(fwd, f);
        let x = fwd.graph.add(x, f);
        self.ln2.forward(fwd, x)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct DecoderLayer {
    self_attn: MultiHeadAttention,
    cross_attn: MultiHeadAttention,
    ff: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    ln3: LayerNorm,
    drop: Dropout,
}

impl DecoderLayer {
    fn new(params: &mut Params, name: &str, cfg: &TransformerConfig, rng: &mut StdRng) -> Self {
        DecoderLayer {
            self_attn: MultiHeadAttention::new(
                params,
                &format!("{name}.self"),
                cfg.d_model,
                cfg.heads,
                rng,
            ),
            cross_attn: MultiHeadAttention::new(
                params,
                &format!("{name}.cross"),
                cfg.d_model,
                cfg.heads,
                rng,
            ),
            ff: FeedForward::new(params, name, cfg.d_model, cfg.d_ff, cfg.dropout, rng),
            ln1: LayerNorm::new(params, &format!("{name}.ln1"), cfg.d_model),
            ln2: LayerNorm::new(params, &format!("{name}.ln2"), cfg.d_model),
            ln3: LayerNorm::new(params, &format!("{name}.ln3"), cfg.d_model),
            drop: Dropout::new(cfg.dropout),
        }
    }

    fn forward(
        &self,
        fwd: &mut Fwd<'_>,
        x: NodeId,
        enc: NodeId,
        mask: &qrec_tensor::Tensor,
    ) -> NodeId {
        let a = self.self_attn.forward(fwd, x, x, Some(mask));
        let a = self.drop.forward(fwd, a);
        let x = fwd.graph.add(x, a);
        let x = self.ln1.forward(fwd, x);
        let c = self.cross_attn.forward(fwd, x, enc, None);
        let c = self.drop.forward(fwd, c);
        let x = fwd.graph.add(x, c);
        let x = self.ln2.forward(fwd, x);
        let f = self.ff.forward(fwd, x);
        let f = self.drop.forward(fwd, f);
        let x = fwd.graph.add(x, f);
        self.ln3.forward(fwd, x)
    }

    /// One incremental step for a batch of hypothesis rows: `x` is
    /// `B × d_model` (one new position per row), `ls` carries this
    /// layer's K/V caches. Appends this step's K/V rows, attends each
    /// row against its own cache (the only per-hypothesis work — the
    /// caches differ per row), and runs every projection batched.
    ///
    /// The full-prefix path's causal-mask row for the newest position is
    /// all zeros, so attending the new query over exactly the cached
    /// positions — no mask — computes the same softmax term for term.
    fn step(&self, fwd: &mut Fwd<'_>, x: NodeId, ls: &mut TransformerLayerState) -> NodeId {
        let q = self.self_attn.project_q(fwd, x);
        let k_new = self.self_attn.project_k(fwd, x);
        let v_new = self.self_attn.project_v(fwd, x);
        let k_rows = fwd.graph.value_shared(k_new);
        let v_rows = fwd.graph.value_shared(v_new);
        ls.self_k.append_rows(&k_rows);
        ls.self_v.append_rows(&v_rows);
        let batch = ls.self_k.batch();
        let row_ctx = |fwd: &mut Fwd<'_>, i: usize| {
            let qi = fwd.graph.slice_rows(q, i, i + 1);
            let ki = ls.self_k.node(fwd, i);
            let vi = ls.self_v.node(fwd, i);
            self.self_attn.attend(fwd, qi, ki, vi, None)
        };
        let mut ctx = row_ctx(fwd, 0);
        for i in 1..batch {
            let ci = row_ctx(fwd, i);
            ctx = fwd.graph.vcat(ctx, ci);
        }
        let a = self.self_attn.output(fwd, ctx);
        let a = self.drop.forward(fwd, a);
        let x = fwd.graph.add(x, a);
        let x = self.ln1.forward(fwd, x);

        let qc = self.cross_attn.project_q(fwd, x);
        let kc = fwd.constant_shared(Arc::clone(&ls.cross_k));
        let vc = fwd.constant_shared(Arc::clone(&ls.cross_v));
        let cctx = self.cross_attn.attend(fwd, qc, kc, vc, None);
        let c = self.cross_attn.output(fwd, cctx);
        let c = self.drop.forward(fwd, c);
        let x = fwd.graph.add(x, c);
        let x = self.ln2.forward(fwd, x);

        let f = self.ff.forward(fwd, x);
        let f = self.drop.forward(fwd, f);
        let x = fwd.graph.add(x, f);
        self.ln3.forward(fwd, x)
    }
}

/// A full Transformer encoder–decoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transformer {
    cfg: TransformerConfig,
    src_embed: Embedding,
    tgt_embed: Embedding,
    enc_layers: Vec<EncoderLayer>,
    dec_layers: Vec<DecoderLayer>,
    out_proj: Linear,
    embed_drop: Dropout,
}

impl Transformer {
    /// Build the architecture, registering weights into `params`.
    pub fn new(params: &mut Params, cfg: TransformerConfig, rng: &mut StdRng) -> Self {
        let src_embed = Embedding::new(params, "tfm.src", cfg.vocab, cfg.d_model, rng);
        let tgt_embed = Embedding::new(params, "tfm.tgt", cfg.vocab, cfg.d_model, rng);
        let enc_layers = (0..cfg.layers)
            .map(|i| EncoderLayer::new(params, &format!("tfm.enc{i}"), &cfg, rng))
            .collect();
        let dec_layers = (0..cfg.layers)
            .map(|i| DecoderLayer::new(params, &format!("tfm.dec{i}"), &cfg, rng))
            .collect();
        let out_proj = Linear::new(params, "tfm.out", cfg.d_model, cfg.vocab, rng);
        Transformer {
            embed_drop: Dropout::new(cfg.dropout),
            cfg,
            src_embed,
            tgt_embed,
            enc_layers,
            dec_layers,
            out_proj,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    fn decode_states(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let len = tgt_in.len().min(self.cfg.max_len);
        let mask = causal_mask(len);
        let mut x = self.embed(fwd, &self.tgt_embed, tgt_in);
        for layer in &self.dec_layers {
            x = layer.forward(fwd, x, enc, &mask);
        }
        x
    }

    fn embed(&self, fwd: &mut Fwd<'_>, table: &Embedding, ids: &[usize]) -> NodeId {
        let ids: Vec<usize> = ids.iter().take(self.cfg.max_len).copied().collect();
        let e = table.forward(fwd, &ids);
        let e = fwd.graph.scale(e, (self.cfg.d_model as f32).sqrt());
        let pe = fwd.constant(positional_encoding(ids.len(), self.cfg.d_model));
        let x = fwd.graph.add(e, pe);
        self.embed_drop.forward(fwd, x)
    }
}

impl Seq2Seq for Transformer {
    fn encode(&self, fwd: &mut Fwd<'_>, src: &[usize]) -> NodeId {
        let mut x = self.embed(fwd, &self.src_embed, src);
        for layer in &self.enc_layers {
            x = layer.forward(fwd, x);
        }
        x
    }

    fn decode(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let states = self.decode_states(fwd, enc, tgt_in);
        self.out_proj.forward(fwd, states)
    }

    fn decode_last_logits(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let states = self.decode_states(fwd, enc, tgt_in);
        let rows = fwd.graph.value(states).rows();
        let last = fwd.graph.slice_rows(states, rows - 1, rows);
        self.out_proj.forward(fwd, last)
    }

    fn begin_decode(&self, fwd: &mut Fwd<'_>, enc: &Arc<Tensor>, batch: usize) -> DecodeState {
        let enc_node = fwd.constant_shared(Arc::clone(enc));
        // A quantized parameter store also quantizes the resident KV
        // rows: the whole decode picks one cache representation here.
        let quantized = fwd.params.is_quantized();
        let layers = self
            .dec_layers
            .iter()
            .map(|layer| {
                // Cross-attention K/V depend only on the source: project
                // them once here instead of once per decode step.
                let k = layer.cross_attn.project_k(fwd, enc_node);
                let v = layer.cross_attn.project_v(fwd, enc_node);
                TransformerLayerState {
                    self_k: KvCache::empty(batch, self.cfg.d_model, quantized),
                    self_v: KvCache::empty(batch, self.cfg.d_model, quantized),
                    cross_k: fwd.graph.value_shared(k),
                    cross_v: fwd.graph.value_shared(v),
                }
            })
            .collect();
        DecodeState::with_kind(
            StateKind::Transformer(TransformerState { layers }),
            enc,
            batch,
            self.cfg.max_len,
        )
    }

    fn step_logits(
        &self,
        fwd: &mut Fwd<'_>,
        state: &mut DecodeState,
        last_toks: &[usize],
    ) -> Tensor {
        if !matches!(state.kind, StateKind::Transformer(_)) || last_toks.is_empty() {
            return full_prefix_step(self, fwd, state, last_toks);
        }
        let pos = match state.advance(last_toks) {
            Some(pos) => pos,
            None => return state.frozen_logits(),
        };
        let batch = last_toks.len();
        let e = self.tgt_embed.forward(fwd, last_toks);
        let e = fwd.graph.scale(e, (self.cfg.d_model as f32).sqrt());
        let pe_row = positional_encoding_row(pos, self.cfg.d_model);
        let pe = fwd.constant(repeat_row(&pe_row, batch));
        let mut x = fwd.graph.add(e, pe);
        x = self.embed_drop.forward(fwd, x);
        if let StateKind::Transformer(ts) = &mut state.kind {
            for (layer, ls) in self.dec_layers.iter().zip(&mut ts.layers) {
                x = layer.step(fwd, x, ls);
            }
        }
        let logits = self.out_proj.forward(fwd, x);
        let value = fwd.graph.value(logits).clone();
        state.remember_logits(value)
    }

    fn vocab(&self) -> usize {
        self.cfg.vocab
    }

    fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    fn arch_name(&self) -> &'static str {
        "transformer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{forward_eval, Params};
    use rand::SeedableRng;

    fn setup() -> (Params, Transformer, StdRng) {
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(5);
        let model = Transformer::new(&mut params, TransformerConfig::test(20), &mut rng);
        (params, model, rng)
    }

    #[test]
    fn shapes_are_correct() {
        let (params, model, mut rng) = setup();
        let (enc_shape, dec_shape) = forward_eval(&params, &mut rng, |fwd| {
            let enc = model.encode(fwd, &[1, 5, 6, 2]);
            let logits = model.decode(fwd, enc, &[1, 7, 8]);
            (
                fwd.graph.value(enc).shape(),
                fwd.graph.value(logits).shape(),
            )
        });
        assert_eq!(enc_shape, (4, 16));
        assert_eq!(dec_shape, (3, 20));
    }

    #[test]
    fn decoder_is_causal() {
        // Changing a later target token must not change earlier logits.
        let (params, model, _) = setup();
        let run = |tgt: &[usize]| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &[1, 5, 2]);
                let logits = model.decode(fwd, enc, tgt);
                fwd.graph.value(logits).row(0).to_vec()
            })
        };
        let a = run(&[1, 7, 8]);
        let b = run(&[1, 9, 4]);
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x - y).abs() < 1e-4,
                "decoder row 0 depends on future tokens"
            );
        }
    }

    #[test]
    fn encoder_affects_decoder_output() {
        let (params, model, _) = setup();
        let run = |src: &[usize]| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, src);
                let logits = model.decode(fwd, enc, &[1, 7]);
                fwd.graph.value(logits).row(1).to_vec()
            })
        };
        let a = run(&[1, 5, 2]);
        let b = run(&[1, 11, 2]);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "cross-attention must transport encoder info");
    }

    #[test]
    fn long_inputs_are_truncated_to_max_len() {
        let (params, model, mut rng) = setup();
        let long: Vec<usize> = (0..200).map(|i| i % 20).collect();
        let shape = forward_eval(&params, &mut rng, |fwd| {
            let enc = model.encode(fwd, &long);
            fwd.graph.value(enc).shape()
        });
        assert_eq!(shape.0, 64);
    }

    #[test]
    fn training_reduces_loss_on_a_single_pair() {
        // Overfit one (src, tgt) pair — the canonical smoke test that the
        // whole backward path works.
        use crate::adam::{Adam, AdamConfig};
        let mut params = Params::new();
        let mut rng = StdRng::seed_from_u64(6);
        let model = Transformer::new(&mut params, TransformerConfig::test(12), &mut rng);
        let mut adam = Adam::new(
            AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            &params,
        );
        let src = [1usize, 4, 5, 6, 2];
        let tgt_in = [1usize, 7, 8, 9];
        let tgt_out = [7usize, 8, 9, 2];
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..30 {
            let loss = crate::params::forward_backward(&mut params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &src);
                let logits = model.decode(fwd, enc, &tgt_in);
                fwd.graph.cross_entropy(logits, &tgt_out)
            });
            if step == 0 {
                first = loss;
            }
            last = loss;
            adam.step(&mut params, 1.0);
        }
        assert!(
            last < first * 0.5,
            "loss did not drop: first {first}, last {last}"
        );
    }

    #[test]
    fn param_count_scales_with_config() {
        let mut p1 = Params::new();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Transformer::new(&mut p1, TransformerConfig::test(20), &mut rng);
        let mut p2 = Params::new();
        let _ = Transformer::new(&mut p2, TransformerConfig::small(20), &mut rng);
        assert!(p2.scalar_count() > 2 * p1.scalar_count());
    }
}
