//! The sequence-to-sequence model interface.
//!
//! All three architectures (Transformer, ConvS2S, GRU) expose the same
//! two-phase API: [`Seq2Seq::encode`] the source token ids, then
//! [`Seq2Seq::decode`] a (teacher-forced or partial) target prefix into
//! per-position next-token logits. Training, greedy decoding, and the
//! beam-search family are all built on this interface.

use crate::incremental::DecodeState;
use crate::params::Fwd;
use qrec_tensor::{NodeId, Tensor};
use std::sync::Arc;

/// A sequence-to-sequence architecture (weights live in a
/// [`crate::params::Params`] store created alongside the model).
pub trait Seq2Seq {
    /// Encode source token ids into a hidden representation
    /// (`len(src) × d_model`).
    fn encode(&self, fwd: &mut Fwd<'_>, src: &[usize]) -> NodeId;

    /// Decode a target prefix with teacher forcing: returns logits of
    /// shape `len(tgt_in) × vocab`, where row `i` predicts token `i+1`.
    ///
    /// Decoding must be causal: row `i` may depend only on
    /// `tgt_in[..=i]` and the encoder output. The test suites verify
    /// this for every architecture.
    fn decode(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId;

    /// Logits for only the *last* position of the target prefix
    /// (`1 × vocab`). Equivalent to slicing [`Seq2Seq::decode`]'s final
    /// row, but architectures override it to skip projecting every other
    /// position to the vocabulary — the hot path of beam search.
    fn decode_last_logits(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        let logits = self.decode(fwd, enc, tgt_in);
        let rows = fwd.graph.value(logits).rows();
        fwd.graph.slice_rows(logits, rows - 1, rows)
    }

    /// Start an incremental decode against a frozen encoder output,
    /// with `batch` hypothesis rows (all starting from an empty prefix).
    ///
    /// The default keeps no cache: every [`Seq2Seq::step_logits`] call
    /// re-decodes the stored prefixes in full, so any implementation is
    /// correct out of the box. Architectures override this to build real
    /// per-layer caches (Transformer K/V rows, ConvS2S windows, the GRU
    /// hidden state) and, where profitable, to project step-invariant
    /// quantities — e.g. cross-attention K/V of the source — exactly
    /// once here instead of once per step.
    fn begin_decode(&self, fwd: &mut Fwd<'_>, enc: &Arc<Tensor>, batch: usize) -> DecodeState {
        let _ = fwd;
        DecodeState::full_prefix(enc, batch)
    }

    /// Feed one token per hypothesis row and return next-token logits of
    /// shape `batch × vocab`: row `i` is the distribution after row `i`'s
    /// prefix grows by `last_toks[i]`.
    ///
    /// Must be bitwise identical to calling [`Seq2Seq::decode_last_logits`]
    /// per row on the full prefix — the decode equivalence suite enforces
    /// this for every architecture. The default does exactly that
    /// (correct, O(L²) per token); overrides advance their caches and
    /// run one batched forward instead.
    fn step_logits(
        &self,
        fwd: &mut Fwd<'_>,
        state: &mut DecodeState,
        last_toks: &[usize],
    ) -> Tensor {
        crate::incremental::full_prefix_step(self, fwd, state, last_toks)
    }

    /// Vocabulary size (logit width).
    fn vocab(&self) -> usize;

    /// Model (hidden) width.
    fn d_model(&self) -> usize;

    /// Short architecture label for reports (`"transformer"`, `"convs2s"`,
    /// `"gru"`).
    fn arch_name(&self) -> &'static str;
}

/// Mean-pool an encoder output into a single `1 × d` representation —
/// the pooling the template classifier head consumes.
pub fn pool_encoder(fwd: &mut Fwd<'_>, enc: NodeId) -> NodeId {
    fwd.graph.mean_rows(enc)
}
