//! Top-k agreement of the int8 weight-quantized decode path against the
//! f32 reference path.
//!
//! The quantized path is *not* bitwise-equal to f32 — int8 projections,
//! int8 embedding tables, and quantized KV rows perturb every logit —
//! so its contract (DESIGN.md §15) is distributional: at every decode
//! step, ≥ 0.98 of the quantized top-5 slots must hold tokens the f32
//! model scores at (or within a 1% tie tolerance of) its own rank-5
//! boundary, across all three architectures and every strategy the
//! recommender uses. Agreement is measured teacher-forced along the f32
//! decode's best hypothesis so both stores score identical prefixes.
//!
//! Two exact invariants are also enforced: quantize→dequantize restores
//! the bitwise f32 path (sidecar removal is total), and the quantized
//! path is deterministic — integer accumulation is associative, so the
//! same decode yields identical bits at any compute-pool size.

use qrec_nn::decode::{decode, Strategy, SOS};
use qrec_nn::params::{forward_eval, Params};
use qrec_nn::{
    ConvS2S, ConvS2SConfig, DecodeState, GruConfig, GruSeq2Seq, Seq2Seq, Transformer,
    TransformerConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const VOCAB: usize = 30;
const TOP_K: usize = 5;
/// Mean per-step top-5 slot agreement gate, per (arch, strategy) cell.
const GATE: f64 = 0.98;
const SRC: [usize; 5] = [SOS, 4, 9, 5, 2];
const MAX_LEN: usize = 24;

/// Untrained (random-init) model, same seed as the bitwise suite:
/// near-uniform distributions are the *adversarial* case for a top-k
/// gate — tiny quantization perturbations flip ranks most easily when
/// logit gaps are smallest.
fn build(arch: &str) -> (Params, Box<dyn Seq2Seq>) {
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(11);
    let model: Box<dyn Seq2Seq> = match arch {
        "transformer" => Box::new(Transformer::new(
            &mut params,
            TransformerConfig::test(VOCAB),
            &mut rng,
        )),
        "convs2s" => Box::new(ConvS2S::new(
            &mut params,
            ConvS2SConfig::test(VOCAB),
            &mut rng,
        )),
        _ => Box::new(GruSeq2Seq::new(
            &mut params,
            GruConfig::test(VOCAB),
            &mut rng,
        )),
    };
    (params, model)
}

fn strategy_cases() -> [(Strategy, u64); 6] {
    [
        (Strategy::Greedy, 0),
        (Strategy::Beam { width: 1 }, 0),
        (Strategy::Beam { width: 4 }, 0),
        (
            Strategy::DiverseBeam {
                width: 4,
                groups: 2,
                penalty: 1.5,
            },
            0,
        ),
        (
            Strategy::Sampling {
                samples: 4,
                min_prob: 0.02,
            },
            7,
        ),
        (
            Strategy::Sampling {
                samples: 3,
                min_prob: 0.9,
            },
            3,
        ),
    ]
}

/// Indices of the k largest logits; ties broken by index so the set is
/// deterministic under any sort.
fn top_k(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Tie-aware top-5 agreement between the f32 row `a` and the quantized
/// row `b`: the fraction of `b`'s top-5 whose **f32** logit reaches the
/// f32 rank-5 boundary, less a tie tolerance of 1% of the f32 top-5
/// spread. Boundary ties — candidates the f32 model itself scores
/// within noise of each other — are not disagreements (DESIGN.md §15);
/// a broken scheme promotes tokens with deeply inferior f32 scores and
/// still collapses the metric.
fn row_agreement(a: &[f32], b: &[f32]) -> f64 {
    let ta = top_k(a, TOP_K);
    let tb = top_k(b, TOP_K);
    let boundary = a[ta[TOP_K - 1]];
    let tau = 0.01 * (a[ta[0]] - boundary).abs() + 1e-6;
    let hits = tb.iter().filter(|&&i| a[i] >= boundary - tau).count();
    hits as f64 / TOP_K as f64
}

/// Teacher-forced incremental walk: feed `prefix` token by token and
/// collect the logits row after each step.
fn step_rows(model: &dyn Seq2Seq, params: &Params, prefix: &[usize]) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(0);
    let enc = forward_eval(params, &mut rng, |fwd| {
        let e = model.encode(fwd, &SRC);
        fwd.graph.value_shared(e)
    });
    let mut state: DecodeState =
        forward_eval(params, &mut rng, |fwd| model.begin_decode(fwd, &enc, 1));
    let mut rows = Vec::with_capacity(prefix.len());
    for &tok in prefix {
        let t = forward_eval(params, &mut rng, |fwd| {
            model.step_logits(fwd, &mut state, &[tok])
        });
        rows.push(t.row(0).to_vec());
    }
    rows
}

/// Mean per-step top-5 agreement for one (arch, strategy) cell. Walks
/// the f32 decode's best hypothesis through both stores.
fn cell_agreement(
    model: &dyn Seq2Seq,
    fp: &Params,
    qp: &Params,
    strategy: Strategy,
    seed: u64,
) -> f64 {
    let hyps = decode(
        model,
        fp,
        &SRC,
        strategy,
        MAX_LEN,
        &mut StdRng::seed_from_u64(seed),
    );
    let qhyps = decode(
        model,
        qp,
        &SRC,
        strategy,
        MAX_LEN,
        &mut StdRng::seed_from_u64(seed),
    );
    assert_eq!(
        hyps.len(),
        qhyps.len(),
        "{strategy:?}: quantized decode must yield the same hypothesis count"
    );
    let best = hyps.first().expect("decode yields at least one hypothesis");
    let prefix: Vec<usize> = std::iter::once(SOS)
        .chain(best.ids.iter().copied())
        .collect();
    let f_rows = step_rows(model, fp, &prefix);
    let q_rows = step_rows(model, qp, &prefix);
    let total: f64 = f_rows
        .iter()
        .zip(&q_rows)
        .map(|(a, b)| row_agreement(a, b))
        .sum();
    total / f_rows.len() as f64
}

fn check_arch(arch: &str) {
    let (fp, model) = build(arch);
    let mut qp = fp.clone();
    qp.quantize();
    assert!(qp.is_quantized(), "{arch}: sidecar must install");
    for (strategy, seed) in strategy_cases() {
        let agreement = cell_agreement(model.as_ref(), &fp, &qp, strategy, seed);
        println!("{arch} {strategy:?}: top5 agreement {agreement:.4}");
        assert!(
            agreement >= GATE,
            "{arch} {strategy:?}: top-5 agreement {agreement:.4} below gate {GATE}"
        );
    }
}

#[test]
fn transformer_top5_agreement() {
    check_arch("transformer");
}

#[test]
fn convs2s_top5_agreement() {
    check_arch("convs2s");
}

#[test]
fn gru_top5_agreement() {
    check_arch("gru");
}

/// Sidecar removal is total: quantize → dequantize decodes bitwise
/// identically to a store that never saw the sidecar.
#[test]
fn quantize_dequantize_restores_bitwise_f32() {
    for arch in ["transformer", "convs2s", "gru"] {
        let (fp, model) = build(arch);
        let mut rt = fp.clone();
        rt.quantize();
        rt.dequantize();
        assert!(!rt.is_quantized(), "{arch}: sidecar must uninstall");
        let strategy = Strategy::Beam { width: 4 };
        let want = decode(
            model.as_ref(),
            &fp,
            &SRC,
            strategy,
            MAX_LEN,
            &mut StdRng::seed_from_u64(0),
        );
        let got = decode(
            model.as_ref(),
            &rt,
            &SRC,
            strategy,
            MAX_LEN,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(want.len(), got.len(), "{arch}: hypothesis count");
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.ids, g.ids, "{arch}: ids");
            assert_eq!(
                w.log_prob.to_bits(),
                g.log_prob.to_bits(),
                "{arch}: log_prob bits"
            );
        }
    }
}

/// Integer accumulation is associative: the quantized path must be
/// bit-for-bit repeatable within one process.
#[test]
fn quantized_decode_is_deterministic() {
    for arch in ["transformer", "convs2s", "gru"] {
        let (fp, model) = build(arch);
        let mut qp = fp.clone();
        qp.quantize();
        let strategy = Strategy::Beam { width: 4 };
        let a = decode(
            model.as_ref(),
            &qp,
            &SRC,
            strategy,
            MAX_LEN,
            &mut StdRng::seed_from_u64(0),
        );
        let b = decode(
            model.as_ref(),
            &qp,
            &SRC,
            strategy,
            MAX_LEN,
            &mut StdRng::seed_from_u64(0),
        );
        assert_eq!(a.len(), b.len(), "{arch}: hypothesis count");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ids, y.ids, "{arch}: ids");
            assert_eq!(
                x.log_prob.to_bits(),
                y.log_prob.to_bits(),
                "{arch}: log_prob bits"
            );
        }
    }
}

/// The quantized transformer KV cache holds int8 rows + one f32 scale
/// per row: resident bytes must drop close to 4× against the f32 cache.
#[test]
fn quantized_kv_cache_shrinks_resident_bytes() {
    let (fp, model) = build("transformer");
    let mut qp = fp.clone();
    qp.quantize();
    let steps: Vec<usize> = (0..16).map(|t| 3 + (t % 5)).collect();

    let resident = |params: &Params| -> usize {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = forward_eval(params, &mut rng, |fwd| {
            let e = model.encode(fwd, &SRC);
            fwd.graph.value_shared(e)
        });
        let mut state = forward_eval(params, &mut rng, |fwd| model.begin_decode(fwd, &enc, 2));
        for &tok in &steps {
            forward_eval(params, &mut rng, |fwd| {
                model.step_logits(fwd, &mut state, &[tok, tok])
            });
        }
        state.resident_cache_bytes()
    };

    let f32_bytes = resident(&fp);
    let q_bytes = resident(&qp);
    println!("kv resident bytes: f32={f32_bytes} quant={q_bytes}");
    assert!(q_bytes > 0, "quantized cache must report resident bytes");
    assert!(
        q_bytes * 3 < f32_bytes,
        "quantized KV cache should be ~4x smaller: f32={f32_bytes} quant={q_bytes}"
    );
}

/// The compute pool is process-global (sized once from `QREC_THREADS`),
/// so each pool size re-runs the agreement matrix in a child process.
/// The quantized GEMM accumulates in i32 — associative — so agreement
/// (and in fact the quantized bits) must not move with pool size.
#[test]
fn agreement_holds_across_pool_sizes() {
    if std::env::var_os("QREC_QEQ_CHILD").is_some() {
        return; // already inside a child run
    }
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "2", "8"] {
        let out = std::process::Command::new(&exe)
            .args([
                "transformer_top5_agreement",
                "convs2s_top5_agreement",
                "gru_top5_agreement",
                "--exact",
                "--test-threads=1",
            ])
            .env("QREC_THREADS", threads)
            .env("QREC_QEQ_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "quant agreement failed under QREC_THREADS={threads}:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
