//! Bitwise equivalence of the incremental, step-batched decoder against
//! the serial full-prefix reference path.
//!
//! The decode rewrite's contract (DESIGN.md §11) is that KV-cached,
//! batched decoding is *bitwise* identical to re-running the decoder
//! over the full prefix once per hypothesis — not epsilon-close. These
//! tests drive all three architectures through every strategy the
//! recommender uses and compare hypothesis lists bit for bit, replay
//! state reorders against fresh per-prefix decodes, walk steps past the
//! architecture's positional capacity (the logit-freeze path), and
//! re-run the whole suite under 1-, 2-, and 8-thread compute pools
//! (the pool is process-global, so each size runs in a child process).

use qrec_nn::decode::{decode, decode_reference, Hypothesis, Strategy, SOS};
use qrec_nn::params::{forward_eval, Params};
use qrec_nn::{
    ConvS2S, ConvS2SConfig, DecodeState, GruConfig, GruSeq2Seq, Seq2Seq, Transformer,
    TransformerConfig,
};
use qrec_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const ARCHS: [&str; 3] = ["transformer", "convs2s", "gru"];
const VOCAB: usize = 30;

/// Untrained (random-init) model: distributions are near-uniform, which
/// exercises beam pruning and sampling far better than a converged model
/// that collapses every strategy onto one sequence.
fn build(arch: &str) -> (Params, Box<dyn Seq2Seq>) {
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(11);
    let model: Box<dyn Seq2Seq> = match arch {
        "transformer" => Box::new(Transformer::new(
            &mut params,
            TransformerConfig::test(VOCAB),
            &mut rng,
        )),
        "convs2s" => Box::new(ConvS2S::new(
            &mut params,
            ConvS2SConfig::test(VOCAB),
            &mut rng,
        )),
        _ => Box::new(GruSeq2Seq::new(
            &mut params,
            GruConfig::test(VOCAB),
            &mut rng,
        )),
    };
    (params, model)
}

fn assert_hyps_bitwise(want: &[Hypothesis], got: &[Hypothesis], ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: hypothesis count");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        assert_eq!(w.ids, g.ids, "{ctx}: ids of hyp {i}");
        assert_eq!(w.finished, g.finished, "{ctx}: finished flag of hyp {i}");
        assert_eq!(
            w.log_prob.to_bits(),
            g.log_prob.to_bits(),
            "{ctx}: log_prob of hyp {i}: {} vs {}",
            w.log_prob,
            g.log_prob
        );
        assert_eq!(
            w.token_probs.len(),
            g.token_probs.len(),
            "{ctx}: token_probs length of hyp {i}"
        );
        for (j, (a, b)) in w.token_probs.iter().zip(&g.token_probs).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{ctx}: token_prob {j} of hyp {i}: {a} vs {b}"
            );
        }
    }
}

fn assert_rows_bitwise(want: &Tensor, got: &Tensor, ctx: &str) {
    assert_eq!(want.shape(), got.shape(), "{ctx}: shape");
    for (j, (a, b)) in want.data().iter().zip(got.data()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: element {j}: {a} vs {b}");
    }
}

/// Every strategy × fixed RNG seed: the incremental path must reproduce
/// the reference path's hypothesis list exactly.
fn check_strategies(arch: &str) {
    let (params, model) = build(arch);
    let src = [SOS, 4, 9, 5, 2];
    let cases: [(Strategy, u64); 6] = [
        (Strategy::Greedy, 0),
        (Strategy::Beam { width: 1 }, 0),
        (Strategy::Beam { width: 4 }, 0),
        (
            Strategy::DiverseBeam {
                width: 4,
                groups: 2,
                penalty: 1.5,
            },
            0,
        ),
        // Low threshold: real multinomial draws share the RNG stream.
        (
            Strategy::Sampling {
                samples: 4,
                min_prob: 0.02,
            },
            7,
        ),
        // High threshold: the degenerate argmax fallback path.
        (
            Strategy::Sampling {
                samples: 3,
                min_prob: 0.9,
            },
            3,
        ),
    ];
    for (strategy, seed) in cases {
        let want = decode_reference(
            model.as_ref(),
            &params,
            &src,
            strategy,
            24,
            &mut StdRng::seed_from_u64(seed),
        );
        let got = decode(
            model.as_ref(),
            &params,
            &src,
            strategy,
            24,
            &mut StdRng::seed_from_u64(seed),
        );
        assert_hyps_bitwise(&want, &got, &format!("{arch} {strategy:?}"));
    }
}

#[test]
fn transformer_matches_reference() {
    check_strategies("transformer");
}

#[test]
fn convs2s_matches_reference() {
    check_strategies("convs2s");
}

#[test]
fn gru_matches_reference() {
    check_strategies("gru");
}

/// Step-level equivalence on a forced 70-token walk: every incremental
/// logits row must equal the reference full-prefix last-row logits,
/// including past the architecture's positional capacity (64 in the
/// test configs), where both paths freeze on the last computable row.
#[test]
fn steps_past_positional_capacity_freeze_identically() {
    for arch in ARCHS {
        let (params, model) = build(arch);
        let model = model.as_ref();
        let src = [SOS, 6, 3, 2];
        let mut rng = StdRng::seed_from_u64(0);
        let enc: Arc<Tensor> = forward_eval(&params, &mut rng, |fwd| {
            let e = model.encode(fwd, &src);
            fwd.graph.value_shared(e)
        });
        let mut state: DecodeState =
            forward_eval(&params, &mut rng, |fwd| model.begin_decode(fwd, &enc, 1));
        let mut prefix = vec![SOS];
        for t in 0..70 {
            let last = *prefix.last().expect("prefix starts with SOS");
            let got = forward_eval(&params, &mut rng, |fwd| {
                model.step_logits(fwd, &mut state, &[last])
            });
            let want = forward_eval(&params, &mut rng, |fwd| {
                let enc_node = fwd.constant_shared(Arc::clone(&enc));
                let logits = model.decode_last_logits(fwd, enc_node, &prefix);
                fwd.graph.value(logits).clone()
            });
            assert_rows_bitwise(&want, &got, &format!("{arch} step {t}"));
            prefix.push(3 + (t % 5));
        }
    }
}

/// Beam pruning permutes and duplicates survivors; after
/// `DecodeState::reorder` the batched step must match fresh batch-1
/// states replaying each surviving row's full prefix.
#[test]
fn reorder_matches_replayed_prefixes() {
    for arch in ARCHS {
        let (params, model) = build(arch);
        let model = model.as_ref();
        let src = [SOS, 5, 7, 2];
        let mut rng = StdRng::seed_from_u64(0);
        let enc: Arc<Tensor> = forward_eval(&params, &mut rng, |fwd| {
            let e = model.encode(fwd, &src);
            fwd.graph.value_shared(e)
        });
        // Three divergent rows, two steps deep.
        let mut state = forward_eval(&params, &mut rng, |fwd| model.begin_decode(fwd, &enc, 3));
        forward_eval(&params, &mut rng, |fwd| {
            model.step_logits(fwd, &mut state, &[SOS, SOS, SOS])
        });
        forward_eval(&params, &mut rng, |fwd| {
            model.step_logits(fwd, &mut state, &[4, 5, 6])
        });
        // Prune to a permutation with a duplicated parent: rows now
        // follow prefixes [SOS,6], [SOS,4], [SOS,5], [SOS,5].
        let parents = [2usize, 0, 1, 1];
        state.reorder(&parents);
        let feed = [7usize, 8, 9, 3];
        let got = forward_eval(&params, &mut rng, |fwd| {
            model.step_logits(fwd, &mut state, &feed)
        });
        assert_eq!(got.shape(), (4, VOCAB), "{arch}: batched step shape");

        let second = [4usize, 5, 6];
        for (r, (&parent, &tok)) in parents.iter().zip(&feed).enumerate() {
            let mut solo = forward_eval(&params, &mut rng, |fwd| model.begin_decode(fwd, &enc, 1));
            forward_eval(&params, &mut rng, |fwd| {
                model.step_logits(fwd, &mut solo, &[SOS])
            });
            forward_eval(&params, &mut rng, |fwd| {
                model.step_logits(fwd, &mut solo, &[second[parent]])
            });
            let want = forward_eval(&params, &mut rng, |fwd| {
                model.step_logits(fwd, &mut solo, &[tok])
            });
            let got_row = Tensor::from_vec(1, VOCAB, got.row(r).to_vec());
            assert_rows_bitwise(&want, &got_row, &format!("{arch} reordered row {r}"));
        }
    }
}

/// The compute pool is process-global (sized once from `QREC_THREADS`),
/// so each pool size re-runs the strategy equivalence tests in a child
/// process. Batched decode shapes can cross the parallel-dispatch
/// threshold where serial 1-row shapes do not; bitwise identity must
/// survive that path change.
#[test]
fn equivalence_holds_across_pool_sizes() {
    if std::env::var_os("QREC_EQ_CHILD").is_some() {
        return; // already inside a child run
    }
    let exe = std::env::current_exe().expect("test binary path");
    for threads in ["1", "2", "8"] {
        let out = std::process::Command::new(&exe)
            .args([
                "transformer_matches_reference",
                "convs2s_matches_reference",
                "gru_matches_reference",
                "--exact",
                "--test-threads=1",
            ])
            .env("QREC_THREADS", threads)
            .env("QREC_EQ_CHILD", "1")
            .output()
            .expect("spawn child test process");
        assert!(
            out.status.success(),
            "equivalence failed under QREC_THREADS={threads}:\n{}\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
