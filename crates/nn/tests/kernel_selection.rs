//! Shape-driven GEMM kernel selection for the shapes the models emit.
//!
//! The paper's models funnel everything through `Tensor::matmul{,_nt,_tn}`;
//! these tests pin which kernel path (naive / blocked / pool-parallel)
//! the shapes they actually produce select, so a threshold change that
//! would silently put decode vectors on the pool — or training tiles
//! back on the naive loop — fails loudly here.

use qrec_nn::transformer::TransformerConfig;
use qrec_tensor::kernel::{select, KernelPath};

/// Decode-step products are `1 × d` against `d × vocab` (the output
/// projection) or `d × d` (attention projections). Whatever the thread
/// count, they must stay on the naive serial path: the pool round-trip
/// would dwarf the math.
#[test]
fn decode_step_shapes_stay_on_the_serial_fast_path() {
    let small = TransformerConfig::small(2000);
    let test = TransformerConfig::test(200);
    for cfg in [&small, &test] {
        for threads in [1usize, 2, 8, 64] {
            // 1×d · d×d attention/FF projections for one new token.
            assert_eq!(
                select(1, cfg.d_model, cfg.d_model, threads),
                KernelPath::Naive
            );
            // 1×d · d×vocab output projection (the widest decode GEMM).
            assert_eq!(
                select(1, cfg.d_model, cfg.vocab, threads),
                KernelPath::Naive
            );
            // d_ff expansion for a single position.
            assert_eq!(select(1, cfg.d_model, cfg.d_ff, threads), KernelPath::Naive);
        }
    }
}

/// Training-step products over a full sequence (`L × d` activations) at
/// the paper's scale: the per-layer projections stay serial, and only
/// the sequence-wide vocabulary projection — the one genuinely large
/// training GEMM — is allowed to fan out, and then only when the pool
/// actually has workers.
#[test]
fn training_step_shapes_split_only_at_the_vocab_projection() {
    let cfg = TransformerConfig::small(2000);
    let seq = cfg.max_len; // worst case: the longest supported sequence
    for threads in [1usize, 8] {
        // L×d · d×d attention/FF projections: never parallel.
        assert!(matches!(
            select(seq, cfg.d_model, cfg.d_model, threads),
            KernelPath::Naive | KernelPath::Blocked
        ));
    }
    // The 160×48 · 48×2000 output projection leaves the naive loop…
    assert_eq!(select(seq, cfg.d_model, cfg.vocab, 1), KernelPath::Blocked);
    // …and fans out at 8 workers, capped so no chunk drops below the
    // minimum row count (160 rows / 32-row floor = 5 chunks).
    assert_eq!(
        select(seq, cfg.d_model, cfg.vocab, 8),
        KernelPath::Parallel { chunks: 5 }
    );
}

/// Only genuinely large products (the benchmark's 512³ scale shape, or
/// batched serving far beyond one sequence) fan out — and the chunk
/// count is a pure function of shape and threads.
#[test]
fn large_products_fan_out_deterministically() {
    assert_eq!(select(512, 512, 512, 8), KernelPath::Parallel { chunks: 8 });
    assert_eq!(select(512, 512, 512, 2), KernelPath::Parallel { chunks: 2 });
    // Single-threaded pools never fan out, whatever the size.
    assert_eq!(select(512, 512, 512, 1), KernelPath::Blocked);
    // Selection is deterministic: same inputs, same answer.
    assert_eq!(select(512, 512, 512, 8), select(512, 512, 512, 8));
}
