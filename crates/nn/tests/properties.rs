//! Property-based tests for model and decoder invariants, run against
//! freshly initialised (untrained) models of random small shapes — these
//! invariants must hold regardless of weights.

use proptest::prelude::*;
use qrec_nn::decode::{decode, Strategy as DecodeStrategy, EOS, SOS};
use qrec_nn::params::{forward_eval, Params};
use qrec_nn::seq2seq::Seq2Seq;
use qrec_nn::{ConvS2S, ConvS2SConfig, GruConfig, GruSeq2Seq, Transformer, TransformerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone, Copy)]
enum ArchPick {
    Tfm,
    Cnn,
    Gru,
}

fn arch_strategy() -> impl Strategy<Value = ArchPick> {
    prop_oneof![
        Just(ArchPick::Tfm),
        Just(ArchPick::Cnn),
        Just(ArchPick::Gru)
    ]
}

fn build(arch: ArchPick, vocab: usize, seed: u64) -> (Params, Box<dyn Seq2Seq>) {
    let mut params = Params::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model: Box<dyn Seq2Seq> = match arch {
        ArchPick::Tfm => Box::new(Transformer::new(
            &mut params,
            TransformerConfig::test(vocab),
            &mut rng,
        )),
        ArchPick::Cnn => Box::new(ConvS2S::new(
            &mut params,
            ConvS2SConfig::test(vocab),
            &mut rng,
        )),
        ArchPick::Gru => Box::new(GruSeq2Seq::new(
            &mut params,
            GruConfig::test(vocab),
            &mut rng,
        )),
    };
    (params, model)
}

fn seq_strategy(vocab: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(4..vocab, 1..8).prop_map(|mut v| {
        let mut s = vec![SOS];
        s.append(&mut v);
        s.push(EOS);
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Decoder causality holds for every architecture with random
    /// weights: logits row 0 does not depend on later target tokens.
    #[test]
    fn decoders_are_causal(
        arch in arch_strategy(),
        seed in 0u64..100,
        src in seq_strategy(12),
        t1 in 4usize..12,
        t2 in 4usize..12,
    ) {
        let (params, model) = build(arch, 12, seed);
        let run = |tok: usize| {
            let mut rng = StdRng::seed_from_u64(0);
            forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &src);
                let logits = model.decode(fwd, enc, &[SOS, 5, tok]);
                fwd.graph.value(logits).row(0).to_vec()
            })
        };
        let a = run(t1);
        let b = run(t2);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4, "{arch:?} leaked future context");
        }
    }

    /// Beam width 1 always equals greedy decoding.
    #[test]
    fn beam1_equals_greedy(
        arch in arch_strategy(),
        seed in 0u64..50,
        src in seq_strategy(10),
    ) {
        let (params, model) = build(arch, 10, seed);
        let g = decode(model.as_ref(), &params, &src, DecodeStrategy::Greedy, 8,
                       &mut StdRng::seed_from_u64(1));
        let b = decode(model.as_ref(), &params, &src, DecodeStrategy::Beam { width: 1 }, 8,
                       &mut StdRng::seed_from_u64(1));
        prop_assert_eq!(&g[0].ids, &b[0].ids);
    }

    /// Hypotheses are sorted by log-probability, probabilities are valid,
    /// and log_prob is consistent with the recorded token probabilities.
    #[test]
    fn hypotheses_are_consistent(
        arch in arch_strategy(),
        seed in 0u64..50,
        src in seq_strategy(10),
        width in 2usize..5,
    ) {
        let (params, model) = build(arch, 10, seed);
        let hyps = decode(model.as_ref(), &params, &src, DecodeStrategy::Beam { width }, 6,
                          &mut StdRng::seed_from_u64(2));
        prop_assert!(!hyps.is_empty());
        for w in hyps.windows(2) {
            prop_assert!(w[0].log_prob >= w[1].log_prob);
        }
        for h in &hyps {
            prop_assert_eq!(h.ids.len(), h.token_probs.len());
            prop_assert!(h.token_probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let token_sum: f32 = h.token_probs.iter().map(|&p| p.max(1e-12).ln()).sum();
            if h.finished {
                // log_prob additionally includes the EOS step.
                prop_assert!(h.log_prob <= token_sum + 1e-4);
            } else {
                prop_assert!((h.log_prob - token_sum).abs() < 1e-3);
            }
            // No specials inside the emitted ids.
            prop_assert!(h.ids.iter().all(|&id| id != SOS && id != EOS));
        }
    }

    /// Evaluation forwards are deterministic (no dropout in eval mode).
    #[test]
    fn eval_forward_is_deterministic(
        arch in arch_strategy(),
        seed in 0u64..50,
        src in seq_strategy(10),
    ) {
        let (params, model) = build(arch, 10, seed);
        let run = |rng_seed: u64| {
            let mut rng = StdRng::seed_from_u64(rng_seed);
            forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &src);
                let logits = model.decode(fwd, enc, &[SOS, 4]);
                fwd.graph.value(logits).row(0).to_vec()
            })
        };
        // Different RNG seeds must not matter in eval mode.
        prop_assert_eq!(run(1), run(999));
    }

    /// Sampling with min_prob = 1.1 (impossible threshold) falls back to
    /// argmax and thus matches greedy.
    #[test]
    fn degenerate_sampling_matches_greedy(
        arch in arch_strategy(),
        seed in 0u64..30,
        src in seq_strategy(10),
    ) {
        let (params, model) = build(arch, 10, seed);
        let g = decode(model.as_ref(), &params, &src, DecodeStrategy::Greedy, 6,
                       &mut StdRng::seed_from_u64(3));
        let s = decode(
            model.as_ref(), &params, &src,
            DecodeStrategy::Sampling { samples: 2, min_prob: 1.1 }, 6,
            &mut StdRng::seed_from_u64(3),
        );
        prop_assert_eq!(&g[0].ids, &s[0].ids);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The beam-search fast path (`decode_last_logits`) must agree with
    /// the last row of the full teacher-forced decode.
    #[test]
    fn decode_last_logits_matches_full_decode(
        arch in arch_strategy(),
        seed in 0u64..50,
        src in seq_strategy(10),
        tgt in seq_strategy(10),
    ) {
        let (params, model) = build(arch, 10, seed);
        let tgt_in = &tgt[..tgt.len() - 1];
        let (full_last, fast) = forward_eval(&params, &mut StdRng::seed_from_u64(0), |fwd| {
            let enc = model.encode(fwd, &src);
            let full = model.decode(fwd, enc, tgt_in);
            let rows = fwd.graph.value(full).rows();
            let full_last = fwd.graph.value(full).row(rows - 1).to_vec();
            let fast = model.decode_last_logits(fwd, enc, tgt_in);
            (full_last, fwd.graph.value(fast).row(0).to_vec())
        });
        for (a, b) in full_last.iter().zip(&fast) {
            prop_assert!((a - b).abs() < 1e-4, "{arch:?}: fast path diverges");
        }
    }
}
