//! Property-based tests for the recommendation layer: baseline and
//! metric invariants that must hold on any workload.

use proptest::prelude::*;
use qrec_core::prelude::*;
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_split(seed: u64) -> (qrec_workload::Workload, Split) {
    let mut p = WorkloadProfile::tiny();
    p.sessions = 20;
    let (w, _) = generate(&p, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let split = Split::paper(w.pairs(), &mut rng);
    (w, split)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every baseline: F1 values are bounded, recall is monotone in
    /// N, and precision·recall ordering is internally consistent.
    #[test]
    fn baseline_metrics_invariants(seed in 0u64..500) {
        let (_w, split) = tiny_split(seed);
        if split.test.is_empty() {
            return Ok(());
        }
        let mut methods: Vec<Box<dyn FragmentPredictor>> = vec![
            Box::new(NaiveQi::fit(&split.train)),
            Box::new(PopularBaseline::fit(&split.train)),
            Box::new(Querie::fit(&split.train, 5)),
        ];
        for m in methods.iter_mut() {
            let m1 = eval_n_fragments(m.as_mut(), &split.test, 1);
            let m5 = eval_n_fragments(m.as_mut(), &split.test, 5);
            for kind in qrec_sql::FragmentKind::ALL {
                let (a, b) = (m1.get(kind), m5.get(kind));
                prop_assert!((0.0..=1.0).contains(&a.f1()));
                prop_assert!((0.0..=1.0).contains(&b.f1()));
                // Larger N can only add predictions → recall grows.
                prop_assert!(b.recall() + 1e-12 >= a.recall(),
                    "recall must be monotone in N for {}", m.name());
            }
        }
    }

    /// naive-Qi template accuracy always equals the test template-same
    /// rate (the Section 5.4.2 anchor identity), on any workload.
    #[test]
    fn naive_anchor_identity(seed in 0u64..500) {
        let (_w, split) = tiny_split(seed);
        if split.test.is_empty() {
            return Ok(());
        }
        let mut naive = NaiveQi::fit(&split.train);
        let acc = eval_templates(&mut naive, &split.test, 1).accuracy();
        let same = split
            .test
            .iter()
            .filter(|p| p.current.template == p.next.template)
            .count() as f64
            / split.test.len() as f64;
        prop_assert!((acc - same).abs() < 1e-12);
    }

    /// Template metrics are rank-consistent: accuracy ≥ NDCG ≥ MRR at
    /// every N, and all grow monotonically with N.
    #[test]
    fn template_metric_ordering(seed in 0u64..500, n1 in 1usize..3, extra in 1usize..4) {
        let (_w, split) = tiny_split(seed);
        if split.test.is_empty() {
            return Ok(());
        }
        let n2 = n1 + extra;
        let mut popular = PopularBaseline::fit(&split.train);
        let a = eval_templates(&mut popular, &split.test, n1);
        let b = eval_templates(&mut popular, &split.test, n2);
        prop_assert!(b.accuracy() + 1e-12 >= a.accuracy());
        prop_assert!(b.mrr() + 1e-12 >= a.mrr());
        for m in [&a, &b] {
            prop_assert!(m.accuracy() + 1e-12 >= m.ndcg());
            prop_assert!(m.ndcg() + 1e-12 >= m.mrr());
        }
    }

    /// The fragment lexicon classifies every fragment the workload's own
    /// queries contain (closure property).
    #[test]
    fn lexicon_closure(seed in 0u64..500) {
        let (w, _) = tiny_split(seed);
        let lex = FragmentLexicon::from_workload(&w);
        for s in &w.sessions {
            for q in &s.queries {
                for (kind, frag) in q.fragments.iter() {
                    prop_assert!(
                        lex.kinds_of(frag).contains(&kind),
                        "lexicon missing {kind:?} {frag:?}"
                    );
                }
            }
        }
    }

    /// QueRIE retrieval is reflexive-ish: querying with a training query
    /// itself retrieves fragments overlapping that query's own.
    #[test]
    fn querie_self_retrieval(seed in 0u64..200) {
        let (_w, split) = tiny_split(seed);
        let Some(p) = split.train.first() else { return Ok(()); };
        if p.current.fragments.tables.is_empty() {
            return Ok(());
        }
        let mut qr = Querie::fit(&split.train, 3);
        let set = qr.predict_set(&p.current);
        let overlap = set
            .tables
            .intersection(&p.current.fragments.tables)
            .count();
        prop_assert!(overlap > 0, "self-retrieval must share tables");
    }
}
