//! End-to-end eval-metric delta of the int8-quantized recommender on
//! the workload simulator (the decode-equivalence top-k gate's
//! task-level counterpart): quantizing a trained model must not move
//! the paper's fragment-set F1 by more than a small delta, and
//! dequantizing must restore the f32 metrics bitwise.

use qrec_core::prelude::*;
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Max |ΔF1| per fragment kind between the f32 and int8 paths. The
/// tiny simulator test split is small enough that one pair flipping a
/// near-tied fragment across the set threshold moves F1 by ~0.1, so the
/// bound is sized to that granularity; a broken quantization scheme
/// collapses F1 toward zero and still trips it.
const MAX_F1_DELTA: f64 = 0.2;

#[test]
fn quantized_eval_metrics_stay_close_to_f32() {
    let (w, _) = generate(&WorkloadProfile::tiny(), 21);
    let mut rng = StdRng::seed_from_u64(2);
    let split = Split::paper(w.pairs(), &mut rng);
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (mut rec, _) = Recommender::train(&split, &w, cfg);

    let f32_m = eval_fragment_set(&mut rec, &split.test);

    rec.quantize();
    assert!(
        rec.is_quantized(),
        "sidecar must install on a trained model"
    );
    let q_m = eval_fragment_set(&mut rec, &split.test);

    for (kind, a, b) in [
        ("table", f32_m.table.f1(), q_m.table.f1()),
        ("column", f32_m.column.f1(), q_m.column.f1()),
        ("function", f32_m.function.f1(), q_m.function.f1()),
        ("literal", f32_m.literal.f1(), q_m.literal.f1()),
    ] {
        println!("{kind}: f32 F1 {a:.4} vs int8 F1 {b:.4}");
        assert!(
            (a - b).abs() <= MAX_F1_DELTA,
            "{kind}: quantized F1 drifted: f32 {a:.4} vs int8 {b:.4}"
        );
    }

    // Dropping the sidecar must restore the f32 metrics exactly — the
    // reference path is bitwise-stable, so F1 is too.
    rec.dequantize();
    assert!(!rec.is_quantized());
    let back = eval_fragment_set(&mut rec, &split.test);
    assert_eq!(
        f32_m.table, back.table,
        "table metrics must restore bitwise"
    );
    assert_eq!(
        f32_m.column, back.column,
        "column metrics must restore bitwise"
    );
    assert_eq!(
        f32_m.function, back.function,
        "function metrics must restore bitwise"
    );
    assert_eq!(
        f32_m.literal, back.literal,
        "literal metrics must restore bitwise"
    );
}
