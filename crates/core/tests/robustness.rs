//! Failure-injection and persistence tests for the recommendation
//! pipeline: out-of-vocabulary inputs, degenerate workloads, and
//! serialisation round-trips of trained models.

use qrec_core::prelude::*;
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::{OwnedPair, QueryRecord, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_trained() -> (qrec_workload::Workload, Split, Recommender) {
    let (w, _) = generate(&WorkloadProfile::tiny(), 77);
    let mut rng = StdRng::seed_from_u64(2);
    let split = Split::paper(w.pairs(), &mut rng);
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (rec, _) = Recommender::train(&split, &w, cfg);
    (w, split, rec)
}

#[test]
fn oov_query_does_not_panic() {
    let (_w, _split, mut rec) = tiny_trained();
    // Every fragment here is unknown to the training vocabulary.
    let q = QueryRecord::new(
        "SELECT zzz_unknown, www_mystery FROM NeverSeenTable WHERE qqq LIKE '%nope%'",
    )
    .unwrap();
    let set = rec.predict_set(&q);
    let n = rec.predict_n(&q, 5);
    // Whatever it predicts must come from the known lexicon.
    for (_, frag) in set.iter() {
        assert!(!rec.lexicon().kinds_of(frag).is_empty() || frag == "<NUM>");
    }
    assert!(n.table.len() <= 5);
}

#[test]
fn empty_and_degenerate_splits_are_handled() {
    let (w, _) = generate(&WorkloadProfile::tiny(), 78);
    // A split whose train set is a single pair.
    let pairs = w.pairs();
    let split = Split {
        train: pairs[..1].to_vec(),
        val: pairs[1..2].to_vec(),
        test: pairs[2..3].to_vec(),
    };
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (mut rec, report) = Recommender::train(&split, &w, cfg);
    assert!(report.best_val_loss().is_finite());
    let _ = rec.predict_set(&split.test[0].current);

    // Template classes can end up empty under a high support threshold.
    let mut clf_cfg = TemplateClfConfig::test();
    clf_cfg.min_support = 1000;
    let (mut clf, _) = TemplateModel::train_fine_tuned(&rec, &split, clf_cfg);
    assert_eq!(clf.classes().len(), 0);
    assert!(clf.predict_templates(&split.test[0].current, 3).is_empty());
}

#[test]
fn all_identical_pairs_degenerate_gracefully() {
    // A workload where nothing ever changes: models learn the identity;
    // naive-Qi is perfect; metrics must not produce NaNs.
    let rec_q = QueryRecord::new("SELECT a FROM t WHERE a > 1").unwrap();
    let pairs: Vec<OwnedPair> = (0..40)
        .map(|i| OwnedPair {
            current: rec_q.clone(),
            next: rec_q.clone(),
            session_id: i,
            dataset: 0,
        })
        .collect();
    let split = Split {
        train: pairs[..30].to_vec(),
        val: pairs[30..35].to_vec(),
        test: pairs[35..].to_vec(),
    };
    let mut naive = NaiveQi::fit(&split.train);
    let m = eval_fragment_set(&mut naive, &split.test);
    assert_eq!(m.table.f1(), 1.0);
    assert_eq!(m.column.f1(), 1.0);
    let t = eval_templates(&mut naive, &split.test, 1);
    assert_eq!(t.accuracy(), 1.0);
    assert_eq!(t.mrr(), 1.0);
}

#[test]
fn trained_model_roundtrips_through_parts() {
    // The experiment harness persists (cfg, model, params, vocab,
    // lexicon) and rebuilds with from_parts; predictions must be
    // identical.
    let (_w, split, mut rec) = tiny_trained();
    let q = &split.test[0].current;
    let before = {
        // Use a deterministic decode: greedy has no RNG dependence.
        let mut r2 = Recommender::from_parts(
            *rec.config(),
            rec.model().clone(),
            rec.params().clone(),
            rec.vocab().clone(),
            rec.lexicon().clone(),
        );
        r2.predict_set(q)
    };
    let direct = rec.predict_set(q);
    assert_eq!(before, direct);
}

#[test]
fn trained_model_roundtrips_through_serde() {
    let (_w, split, mut rec) = tiny_trained();
    let q = &split.test[0].current;
    // Serialise all parts as the cache does.
    let blob = serde_json::to_vec(&(
        rec.config(),
        rec.model(),
        rec.params(),
        rec.vocab(),
        rec.lexicon(),
    ))
    .expect("serialise");
    let (cfg, model, params, vocab, lexicon): (
        RecommenderConfig,
        AnyModel,
        qrec_nn::Params,
        qrec_workload::Vocab,
        FragmentLexicon,
    ) = serde_json::from_slice(&blob).expect("deserialise");
    let mut restored = Recommender::from_parts(cfg, model, params, vocab, lexicon);
    assert_eq!(restored.predict_set(q), rec.predict_set(q));
    assert_eq!(restored.predict_n(q, 3), rec.predict_n(q, 3));
}

#[test]
fn classifier_roundtrips_through_parts() {
    let (_w, split, rec) = tiny_trained();
    let (mut clf, _) = TemplateModel::train_fine_tuned(&rec, &split, TemplateClfConfig::test());
    let q = &split.test[0].current;
    let direct = clf.predict_templates(q, 3);
    let (name, model, head, params, vocab, classes) = clf.parts();
    let mut rebuilt = TemplateModel::from_parts(
        name.to_string(),
        model.clone(),
        head.clone(),
        params.clone(),
        vocab.clone(),
        classes.clone(),
        0,
    );
    assert_eq!(rebuilt.predict_templates(q, 3), direct);
}

#[test]
fn single_token_and_long_queries_are_handled() {
    let (_w, _split, mut rec) = tiny_trained();
    let short = QueryRecord::new("SELECT 1").unwrap();
    let _ = rec.predict_set(&short);
    // A very long query (stress max_len truncation).
    let cols: Vec<String> = (0..120).map(|i| format!("c{i}")).collect();
    let long_sql = format!("SELECT {} FROM t WHERE a > 1", cols.join(", "));
    let long = QueryRecord::new(&long_sql).unwrap();
    let _ = rec.predict_set(&long);
    let _ = rec.predict_n(&long, 5);
}

#[test]
fn template_classes_roundtrip_through_serde() {
    let (w, _) = generate(&WorkloadProfile::tiny(), 91);
    let pairs = w.pairs();
    let classes = qrec_core::data::TemplateClasses::from_pairs(&pairs, 1);
    assert!(classes.len() > 1);
    let blob = serde_json::to_vec(&classes).expect("classes serialise");
    let back: qrec_core::data::TemplateClasses =
        serde_json::from_slice(&blob).expect("classes deserialise");
    assert_eq!(back.len(), classes.len());
    for (i, t) in classes.templates().iter().enumerate() {
        assert_eq!(back.template(i), t);
        assert_eq!(back.index_of(t), Some(i));
    }
}
