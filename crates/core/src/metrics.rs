//! Evaluation metrics (Table 4 of the paper).
//!
//! Fragment prediction uses micro-averaged precision / recall / F1 over
//! the test pairs; template prediction uses top-N accuracy and the
//! rank-aware MRR and NDCG.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Micro-averaged precision/recall/F1 accumulator for set prediction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SetMetrics {
    /// Σ |predicted ∩ actual|
    pub hits: usize,
    /// Σ |predicted|
    pub predicted: usize,
    /// Σ |actual|
    pub actual: usize,
}

impl SetMetrics {
    /// Record one test pair's predicted and actual sets.
    pub fn record(&mut self, predicted: &BTreeSet<String>, actual: &BTreeSet<String>) {
        self.hits += predicted.intersection(actual).count();
        self.predicted += predicted.len();
        self.actual += actual.len();
    }

    /// Micro precision `Σ|∩| / Σ|pred|` (1.0 when nothing was predicted
    /// and nothing was expected, 0.0 when predictions exist but none hit).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            if self.actual == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.hits as f64 / self.predicted as f64
        }
    }

    /// Micro recall `Σ|∩| / Σ|actual|`.
    pub fn recall(&self) -> f64 {
        if self.actual == 0 {
            1.0
        } else {
            self.hits as f64 / self.actual as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &SetMetrics) {
        self.hits += other.hits;
        self.predicted += other.predicted;
        self.actual += other.actual;
    }
}

/// Rank-aware accumulator for template prediction: top-N accuracy, MRR,
/// and NDCG, computed from the rank of the true class in the prediction
/// list (`None` = not present).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RankMetrics {
    n: usize,
    hits: usize,
    mrr_sum: f64,
    ndcg_sum: f64,
}

impl RankMetrics {
    /// Record one example; `rank` is 1-based position of the true label
    /// in the top-N list, or `None` if absent.
    pub fn record(&mut self, rank: Option<usize>) {
        self.n += 1;
        if let Some(r) = rank {
            debug_assert!(r >= 1);
            self.hits += 1;
            self.mrr_sum += 1.0 / r as f64;
            self.ndcg_sum += 1.0 / ((r as f64) + 1.0).log2();
        }
    }

    /// Number of recorded examples.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Top-N accuracy: fraction of examples whose label appeared at all.
    pub fn accuracy(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.hits as f64 / self.n as f64
        }
    }

    /// Mean reciprocal rank (missing label contributes 0, i.e. rank ∞).
    pub fn mrr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mrr_sum / self.n as f64
        }
    }

    /// NDCG with a single relevant item per example (ideal DCG = 1).
    pub fn ndcg(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.ndcg_sum / self.n as f64
        }
    }
}

/// Find the 1-based rank of `target` in `ranked`, considering only the
/// first `n` entries.
pub fn rank_of<T: PartialEq>(ranked: &[T], target: &T, n: usize) -> Option<usize> {
    ranked
        .iter()
        .take(n)
        .position(|x| x == target)
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn set_metrics_basic() {
        let mut m = SetMetrics::default();
        m.record(&set(&["a", "b", "c"]), &set(&["b", "c", "d", "e"]));
        assert_eq!(m.hits, 2);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        let f1 = m.f1();
        assert!((f1 - (2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5))).abs() < 1e-12);
    }

    #[test]
    fn set_metrics_micro_averages_across_pairs() {
        let mut m = SetMetrics::default();
        m.record(&set(&["a"]), &set(&["a"])); // perfect, small
        m.record(&set(&["x", "y", "z", "w"]), &set(&["q"])); // bad, big
                                                             // Micro: hits 1, predicted 5, actual 2.
        assert!((m.precision() - 0.2).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_metrics_edge_cases() {
        let empty = SetMetrics::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);

        let mut m = SetMetrics::default();
        m.record(&set(&[]), &set(&["a"]));
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn set_metrics_merge() {
        let mut a = SetMetrics::default();
        a.record(&set(&["a"]), &set(&["a"]));
        let mut b = SetMetrics::default();
        b.record(&set(&["b"]), &set(&["c"]));
        a.merge(&b);
        assert_eq!(a.hits, 1);
        assert_eq!(a.predicted, 2);
        assert_eq!(a.actual, 2);
    }

    #[test]
    fn rank_metrics_accuracy_and_mrr() {
        let mut m = RankMetrics::default();
        m.record(Some(1));
        m.record(Some(2));
        m.record(None);
        assert_eq!(m.count(), 3);
        assert!((m.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.mrr() - (1.0 + 0.5) / 3.0).abs() < 1e-12);
        // NDCG: rank 1 → 1, rank 2 → 1/log2(3).
        let expect = (1.0 + 1.0 / 3f64.log2()) / 3.0;
        assert!((m.ndcg() - expect).abs() < 1e-12);
    }

    #[test]
    fn rank_metrics_empty() {
        let m = RankMetrics::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.mrr(), 0.0);
        assert_eq!(m.ndcg(), 0.0);
    }

    #[test]
    fn rank_of_respects_cutoff() {
        let ranked = vec!["a", "b", "c"];
        assert_eq!(rank_of(&ranked, &"b", 3), Some(2));
        assert_eq!(rank_of(&ranked, &"c", 2), None);
        assert_eq!(rank_of(&ranked, &"z", 3), None);
        assert_eq!(rank_of(&ranked, &"a", 1), Some(1));
    }

    #[test]
    fn mrr_bounded_by_accuracy() {
        let mut m = RankMetrics::default();
        for r in [Some(1), Some(3), Some(5), None, Some(2)] {
            m.record(r);
        }
        assert!(m.mrr() <= m.accuracy() + 1e-12);
        assert!(m.ndcg() <= m.accuracy() + 1e-12);
        assert!(m.mrr() <= m.ndcg() + 1e-12, "NDCG decays slower than MRR");
    }
}
