//! Hyper-parameter tuning (Section 6.2.4).
//!
//! The paper tunes each dataset separately: batch size in `[16, 64]`,
//! dropout in `[0.0, 0.3]`, learning rate in `[1e-4, 1e-6]` (at GPU
//! scale), selecting by best validation loss with early stopping.
//! [`grid_search`] reproduces that protocol over a caller-supplied
//! candidate grid.

use crate::data::SeqMode;
use crate::model::Arch;
use crate::recommender::{Recommender, RecommenderConfig};
use qrec_nn::trainer::TrainReport;
use qrec_workload::{Split, Workload};
use serde::{Deserialize, Serialize};

/// One candidate in the tuning grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Epoch cap for the trial.
    pub epochs: usize,
}

/// The outcome of one tuning trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// The candidate evaluated.
    pub candidate: Candidate,
    /// Best validation loss it reached.
    pub val_loss: f32,
    /// Epochs actually run (early stopping).
    pub epochs_run: usize,
}

/// Result of a grid search: all trials plus the winning configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridSearchResult {
    /// Every trial, in grid order.
    pub trials: Vec<Trial>,
    /// Index of the best trial (lowest validation loss).
    pub best: usize,
}

impl GridSearchResult {
    /// The winning candidate.
    pub fn best_candidate(&self) -> Candidate {
        self.trials[self.best].candidate
    }

    /// The winning validation loss.
    pub fn best_val_loss(&self) -> f32 {
        self.trials[self.best].val_loss
    }
}

/// The paper's default grid, scaled to our training budgets: batch size
/// in {16, 64} and three learning rates.
pub fn paper_grid(epochs: usize) -> Vec<Candidate> {
    let mut grid = Vec::new();
    for batch_size in [16usize, 64] {
        for lr in [5e-4f32, 1.5e-3, 4e-3] {
            grid.push(Candidate {
                batch_size,
                lr,
                epochs,
            });
        }
    }
    grid
}

/// Run every candidate and select by validation loss. Each trial trains
/// a fresh model from the same base configuration with the candidate's
/// overrides applied.
pub fn grid_search(
    base: RecommenderConfig,
    grid: &[Candidate],
    split: &Split,
    workload: &Workload,
) -> GridSearchResult {
    assert!(!grid.is_empty(), "tuning grid must not be empty");
    let mut trials = Vec::with_capacity(grid.len());
    let mut best = 0usize;
    for (i, cand) in grid.iter().enumerate() {
        let mut cfg = base;
        cfg.train.batch_size = cand.batch_size;
        cfg.train.adam.lr = cand.lr;
        cfg.train.epochs = cand.epochs;
        let (_, report): (Recommender, TrainReport) = Recommender::train(split, workload, cfg);
        let trial = Trial {
            candidate: *cand,
            val_loss: report.best_val_loss(),
            epochs_run: report.epoch_losses.len(),
        };
        if trial.val_loss
            < trials
                .get(best)
                .map_or(f32::INFINITY, |t: &Trial| t.val_loss)
        {
            best = i;
        }
        trials.push(trial);
    }
    GridSearchResult { trials, best }
}

/// Convenience: tune and then train the final model with the winning
/// configuration (fresh training run, as the paper does).
pub fn tune_and_train(
    arch: Arch,
    seq_mode: SeqMode,
    base: RecommenderConfig,
    grid: &[Candidate],
    split: &Split,
    workload: &Workload,
) -> (Recommender, GridSearchResult) {
    let mut base = base;
    base.arch = arch;
    base.seq_mode = seq_mode;
    let result = grid_search(base, grid, split, workload);
    let winner = result.best_candidate();
    let mut cfg = base;
    cfg.train.batch_size = winner.batch_size;
    cfg.train.adam.lr = winner.lr;
    cfg.train.epochs = winner.epochs;
    let (rec, _) = Recommender::train(split, workload, cfg);
    (rec, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrec_workload::gen::{generate, WorkloadProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_split() -> (Workload, Split) {
        let mut p = WorkloadProfile::tiny();
        p.sessions = 24;
        let (w, _) = generate(&p, 55);
        let mut rng = StdRng::seed_from_u64(1);
        let split = Split::paper(w.pairs(), &mut rng);
        (w, split)
    }

    #[test]
    fn grid_search_selects_lowest_val_loss() {
        let (w, split) = tiny_split();
        let base = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
        // An absurdly high LR candidate must lose to a sane one.
        let grid = vec![
            Candidate {
                batch_size: 8,
                lr: 3e-3,
                epochs: 3,
            },
            Candidate {
                batch_size: 8,
                lr: 5.0,
                epochs: 3,
            },
        ];
        let result = grid_search(base, &grid, &split, &w);
        assert_eq!(result.trials.len(), 2);
        assert_eq!(result.best, 0, "{result:?}");
        assert!(result.best_val_loss() <= result.trials[1].val_loss);
        assert_eq!(result.best_candidate().lr, 3e-3);
    }

    #[test]
    fn paper_grid_has_expected_shape() {
        let grid = paper_grid(5);
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|c| c.epochs == 5));
        assert!(grid.iter().any(|c| c.batch_size == 16));
        assert!(grid.iter().any(|c| c.batch_size == 64));
    }

    #[test]
    #[should_panic(expected = "grid must not be empty")]
    fn empty_grid_panics() {
        let (w, split) = tiny_split();
        let base = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
        let _ = grid_search(base, &[], &split, &w);
    }
}
