//! Fragment lexicon: classifying vocabulary tokens into fragment kinds.
//!
//! Decoded token sequences are turned into fragment sets by looking each
//! token up in a lexicon built from the training workload's fragment
//! sets. This is the token-level equivalent of parsing the generated
//! statement and extracting its fragments (Section 4.2.2), and is robust
//! to model outputs that are not quite grammatical.

use qrec_sql::fragments::NUM_TOKEN;
use qrec_sql::{FragmentKind, FragmentSet};
use qrec_workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Maps token spellings to the fragment kinds they are known to denote.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FragmentLexicon {
    kinds: HashMap<String, Vec<FragmentKind>>,
}

impl FragmentLexicon {
    /// Build a lexicon from every fragment observed in a workload.
    pub fn from_workload(workload: &Workload) -> Self {
        let mut lex = FragmentLexicon::default();
        for session in &workload.sessions {
            for q in &session.queries {
                lex.add_fragments(&q.fragments);
            }
        }
        lex
    }

    /// Register one query's fragment sets.
    pub fn add_fragments(&mut self, fragments: &FragmentSet) {
        for kind in FragmentKind::ALL {
            for f in fragments.of(kind) {
                let entry = self.kinds.entry(f.clone()).or_default();
                if !entry.contains(&kind) {
                    entry.push(kind);
                }
            }
        }
    }

    /// Number of distinct fragment spellings known.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if no fragments are known.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kinds a raw *fragment* spelling denotes.
    pub fn kinds_of(&self, fragment: &str) -> &[FragmentKind] {
        self.kinds.get(fragment).map_or(&[], |v| v.as_slice())
    }

    /// Normalise a *sequence token* into fragment spelling space:
    /// `'FULL'` → `FULL` (string literals carry quotes in token space),
    /// `<NUM>` stays as is.
    pub fn token_to_fragment(token: &str) -> &str {
        if token.len() >= 2 && token.starts_with('\'') && token.ends_with('\'') {
            &token[1..token.len() - 1]
        } else {
            token
        }
    }

    /// Classify one sequence token; returns the kinds it may denote.
    pub fn classify_token(&self, token: &str) -> &[FragmentKind] {
        if token == NUM_TOKEN {
            // <NUM> is always a literal even if the lexicon never saw it.
            return &[FragmentKind::Literal];
        }
        self.kinds_of(Self::token_to_fragment(token))
    }

    /// Extract the fragment set denoted by a decoded token sequence.
    pub fn fragments_of_tokens<'a>(
        &self,
        tokens: impl IntoIterator<Item = &'a str>,
    ) -> FragmentSet {
        let mut out = FragmentSet::default();
        for t in tokens {
            let frag = Self::token_to_fragment(t);
            for &kind in self.classify_token(t) {
                out.of_mut(kind).insert(frag.to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrec_workload::gen::{generate, WorkloadProfile};
    use qrec_workload::QueryRecord;
    use qrec_workload::{Session, Workload};

    fn tiny_workload() -> Workload {
        let mut w = Workload::new("t");
        w.sessions.push(Session {
            id: 0,
            dataset: 0,
            queries: vec![
                QueryRecord::new("SELECT gene FROM Experiments WHERE kind = 'RNA'").unwrap(),
                QueryRecord::new("SELECT COUNT(gene) FROM Experiments WHERE n > 5").unwrap(),
            ],
        });
        w
    }

    #[test]
    fn lexicon_learns_kinds() {
        let lex = FragmentLexicon::from_workload(&tiny_workload());
        assert_eq!(lex.kinds_of("Experiments"), &[FragmentKind::Table]);
        assert_eq!(lex.kinds_of("gene"), &[FragmentKind::Column]);
        assert_eq!(lex.kinds_of("COUNT"), &[FragmentKind::Function]);
        assert_eq!(lex.kinds_of("RNA"), &[FragmentKind::Literal]);
        assert!(lex.kinds_of("unseen").is_empty());
    }

    #[test]
    fn token_normalisation() {
        assert_eq!(FragmentLexicon::token_to_fragment("'RNA'"), "RNA");
        assert_eq!(FragmentLexicon::token_to_fragment("gene"), "gene");
        assert_eq!(FragmentLexicon::token_to_fragment("<NUM>"), "<NUM>");
        assert_eq!(FragmentLexicon::token_to_fragment("''"), "");
    }

    #[test]
    fn num_token_always_literal() {
        let lex = FragmentLexicon::default();
        assert_eq!(lex.classify_token("<NUM>"), &[FragmentKind::Literal]);
    }

    #[test]
    fn fragments_of_tokens_classifies_sequence() {
        let lex = FragmentLexicon::from_workload(&tiny_workload());
        let toks = [
            "SELECT",
            "gene",
            "FROM",
            "Experiments",
            "WHERE",
            "kind",
            "=",
            "'RNA'",
            "<NUM>",
        ];
        let f = lex.fragments_of_tokens(toks.iter().copied());
        assert!(f.tables.contains("Experiments"));
        assert!(f.columns.contains("gene") && f.columns.contains("kind"));
        assert!(f.literals.contains("RNA"));
        assert!(f.literals.contains("<NUM>"));
        // SQL keywords are not fragments.
        assert!(!f.columns.contains("SELECT"));
    }

    #[test]
    fn ambiguous_spellings_keep_all_kinds() {
        let mut w = Workload::new("t");
        w.sessions.push(Session {
            id: 0,
            dataset: 0,
            queries: vec![
                // "sample" appears as both a table and a column.
                QueryRecord::new("SELECT sample FROM Runs").unwrap(),
                QueryRecord::new("SELECT x FROM sample").unwrap(),
            ],
        });
        let lex = FragmentLexicon::from_workload(&w);
        let kinds = lex.kinds_of("sample");
        assert!(kinds.contains(&FragmentKind::Table));
        assert!(kinds.contains(&FragmentKind::Column));
    }

    #[test]
    fn generated_workload_covers_all_kinds() {
        let (w, _) = generate(&WorkloadProfile::tiny(), 3);
        let lex = FragmentLexicon::from_workload(&w);
        assert!(lex.len() > 10);
        let mut seen = [false; 4];
        for kinds in FragmentKind::ALL {
            let any = w
                .sessions
                .iter()
                .any(|s| s.queries.iter().any(|q| !q.fragments.of(kinds).is_empty()));
            seen[kinds as usize] = any;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }
}
