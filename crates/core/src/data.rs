//! Dataset preparation: vocabulary building, pair encoding (seq-aware vs
//! seq-less), and template class extraction.

use qrec_nn::trainer::{EncodedPair, LabeledSeq};
use qrec_sql::Template;
use qrec_workload::{OwnedPair, Vocab};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Whether a model is trained on real pairs or on reconstruction
/// (the paper's seq-aware / seq-less ablation, Section 6.1 (3)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeqMode {
    /// Trained on `(Q_i, Q_{i+1})` — uses the preceding-query signal.
    Aware,
    /// Trained on `(Q_i, Q_i)` — an autoencoder that ignores sequence.
    Less,
}

impl SeqMode {
    /// Label used in reports (`"seq-aware"` / `"seq-less"`).
    pub fn label(&self) -> &'static str {
        match self {
            SeqMode::Aware => "seq-aware",
            SeqMode::Less => "seq-less",
        }
    }
}

/// Build the token vocabulary from the *training* pairs only (no test
/// leakage), keeping tokens with at least `min_count` occurrences.
pub fn build_vocab(train: &[OwnedPair], min_count: usize) -> Vocab {
    let seqs: Vec<&[String]> = train
        .iter()
        .flat_map(|p| [p.current.tokens.as_slice(), p.next.tokens.as_slice()])
        .collect();
    Vocab::build(seqs, min_count)
}

/// Encode pairs for seq2seq training. In [`SeqMode::Less`] the target is
/// the source itself (reconstruction).
pub fn encode_pairs(pairs: &[OwnedPair], vocab: &Vocab, mode: SeqMode) -> Vec<EncodedPair> {
    pairs
        .iter()
        .map(|p| {
            let src = vocab.encode(&p.current.tokens);
            let tgt = match mode {
                SeqMode::Aware => vocab.encode(&p.next.tokens),
                SeqMode::Less => src.clone(),
            };
            EncodedPair { src, tgt }
        })
        .collect()
}

/// The frozen set of template classes (Definition 6's classification
/// label space): templates of next-queries in the training pairs with at
/// least `min_support` occurrences, most frequent first.
///
/// Serialises as the plain class list (the index is rebuilt on load, and
/// JSON maps cannot key on templates anyway).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<Template>", into = "Vec<Template>")]
pub struct TemplateClasses {
    classes: Vec<Template>,
    index: HashMap<Template, usize>,
}

impl From<Vec<Template>> for TemplateClasses {
    fn from(classes: Vec<Template>) -> Self {
        let index = classes
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        TemplateClasses { classes, index }
    }
}

impl From<TemplateClasses> for Vec<Template> {
    fn from(tc: TemplateClasses) -> Self {
        tc.classes
    }
}

impl TemplateClasses {
    /// Extract classes from training pairs.
    pub fn from_pairs(train: &[OwnedPair], min_support: usize) -> Self {
        let mut counts: HashMap<&Template, usize> = HashMap::new();
        for p in train {
            *counts.entry(&p.next.template).or_insert(0) += 1;
        }
        let mut ranked: Vec<(Template, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_support)
            .map(|(t, c)| (t.clone(), c))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let classes: Vec<Template> = ranked.into_iter().map(|(t, _)| t).collect();
        let index = classes
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        TemplateClasses { classes, index }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no class survived the support threshold.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Class index of a template, if it is a class.
    pub fn index_of(&self, t: &Template) -> Option<usize> {
        self.index.get(t).copied()
    }

    /// The template of a class index.
    pub fn template(&self, class: usize) -> &Template {
        &self.classes[class]
    }

    /// All class templates, most frequent first.
    pub fn templates(&self) -> &[Template] {
        &self.classes
    }
}

/// Encode template-classification examples: `Q_i` tokens labelled with
/// the class of `template(Q_{i+1})`. Pairs whose next-template is not a
/// class are dropped (they cannot be learned; evaluation still counts
/// them as misses).
pub fn encode_labeled(
    pairs: &[OwnedPair],
    vocab: &Vocab,
    classes: &TemplateClasses,
) -> Vec<LabeledSeq> {
    pairs
        .iter()
        .filter_map(|p| {
            classes.index_of(&p.next.template).map(|label| LabeledSeq {
                src: vocab.encode(&p.current.tokens),
                label,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrec_workload::QueryRecord;

    fn pair(a: &str, b: &str) -> OwnedPair {
        OwnedPair {
            current: QueryRecord::new(a).unwrap(),
            next: QueryRecord::new(b).unwrap(),
            session_id: 0,
            dataset: 0,
        }
    }

    #[test]
    fn vocab_built_from_both_sides() {
        let pairs = vec![pair("SELECT a FROM t", "SELECT b FROM t")];
        let v = build_vocab(&pairs, 1);
        assert!(v.contains("a") && v.contains("b") && v.contains("SELECT"));
    }

    #[test]
    fn seq_modes_differ_in_target() {
        let pairs = vec![pair("SELECT a FROM t", "SELECT b FROM t")];
        let v = build_vocab(&pairs, 1);
        let aware = encode_pairs(&pairs, &v, SeqMode::Aware);
        let less = encode_pairs(&pairs, &v, SeqMode::Less);
        assert_eq!(aware[0].src, less[0].src);
        assert_eq!(less[0].tgt, less[0].src);
        assert_ne!(aware[0].tgt, aware[0].src);
    }

    #[test]
    fn template_classes_respect_support() {
        let pairs = vec![
            pair("SELECT a FROM t", "SELECT b FROM t"),
            pair("SELECT c FROM u", "SELECT d FROM u"),
            pair("SELECT c FROM u", "SELECT d FROM u WHERE d > 1"),
        ];
        let classes = TemplateClasses::from_pairs(&pairs, 2);
        assert_eq!(classes.len(), 1); // only "SELECT Column FROM Table"
        let t = classes.template(0).clone();
        assert_eq!(t.statement(), "SELECT Column FROM Table");
        assert_eq!(classes.index_of(&t), Some(0));
    }

    #[test]
    fn labeled_encoding_drops_out_of_class_pairs() {
        let pairs = vec![
            pair("SELECT a FROM t", "SELECT b FROM t"),
            pair("SELECT c FROM u", "SELECT d FROM u"),
            pair("SELECT c FROM u", "SELECT d FROM u WHERE d > 1"),
        ];
        let v = build_vocab(&pairs, 1);
        let classes = TemplateClasses::from_pairs(&pairs, 2);
        let labeled = encode_labeled(&pairs, &v, &classes);
        assert_eq!(labeled.len(), 2);
        assert!(labeled.iter().all(|l| l.label == 0));
    }

    #[test]
    fn classes_ordered_by_frequency() {
        let pairs = vec![
            pair("SELECT a FROM t", "SELECT b FROM t WHERE b > 1"),
            pair("SELECT a FROM t", "SELECT b FROM t"),
            pair("SELECT x FROM u", "SELECT y FROM u"),
        ];
        let classes = TemplateClasses::from_pairs(&pairs, 1);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes.template(0).statement(), "SELECT Column FROM Table");
    }

    #[test]
    fn empty_inputs() {
        let classes = TemplateClasses::from_pairs(&[], 1);
        assert!(classes.is_empty());
        let v = build_vocab(&[], 1);
        assert!(encode_labeled(&[], &v, &classes).is_empty());
        assert!(encode_pairs(&[], &v, SeqMode::Aware).is_empty());
    }
}
