//! Online session context for interactive recommendation.
//!
//! Definitions 6 and 7 allow predictions from the whole current session
//! `S* = (Q'_1 … Q'_i)`; the paper's solution uses only `Q'_i` but notes
//! that seq2seq inputs extend naturally by concatenating the preceding
//! queries into one sequence (Section 2). [`SessionContext`] implements
//! that: it accumulates the user's queries and exposes either the last
//! query or a windowed concatenation as model input.

use crate::predict::PerKind;
use crate::recommender::Recommender;
use qrec_nn::Strategy;
use qrec_sql::ParseError;
use qrec_workload::QueryRecord;

/// Separator token placed between concatenated queries. Out-of-vocabulary
/// by construction, so it encodes as `<UNK>` — a consistent boundary
/// marker for the model.
pub const SEP_TOKEN: &str = "<SEP>";

/// A live user session: the queries issued so far, oldest first.
#[derive(Debug, Clone, Default)]
pub struct SessionContext {
    history: Vec<QueryRecord>,
    window: usize,
}

impl SessionContext {
    /// A context that feeds models the last `window` queries
    /// (`window = 1` reproduces the paper's configuration).
    pub fn new(window: usize) -> Self {
        SessionContext {
            history: Vec::new(),
            window: window.max(1),
        }
    }

    /// Record the next query the user ran.
    ///
    /// # Errors
    ///
    /// Returns the parse error if the statement is not valid SQL in the
    /// `qrec` dialect (the session is left unchanged).
    pub fn push_sql(&mut self, sql: &str) -> Result<(), ParseError> {
        let record = QueryRecord::new(sql)?;
        self.history.push(record);
        Ok(())
    }

    /// Record an already-parsed query.
    pub fn push(&mut self, record: QueryRecord) {
        self.history.push(record);
    }

    /// Number of queries recorded.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if the session has no queries yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The most recent query, if any.
    pub fn last(&self) -> Option<&QueryRecord> {
        self.history.last()
    }

    /// The full history, oldest first.
    pub fn history(&self) -> &[QueryRecord] {
        &self.history
    }

    /// The model input tokens: the last `window` queries concatenated
    /// with [`SEP_TOKEN`] boundaries (just the last query when
    /// `window = 1`).
    pub fn input_tokens(&self) -> Vec<String> {
        let n = self.history.len();
        let start = n.saturating_sub(self.window);
        let mut out = Vec::new();
        for (i, q) in self.history[start..].iter().enumerate() {
            if i > 0 {
                out.push(SEP_TOKEN.to_string());
            }
            out.extend(q.tokens.iter().cloned());
        }
        out
    }

    /// Recommend up to `n` fragments per kind for the next query, using
    /// the windowed context. Returns `None` when the session is empty.
    #[must_use]
    pub fn recommend_fragments(
        &self,
        rec: &mut Recommender,
        n: usize,
        strategy: Strategy,
    ) -> Option<PerKind<Vec<String>>> {
        if self.history.is_empty() {
            return None;
        }
        let tokens = self.input_tokens();
        let ranked = rec.ranked_fragments_for_tokens(&tokens, strategy);
        Some(ranked.map(|_, r| r.iter().take(n).cloned().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_window() {
        let mut ctx = SessionContext::new(2);
        assert!(ctx.is_empty());
        ctx.push_sql("SELECT a FROM t").unwrap();
        ctx.push_sql("SELECT b FROM t").unwrap();
        ctx.push_sql("SELECT c FROM t").unwrap();
        assert_eq!(ctx.len(), 3);
        assert_eq!(ctx.last().unwrap().sql, "SELECT c FROM t");
        let toks = ctx.input_tokens();
        // Window 2: queries b and c with one separator.
        assert_eq!(toks.iter().filter(|t| *t == SEP_TOKEN).count(), 1);
        assert!(toks.contains(&"b".to_string()));
        assert!(toks.contains(&"c".to_string()));
        assert!(!toks.contains(&"a".to_string()));
    }

    #[test]
    fn window_one_is_last_query_only() {
        let mut ctx = SessionContext::new(1);
        ctx.push_sql("SELECT a FROM t").unwrap();
        ctx.push_sql("SELECT b FROM u").unwrap();
        let toks = ctx.input_tokens();
        assert!(!toks.contains(&SEP_TOKEN.to_string()));
        assert_eq!(toks, ctx.last().unwrap().tokens);
    }

    #[test]
    fn invalid_sql_leaves_session_unchanged() {
        let mut ctx = SessionContext::new(1);
        ctx.push_sql("SELECT a FROM t").unwrap();
        assert!(ctx.push_sql("NOT SQL").is_err());
        assert_eq!(ctx.len(), 1);
    }

    #[test]
    fn zero_window_clamps_to_one() {
        let ctx = SessionContext::new(0);
        assert_eq!(ctx.window, 1);
    }
}
