//! The paper's comparison methods (Section 6.2.3): `popular`,
//! `naive Q_i`, and the QueRIE collaborative-filtering framework.

use crate::predict::{FragmentPredictor, PerKind, TemplatePredictor};
use qrec_sql::{FragmentKind, FragmentSet, Template};
use qrec_workload::{OwnedPair, QueryRecord};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// `popular`: predicts the globally most frequent fragments / templates
/// of the training workload, ignoring the input query entirely.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PopularBaseline {
    ranked: PerKind<Vec<String>>,
    /// Average per-query set size per kind, used for set prediction.
    avg_set_size: PerKind<usize>,
    templates: Vec<Template>,
}

impl PopularBaseline {
    /// Fit frequency tables on training pairs (both sides contribute,
    /// they are all workload queries).
    pub fn fit(train: &[OwnedPair]) -> Self {
        let mut counts: PerKind<HashMap<&str, usize>> = PerKind::default();
        let mut sizes: PerKind<(usize, usize)> = PerKind::default(); // (sum, n)
        let mut tpl_counts: HashMap<&Template, usize> = HashMap::new();
        for p in train {
            for q in [&p.current, &p.next] {
                for kind in FragmentKind::ALL {
                    let set = q.fragments.of(kind);
                    let (sum, n) = *sizes.get(kind);
                    *sizes.get_mut(kind) = (sum + set.len(), n + 1);
                    for f in set {
                        *counts.get_mut(kind).entry(f.as_str()).or_insert(0) += 1;
                    }
                }
            }
            *tpl_counts.entry(&p.next.template).or_insert(0) += 1;
        }
        let ranked = counts.map(|_, c| {
            let mut v: Vec<(&str, usize)> = c.iter().map(|(&f, &n)| (f, n)).collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            v.into_iter().map(|(f, _)| f.to_string()).collect()
        });
        let avg_set_size = sizes.map(|_, &(sum, n)| {
            if n == 0 {
                0
            } else {
                (sum as f64 / n as f64).round() as usize
            }
        });
        let mut tpls: Vec<(Template, usize)> = tpl_counts
            .into_iter()
            .map(|(t, c)| (t.clone(), c))
            .collect();
        tpls.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        PopularBaseline {
            ranked,
            avg_set_size,
            templates: tpls.into_iter().map(|(t, _)| t).collect(),
        }
    }

    /// The popularity-ranked fragments of one kind.
    pub fn ranked(&self, kind: FragmentKind) -> &[String] {
        self.ranked.get(kind)
    }
}

impl FragmentPredictor for PopularBaseline {
    fn name(&self) -> String {
        "popular".into()
    }

    fn predict_set(&mut self, _q: &QueryRecord) -> FragmentSet {
        // Top `avg_set_size(kind)` fragments per kind.
        let mut out = FragmentSet::default();
        for kind in FragmentKind::ALL {
            let k = *self.avg_set_size.get(kind);
            for f in self.ranked.get(kind).iter().take(k) {
                out.of_mut(kind).insert(f.clone());
            }
        }
        out
    }

    fn predict_n(&mut self, _q: &QueryRecord, n: usize) -> PerKind<Vec<String>> {
        self.ranked.map(|_, r| r.iter().take(n).cloned().collect())
    }
}

impl TemplatePredictor for PopularBaseline {
    fn name(&self) -> String {
        "popular".into()
    }

    fn predict_templates(&mut self, _q: &QueryRecord, n: usize) -> Vec<Template> {
        self.templates.iter().take(n).cloned().collect()
    }
}

/// `naive Q_i`: predicts that the next query keeps the current query's
/// fragments and template. The paper's anchor baseline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NaiveQi {
    /// Global fragment popularity, used only to order `Q_i`'s fragments
    /// in the N-fragments setting.
    popularity: PerKind<HashMap<String, usize>>,
}

impl NaiveQi {
    /// Fit the (only) auxiliary statistic: fragment popularity.
    pub fn fit(train: &[OwnedPair]) -> Self {
        let mut popularity: PerKind<HashMap<String, usize>> = PerKind::default();
        for p in train {
            for q in [&p.current, &p.next] {
                for kind in FragmentKind::ALL {
                    for f in q.fragments.of(kind) {
                        *popularity.get_mut(kind).entry(f.clone()).or_insert(0) += 1;
                    }
                }
            }
        }
        NaiveQi { popularity }
    }
}

impl FragmentPredictor for NaiveQi {
    fn name(&self) -> String {
        "naive-Qi".into()
    }

    fn predict_set(&mut self, q: &QueryRecord) -> FragmentSet {
        q.fragments.clone()
    }

    fn predict_n(&mut self, q: &QueryRecord, n: usize) -> PerKind<Vec<String>> {
        PerKind::from_fn(|kind| {
            let mut frags: Vec<&String> = q.fragments.of(kind).iter().collect();
            frags.sort_by_key(|f| {
                std::cmp::Reverse(self.popularity.get(kind).get(*f).copied().unwrap_or(0))
            });
            frags.into_iter().take(n).cloned().collect()
        })
    }
}

impl TemplatePredictor for NaiveQi {
    fn name(&self) -> String {
        "naive-Qi".into()
    }

    fn predict_templates(&mut self, q: &QueryRecord, n: usize) -> Vec<Template> {
        if n == 0 {
            Vec::new()
        } else {
            vec![q.template.clone()]
        }
    }
}

/// The QueRIE framework (binary fragment-based collaborative filtering,
/// Section 6.2.3): represent each workload query as a binary vector over
/// its tables and columns, retrieve the queries most cosine-similar to
/// `Q_i`, and recommend their fragments and templates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Querie {
    /// Unique workload queries: (feature set, fragments, template).
    items: Vec<QuerieItem>,
    /// How many neighbours to aggregate.
    pub k: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuerieItem {
    features: BTreeSet<String>,
    fragments: FragmentSet,
    template: Template,
}

fn feature_vector(q: &QueryRecord) -> BTreeSet<String> {
    // Hand-picked features, exactly as QueRIE: tables and attributes.
    q.fragments
        .tables
        .iter()
        .map(|t| format!("t:{t}"))
        .chain(q.fragments.columns.iter().map(|c| format!("c:{c}")))
        .collect()
}

fn cosine(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    inter / ((a.len() as f64).sqrt() * (b.len() as f64).sqrt())
}

impl Querie {
    /// Index the unique queries of the training workload.
    pub fn fit(train: &[OwnedPair], k: usize) -> Self {
        let mut seen = BTreeSet::new();
        let mut items = Vec::new();
        for p in train {
            for q in [&p.current, &p.next] {
                if seen.insert(q.canonical.clone()) {
                    items.push(QuerieItem {
                        features: feature_vector(q),
                        fragments: q.fragments.clone(),
                        template: q.template.clone(),
                    });
                }
            }
        }
        Querie { items, k }
    }

    /// Number of indexed queries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Top-k most similar indexed queries to `q`.
    fn neighbours(&self, q: &QueryRecord) -> Vec<(f64, &QuerieItem)> {
        let fv = feature_vector(q);
        let mut scored: Vec<(f64, &QuerieItem)> = self
            .items
            .iter()
            .map(|item| (cosine(&fv, &item.features), item))
            .filter(|(s, _)| *s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(self.k);
        scored
    }
}

impl FragmentPredictor for Querie {
    fn name(&self) -> String {
        "querie".into()
    }

    fn predict_set(&mut self, q: &QueryRecord) -> FragmentSet {
        // Fragment set of the single most similar workload query.
        match self.neighbours(q).first() {
            Some((_, item)) => item.fragments.clone(),
            None => FragmentSet::default(),
        }
    }

    fn predict_n(&mut self, q: &QueryRecord, n: usize) -> PerKind<Vec<String>> {
        let neigh = self.neighbours(q);
        PerKind::from_fn(|kind| {
            let mut weights: HashMap<&str, f64> = HashMap::new();
            for (sim, item) in &neigh {
                for f in item.fragments.of(kind) {
                    *weights.entry(f.as_str()).or_insert(0.0) += sim;
                }
            }
            let mut ranked: Vec<(&str, f64)> = weights.into_iter().collect();
            ranked.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(b.0))
            });
            ranked
                .into_iter()
                .take(n)
                .map(|(f, _)| f.to_string())
                .collect()
        })
    }
}

impl TemplatePredictor for Querie {
    fn name(&self) -> String {
        "querie".into()
    }

    fn predict_templates(&mut self, q: &QueryRecord, n: usize) -> Vec<Template> {
        let neigh = self.neighbours(q);
        let mut weights: HashMap<&Template, f64> = HashMap::new();
        for (sim, item) in &neigh {
            *weights.entry(&item.template).or_insert(0.0) += sim;
        }
        let mut ranked: Vec<(&Template, f64)> = weights.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        ranked.into_iter().take(n).map(|(t, _)| t.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: &str, b: &str) -> OwnedPair {
        OwnedPair {
            current: QueryRecord::new(a).unwrap(),
            next: QueryRecord::new(b).unwrap(),
            session_id: 0,
            dataset: 0,
        }
    }

    fn train() -> Vec<OwnedPair> {
        vec![
            pair("SELECT ra FROM SpecObj", "SELECT ra, z FROM SpecObj"),
            pair(
                "SELECT ra, z FROM SpecObj",
                "SELECT ra FROM SpecObj WHERE z > 1",
            ),
            pair("SELECT g FROM PhotoObj", "SELECT g, r FROM PhotoObj"),
            pair("SELECT ra FROM SpecObj", "SELECT ra FROM SpecObj"),
        ]
    }

    #[test]
    fn popular_ranks_by_frequency() {
        let mut p = PopularBaseline::fit(&train());
        let q = QueryRecord::new("SELECT x FROM y").unwrap();
        let top = p.predict_n(&q, 2);
        assert_eq!(
            top.table,
            vec!["SpecObj".to_string(), "PhotoObj".to_string()]
        );
        assert_eq!(top.column[0], "ra");
        // Set prediction uses average set sizes.
        let set = p.predict_set(&q);
        assert!(set.tables.contains("SpecObj"));
        assert_eq!(set.tables.len(), 1); // avg table count per query = 1
    }

    #[test]
    fn popular_templates_most_frequent_first() {
        let mut p = PopularBaseline::fit(&train());
        let q = QueryRecord::new("SELECT x FROM y").unwrap();
        let t = p.predict_templates(&q, 2);
        assert!(!t.is_empty());
        // Next-templates: "SELECT Column, Column FROM Table" x2, others x1.
        assert_eq!(t[0].statement(), "SELECT Column, Column FROM Table");
    }

    #[test]
    fn naive_qi_echoes_current_query() {
        let mut n = NaiveQi::fit(&train());
        let q = QueryRecord::new("SELECT ra, petror FROM SpecObj WHERE z > 1").unwrap();
        let set = n.predict_set(&q);
        assert_eq!(set, q.fragments);
        let top = n.predict_n(&q, 1);
        // "ra" is more popular than "petror" in the train workload.
        assert_eq!(top.column, vec!["ra".to_string()]);
        let tpl = n.predict_templates(&q, 3);
        assert_eq!(tpl, vec![q.template.clone()]);
    }

    #[test]
    fn querie_retrieves_similar_queries() {
        let mut qr = Querie::fit(&train(), 3);
        assert!(qr.len() >= 4);
        // A query touching SpecObj/ra should retrieve SpecObj items.
        let q = QueryRecord::new("SELECT ra FROM SpecObj WHERE ra > 0").unwrap();
        let set = qr.predict_set(&q);
        assert!(set.tables.contains("SpecObj"));
        assert!(!set.tables.contains("PhotoObj"));
        let top = qr.predict_n(&q, 2);
        assert!(top.column.contains(&"ra".to_string()));
        let tpls = qr.predict_templates(&q, 2);
        assert!(!tpls.is_empty());
    }

    #[test]
    fn querie_structure_blind() {
        // Example 2 of the paper: QueRIE ranks by shared tables/columns,
        // not by structure — a structurally different query with the same
        // fragments is retrieved first.
        let train = vec![
            pair(
                "SELECT TOP 10 ra FROM SpecObj WHERE z BETWEEN 1 AND 2",
                "SELECT TOP 10 ra FROM SpecObj WHERE z BETWEEN 1 AND 2",
            ),
            pair("SELECT petror FROM PhotoObj", "SELECT petror FROM PhotoObj"),
        ];
        let mut qr = Querie::fit(&train, 1);
        let q = QueryRecord::new("SELECT ra, z FROM SpecObj").unwrap();
        let set = qr.predict_set(&q);
        assert!(set.tables.contains("SpecObj"));
    }

    #[test]
    fn querie_no_neighbours_returns_empty() {
        let mut qr = Querie::fit(&train(), 3);
        let q = QueryRecord::new("SELECT zzz FROM Unknown").unwrap();
        assert!(qr.predict_set(&q).is_empty());
        assert!(qr.predict_templates(&q, 3).is_empty());
    }

    #[test]
    fn baselines_handle_empty_training() {
        let mut p = PopularBaseline::fit(&[]);
        let q = QueryRecord::new("SELECT a FROM t").unwrap();
        assert!(p.predict_set(&q).is_empty());
        assert!(p.predict_templates(&q, 5).is_empty());
        let mut qr = Querie::fit(&[], 3);
        assert!(qr.is_empty());
        assert!(qr.predict_set(&q).is_empty());
    }
}
