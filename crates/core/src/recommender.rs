//! The workload-aware fragment recommender: offline step 1 (seq2seq
//! training on query pairs) and online step 4 (fragment-set and
//! N-fragments prediction), Sections 4.1.1 and 4.2.2 of the paper.

use crate::data::{build_vocab, encode_pairs, SeqMode};
use crate::lexicon::FragmentLexicon;
use crate::model::{AnyModel, Arch, SizePreset};
use crate::predict::{FragmentPredictor, PerKind};
use qrec_nn::decode::{decode, decode_with_cache, EncCache, Hypothesis, Strategy};
use qrec_nn::params::Params;
use qrec_nn::trainer::{try_train_seq2seq, TrainConfig, TrainError, TrainReport};
use qrec_sql::{FragmentKind, FragmentSet};
use qrec_workload::{QueryRecord, Split, Vocab, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the full fragment-recommendation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecommenderConfig {
    /// Architecture (the paper compares Transformer and ConvS2S).
    pub arch: Arch,
    /// Model size preset.
    pub size: SizePreset,
    /// Seq-aware (pairs) vs seq-less (reconstruction) training.
    pub seq_mode: SeqMode,
    /// Vocabulary frequency threshold.
    pub vocab_min_count: usize,
    /// Training loop settings.
    pub train: TrainConfig,
    /// Decoding length cap for online recommendation.
    pub max_decode_len: usize,
    /// Construction seed.
    pub seed: u64,
}

impl RecommenderConfig {
    /// Experiment defaults for an architecture and sequence mode.
    pub fn new(arch: Arch, seq_mode: SeqMode) -> Self {
        RecommenderConfig {
            arch,
            size: SizePreset::Small,
            seq_mode,
            vocab_min_count: 2,
            train: TrainConfig::default(),
            max_decode_len: 64,
            seed: 17,
        }
    }

    /// Tiny settings for tests.
    pub fn test(arch: Arch, seq_mode: SeqMode) -> Self {
        RecommenderConfig {
            arch,
            size: SizePreset::Test,
            seq_mode,
            vocab_min_count: 1,
            train: TrainConfig {
                epochs: 8,
                batch_size: 8,
                patience: 0,
                ..TrainConfig::default()
            },
            max_decode_len: 32,
            seed: 17,
        }
    }

    /// Report label like `"seq-aware transformer"`.
    pub fn label(&self) -> String {
        format!("{} {}", self.seq_mode.label(), self.arch.label())
    }
}

/// A trained fragment recommender.
pub struct Recommender {
    cfg: RecommenderConfig,
    model: AnyModel,
    params: Params,
    vocab: Vocab,
    lexicon: FragmentLexicon,
    rng: StdRng,
}

impl Recommender {
    /// Offline training (step 1): build the vocabulary and lexicon from
    /// the training split, then train the seq2seq model on query pairs
    /// (seq-aware) or on reconstruction (seq-less).
    ///
    /// Panics on a degenerate configuration (zero epochs, empty training
    /// split); use [`Recommender::try_train`] for a typed error.
    #[must_use]
    pub fn train(
        split: &Split,
        train_workload: &Workload,
        cfg: RecommenderConfig,
    ) -> (Self, TrainReport) {
        Self::try_train(split, train_workload, cfg)
            // qrec-lint: allow(no-panic-in-hot-path) -- documented panicking convenience wrapper; try_train is the typed path
            .unwrap_or_else(|e| panic!("Recommender::train: {e}"))
    }

    /// Fallible variant of [`Recommender::train`]: a zero-epoch
    /// `TrainConfig` or an empty training split is reported as a
    /// [`TrainError`] instead of panicking downstream.
    pub fn try_train(
        split: &Split,
        train_workload: &Workload,
        cfg: RecommenderConfig,
    ) -> Result<(Self, TrainReport), TrainError> {
        let vocab = build_vocab(&split.train, cfg.vocab_min_count);
        let lexicon = FragmentLexicon::from_workload(train_workload);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = Params::new();
        let model = AnyModel::build(cfg.arch, cfg.size, vocab.len(), &mut params, &mut rng);
        let train_data = encode_pairs(&split.train, &vocab, cfg.seq_mode);
        let val_data = encode_pairs(&split.val, &vocab, cfg.seq_mode);
        let report = try_train_seq2seq(&model, &mut params, &train_data, &val_data, &cfg.train)?;
        Ok((
            Recommender {
                cfg,
                model,
                params,
                vocab,
                lexicon,
                rng,
            },
            report,
        ))
    }

    /// Reassemble a recommender from previously trained parts (used by
    /// the experiment harness to cache trained models on disk).
    pub fn from_parts(
        cfg: RecommenderConfig,
        model: AnyModel,
        params: Params,
        vocab: Vocab,
        lexicon: FragmentLexicon,
    ) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Recommender {
            cfg,
            model,
            params,
            vocab,
            lexicon,
            rng,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &RecommenderConfig {
        &self.cfg
    }

    /// The trained parameter store (cloned by the fine-tuned classifier).
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The underlying architecture object.
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The fragment lexicon.
    pub fn lexicon(&self) -> &FragmentLexicon {
        &self.lexicon
    }

    /// Total scalar parameter count (Table 3's `#params`).
    pub fn param_count(&self) -> usize {
        self.params.scalar_count()
    }

    /// Build the int8 quantization sidecar on the parameter store (the
    /// serving layer's `QuantMode::Int8` boot/swap hook): decoding
    /// thereafter runs its projections through the int8 GEMM and keeps
    /// resident KV caches quantized. Deterministic and idempotent.
    pub fn quantize(&mut self) {
        self.params.quantize();
    }

    /// Drop the int8 sidecar, restoring the bitwise f32 path.
    pub fn dequantize(&mut self) {
        self.params.dequantize();
    }

    /// True when the parameter store carries an int8 sidecar.
    pub fn is_quantized(&self) -> bool {
        self.params.is_quantized()
    }

    /// Mutable access to the parameter store (the zoo's int8-section
    /// load path installs a rebuilt sidecar through this).
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Decode candidate next-query token sequences.
    #[must_use]
    pub fn decode_candidates(&mut self, q: &QueryRecord, strategy: Strategy) -> Vec<Hypothesis> {
        let src = self.vocab.encode(&q.tokens);
        self.decode_encoded(&src, strategy)
    }

    /// Decode candidates from raw word tokens (used by
    /// [`crate::session::SessionContext`] for multi-query inputs).
    #[must_use]
    pub fn decode_candidates_for_tokens(
        &mut self,
        tokens: &[String],
        strategy: Strategy,
    ) -> Vec<Hypothesis> {
        let src = self.vocab.encode(tokens);
        self.decode_encoded(&src, strategy)
    }

    fn decode_encoded(&mut self, src: &[usize], strategy: Strategy) -> Vec<Hypothesis> {
        // Route the internal RNG through the shared `&self` path so both
        // entry points decode identically. The RNG is tiny (4 words), so
        // the move out/in is free.
        let mut rng = self.rng.clone();
        let hyps = self.decode_encoded_with(src, strategy, &mut rng);
        self.rng = rng;
        hyps
    }

    // ----- shared (`&self`) prediction entry points --------------------
    //
    // The decode path only needs mutability for the sampling RNG. These
    // variants take the RNG from the caller so a `Recommender` behind an
    // `Arc` can serve many threads concurrently (each worker owns its own
    // `StdRng`); see the `qrec-serve` crate.

    /// Decode candidates without touching internal state; the caller
    /// provides the RNG used by sampling-based strategies.
    #[must_use]
    pub fn decode_candidates_with(
        &self,
        q: &QueryRecord,
        strategy: Strategy,
        rng: &mut StdRng,
    ) -> Vec<Hypothesis> {
        let src = self.vocab.encode(&q.tokens);
        self.decode_encoded_with(&src, strategy, rng)
    }

    /// Shared-state variant of [`Recommender::decode_candidates_for_tokens`].
    #[must_use]
    pub fn decode_candidates_for_tokens_with(
        &self,
        tokens: &[String],
        strategy: Strategy,
        rng: &mut StdRng,
    ) -> Vec<Hypothesis> {
        let src = self.vocab.encode(tokens);
        self.decode_encoded_with(&src, strategy, rng)
    }

    fn decode_encoded_with(
        &self,
        src: &[usize],
        strategy: Strategy,
        rng: &mut StdRng,
    ) -> Vec<Hypothesis> {
        decode(
            &self.model,
            &self.params,
            src,
            strategy,
            self.cfg.max_decode_len,
            rng,
        )
    }

    /// Greedy-decode the predicted next query and return its token
    /// spellings (diagnostics and examples).
    pub fn predict_next_tokens(&mut self, q: &QueryRecord) -> Vec<String> {
        let hyps = self.decode_candidates(q, Strategy::Greedy);
        hyps.first()
            .map(|h| {
                h.ids
                    .iter()
                    .map(|&id| self.vocab.token(id).to_string())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Aggregate fragment probabilities over the decoded search tree
    /// (Section 4.2.2): a fragment's probability on a path is the token
    /// probability at its first occurrence; paths sharing that prefix
    /// count once; probabilities sum over distinct paths.
    pub fn fragment_probabilities(&self, hyps: &[Hypothesis]) -> PerKind<HashMap<String, f64>> {
        let mut probs: PerKind<HashMap<String, f64>> = PerKind::default();
        // (kind, fragment) → set of distinct first-occurrence prefixes.
        let mut seen_prefixes: HashMap<(FragmentKind, String), Vec<Vec<usize>>> = HashMap::new();
        for hyp in hyps {
            let mut first_seen: HashMap<(FragmentKind, &str), usize> = HashMap::new();
            for (i, &id) in hyp.ids.iter().enumerate() {
                let token = self.vocab.token(id);
                let frag = FragmentLexicon::token_to_fragment(token);
                for &kind in self.lexicon.classify_token(token) {
                    first_seen.entry((kind, frag)).or_insert(i);
                }
            }
            for ((kind, frag), pos) in first_seen {
                let prefix: Vec<usize> = hyp.ids[..=pos].to_vec();
                let key = (kind, frag.to_string());
                let prefixes = seen_prefixes.entry(key.clone()).or_default();
                if !prefixes.contains(&prefix) {
                    prefixes.push(prefix);
                    *probs.get_mut(kind).entry(key.1).or_insert(0.0) += hyp.token_probs[pos] as f64;
                }
            }
        }
        probs
    }

    /// Rank fragments of each kind by aggregated probability.
    pub fn ranked_fragments(
        &mut self,
        q: &QueryRecord,
        strategy: Strategy,
    ) -> PerKind<Vec<String>> {
        let hyps = self.decode_candidates(q, strategy);
        self.rank_hypothesis_fragments(&hyps)
    }

    /// Rank fragments from raw word tokens (multi-query session input).
    pub fn ranked_fragments_for_tokens(
        &mut self,
        tokens: &[String],
        strategy: Strategy,
    ) -> PerKind<Vec<String>> {
        let hyps = self.decode_candidates_for_tokens(tokens, strategy);
        self.rank_hypothesis_fragments(&hyps)
    }

    /// Shared-state variant of [`Recommender::ranked_fragments`].
    pub fn ranked_fragments_with(
        &self,
        q: &QueryRecord,
        strategy: Strategy,
        rng: &mut StdRng,
    ) -> PerKind<Vec<String>> {
        let hyps = self.decode_candidates_with(q, strategy, rng);
        self.rank_hypothesis_fragments(&hyps)
    }

    /// [`Recommender::decode_candidates_for_tokens_with`] against a
    /// caller-owned [`EncCache`], so a serving worker that interleaves
    /// sessions reuses encoder passes across requests.
    #[must_use]
    pub fn decode_candidates_for_tokens_cached(
        &self,
        tokens: &[String],
        strategy: Strategy,
        rng: &mut StdRng,
        cache: &mut EncCache,
    ) -> Vec<Hypothesis> {
        let src = self.vocab.encode(tokens);
        decode_with_cache(
            &self.model,
            &self.params,
            &src,
            strategy,
            self.cfg.max_decode_len,
            rng,
            cache,
        )
    }

    /// [`Recommender::ranked_fragments_for_tokens_with`] against a
    /// caller-owned [`EncCache`] (the qrec-serve worker path).
    pub fn ranked_fragments_for_tokens_cached(
        &self,
        tokens: &[String],
        strategy: Strategy,
        rng: &mut StdRng,
        cache: &mut EncCache,
    ) -> PerKind<Vec<String>> {
        let hyps = self.decode_candidates_for_tokens_cached(tokens, strategy, rng, cache);
        self.rank_hypothesis_fragments(&hyps)
    }

    /// Shared-state variant of [`Recommender::ranked_fragments_for_tokens`].
    pub fn ranked_fragments_for_tokens_with(
        &self,
        tokens: &[String],
        strategy: Strategy,
        rng: &mut StdRng,
    ) -> PerKind<Vec<String>> {
        let hyps = self.decode_candidates_for_tokens_with(tokens, strategy, rng);
        self.rank_hypothesis_fragments(&hyps)
    }

    /// Shared-state variant of
    /// [`FragmentPredictor::predict_set`](crate::predict::FragmentPredictor::predict_set).
    pub fn predict_set_with(&self, q: &QueryRecord, rng: &mut StdRng) -> FragmentSet {
        let hyps = self.decode_candidates_with(q, Strategy::Greedy, rng);
        match hyps.first() {
            Some(h) => {
                let tokens: Vec<&str> = h.ids.iter().map(|&id| self.vocab.token(id)).collect();
                self.lexicon.fragments_of_tokens(tokens.iter().copied())
            }
            None => FragmentSet::default(),
        }
    }

    /// Shared-state variant of
    /// [`FragmentPredictor::predict_n`](crate::predict::FragmentPredictor::predict_n).
    pub fn predict_n_with(
        &self,
        q: &QueryRecord,
        n: usize,
        rng: &mut StdRng,
    ) -> PerKind<Vec<String>> {
        let ranked = self.ranked_fragments_with(q, Strategy::Beam { width: 5 }, rng);
        ranked.map(|_, r| r.iter().take(n).cloned().collect())
    }

    fn rank_hypothesis_fragments(&self, hyps: &[Hypothesis]) -> PerKind<Vec<String>> {
        let probs = self.fragment_probabilities(hyps);
        probs.map(|_, m| {
            let mut ranked: Vec<(&String, f64)> = m.iter().map(|(f, &p)| (f, p)).collect();
            ranked.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(b.0))
            });
            ranked.into_iter().map(|(f, _)| f.clone()).collect()
        })
    }
}

impl FragmentPredictor for Recommender {
    fn name(&self) -> String {
        self.cfg.label()
    }

    /// Fragment-set prediction: greedy-decode the next query and take the
    /// fragments of the generated statement (Section 4.2.2).
    fn predict_set(&mut self, q: &QueryRecord) -> FragmentSet {
        let mut rng = self.rng.clone();
        let set = self.predict_set_with(q, &mut rng);
        self.rng = rng;
        set
    }

    /// N-fragments prediction with the default beam-search strategy.
    fn predict_n(&mut self, q: &QueryRecord, n: usize) -> PerKind<Vec<String>> {
        let mut rng = self.rng.clone();
        let ranked = self.predict_n_with(q, n, &mut rng);
        self.rng = rng;
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrec_workload::gen::{generate, WorkloadProfile};

    fn tiny_setup(seq_mode: SeqMode) -> (Recommender, TrainReport, Split) {
        let (w, _) = generate(&WorkloadProfile::tiny(), 21);
        let mut rng = StdRng::seed_from_u64(5);
        let split = Split::paper(w.pairs(), &mut rng);
        let cfg = RecommenderConfig::test(Arch::Transformer, seq_mode);
        let (r, report) = Recommender::train(&split, &w, cfg);
        (r, report, split)
    }

    #[test]
    fn training_runs_and_improves() {
        let (_r, report, _) = tiny_setup(SeqMode::Aware);
        assert!(!report.epoch_losses.is_empty());
        let first = report.epoch_losses[0].0;
        let last = report.epoch_losses.last().unwrap().0;
        assert!(last < first, "train loss should drop: {first} -> {last}");
    }

    #[test]
    fn predict_set_returns_fragments() {
        let (mut r, _, split) = tiny_setup(SeqMode::Aware);
        // A briefly trained tiny model may decode an empty sequence for
        // some inputs; across several queries it must produce fragments.
        let any = split
            .test
            .iter()
            .take(5)
            .any(|p| !r.predict_set(&p.current).is_empty());
        assert!(any, "prediction should contain fragments for some query");
    }

    #[test]
    fn predict_n_truncates_and_ranks() {
        let (mut r, _, split) = tiny_setup(SeqMode::Aware);
        let q = &split.test.first().expect("test pairs").current;
        let top1 = r.predict_n(q, 1);
        let top3 = r.predict_n(q, 3);
        assert!(top1.table.len() <= 1);
        assert!(top3.table.len() <= 3);
        if !top1.table.is_empty() && !top3.table.is_empty() {
            assert_eq!(top1.table[0], top3.table[0], "ranking must be stable");
        }
    }

    #[test]
    fn seq_less_mode_reconstructs() {
        // A seq-less model learns identity; its greedy decode of a train
        // query should share fragments with the input. A briefly trained
        // tiny model is noisy on single queries, so require the echo to
        // show up across a handful of train queries.
        let (mut r, _, split) = tiny_setup(SeqMode::Less);
        let echoed = split.train.iter().take(8).any(|p| {
            let set = r.predict_set(&p.current);
            set.is_empty() || set.tables.intersection(&p.current.fragments.tables).count() > 0
        });
        assert!(echoed, "seq-less prediction should echo input tables");
    }

    #[test]
    fn fragment_probabilities_dedupe_shared_prefixes() {
        let (r, _, _) = tiny_setup(SeqMode::Aware);
        // Two hypotheses sharing the same prefix up to the fragment token:
        // the fragment must be counted once.
        let table_token = (0..r.vocab.len())
            .map(|i| r.vocab.token(i).to_string())
            .find(|t| {
                r.lexicon
                    .classify_token(t)
                    .contains(&qrec_sql::FragmentKind::Table)
            })
            .expect("some table in vocab");
        let tid = r.vocab.id(&table_token);
        let h1 = Hypothesis {
            ids: vec![tid, tid + 1],
            token_probs: vec![0.5, 0.9],
            log_prob: -1.0,
            finished: true,
        };
        let h2 = Hypothesis {
            ids: vec![tid, tid + 2],
            token_probs: vec![0.5, 0.1],
            log_prob: -2.0,
            finished: true,
        };
        let probs = r.fragment_probabilities(&[h1, h2]);
        let p = probs.table.get(&table_token).copied().unwrap_or(0.0);
        assert!(
            (p - 0.5).abs() < 1e-9,
            "shared prefix counted once, got {p}"
        );
    }

    #[test]
    fn fragment_probabilities_sum_distinct_paths() {
        let (r, _, _) = tiny_setup(SeqMode::Aware);
        let table_token = (0..r.vocab.len())
            .map(|i| r.vocab.token(i).to_string())
            .find(|t| {
                r.lexicon
                    .classify_token(t)
                    .contains(&qrec_sql::FragmentKind::Table)
            })
            .expect("some table in vocab");
        let tid = r.vocab.id(&table_token);
        let other = if tid + 1 < r.vocab.len() {
            tid + 1
        } else {
            tid - 1
        };
        // Fragment appears via two different prefixes: probabilities add.
        let h1 = Hypothesis {
            ids: vec![tid],
            token_probs: vec![0.4],
            log_prob: -1.0,
            finished: true,
        };
        let h2 = Hypothesis {
            ids: vec![other, tid],
            token_probs: vec![0.3, 0.2],
            log_prob: -2.0,
            finished: true,
        };
        let probs = r.fragment_probabilities(&[h1, h2]);
        let p = probs.table.get(&table_token).copied().unwrap_or(0.0);
        assert!((p - 0.6).abs() < 1e-6, "0.4 + 0.2 expected, got {p}");
    }
}
