//! Prediction interfaces shared by the deep models and the baselines.

use qrec_sql::{FragmentKind, FragmentSet, Template};
use qrec_workload::QueryRecord;
use serde::{Deserialize, Serialize};

/// A value per fragment kind.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerKind<T> {
    /// Tables.
    pub table: T,
    /// Columns.
    pub column: T,
    /// Functions.
    pub function: T,
    /// Literals.
    pub literal: T,
}

impl<T> PerKind<T> {
    /// Access by kind.
    pub fn get(&self, kind: FragmentKind) -> &T {
        match kind {
            FragmentKind::Table => &self.table,
            FragmentKind::Column => &self.column,
            FragmentKind::Function => &self.function,
            FragmentKind::Literal => &self.literal,
        }
    }

    /// Mutable access by kind.
    pub fn get_mut(&mut self, kind: FragmentKind) -> &mut T {
        match kind {
            FragmentKind::Table => &mut self.table,
            FragmentKind::Column => &mut self.column,
            FragmentKind::Function => &mut self.function,
            FragmentKind::Literal => &mut self.literal,
        }
    }

    /// Build from a function of kind.
    pub fn from_fn(mut f: impl FnMut(FragmentKind) -> T) -> Self {
        PerKind {
            table: f(FragmentKind::Table),
            column: f(FragmentKind::Column),
            function: f(FragmentKind::Function),
            literal: f(FragmentKind::Literal),
        }
    }

    /// Map each kind's value.
    pub fn map<U>(&self, mut f: impl FnMut(FragmentKind, &T) -> U) -> PerKind<U> {
        PerKind {
            table: f(FragmentKind::Table, &self.table),
            column: f(FragmentKind::Column, &self.column),
            function: f(FragmentKind::Function, &self.function),
            literal: f(FragmentKind::Literal, &self.literal),
        }
    }
}

/// Fragment prediction interface (Definition 7, both flavours).
///
/// `&mut self` because the deep predictors carry decoding RNG state.
pub trait FragmentPredictor {
    /// Method label for reports.
    fn name(&self) -> String;

    /// Fragment-*set* prediction: all fragments expected in `Q_{i+1}`.
    fn predict_set(&mut self, q: &QueryRecord) -> FragmentSet;

    /// *N-fragments* prediction: up to `n` ranked fragments per kind.
    fn predict_n(&mut self, q: &QueryRecord, n: usize) -> PerKind<Vec<String>>;
}

/// Template prediction interface (Definition 6).
pub trait TemplatePredictor {
    /// Method label for reports.
    fn name(&self) -> String;

    /// Up to `n` ranked templates for `template(Q_{i+1})`.
    fn predict_templates(&mut self, q: &QueryRecord, n: usize) -> Vec<Template>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kind_accessors() {
        let mut p: PerKind<usize> = PerKind::from_fn(|k| k as usize);
        assert_eq!(*p.get(FragmentKind::Table), 0);
        assert_eq!(*p.get(FragmentKind::Literal), 3);
        *p.get_mut(FragmentKind::Column) = 42;
        assert_eq!(p.column, 42);
        let doubled = p.map(|_, v| v * 2);
        assert_eq!(doubled.column, 84);
    }
}
