//! Next template prediction (Sections 4.1.2 and 4.2.1): a classifier
//! over template classes, optionally fine-tuned from a trained seq2seq
//! encoder.

use crate::data::{build_vocab, encode_labeled, SeqMode, TemplateClasses};
use crate::model::{AnyModel, Arch, SizePreset};
use crate::predict::TemplatePredictor;
use crate::recommender::Recommender;
use qrec_nn::classifier::{classify, ClassifierHead};
use qrec_nn::params::Params;
use qrec_nn::trainer::{train_classifier, TrainConfig, TrainReport};
use qrec_sql::Template;
use qrec_workload::{QueryRecord, Split, Vocab};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Template classifier configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemplateClfConfig {
    /// Hidden width of the two-layer head (the paper tunes in
    /// `[300, 2000]`; scaled down here).
    pub hidden: usize,
    /// Head dropout.
    pub dropout: f32,
    /// Keep templates with at least this many training occurrences as
    /// classes (Section 5.4.1 uses 3).
    pub min_support: usize,
    /// Training settings.
    pub train: TrainConfig,
}

impl Default for TemplateClfConfig {
    fn default() -> Self {
        TemplateClfConfig {
            hidden: 128,
            dropout: 0.1,
            min_support: 3,
            train: TrainConfig::default(),
        }
    }
}

impl TemplateClfConfig {
    /// Tiny settings for tests.
    pub fn test() -> Self {
        TemplateClfConfig {
            hidden: 32,
            dropout: 0.0,
            min_support: 1,
            train: TrainConfig {
                epochs: 5,
                batch_size: 8,
                patience: 0,
                ..TrainConfig::default()
            },
        }
    }
}

/// A trained template classification model: encoder + two-layer head.
pub struct TemplateModel {
    name: String,
    model: AnyModel,
    head: ClassifierHead,
    params: Params,
    vocab: Vocab,
    classes: TemplateClasses,
    rng: StdRng,
}

impl TemplateModel {
    /// Fine-tuned construction (step 2): clone the trained seq2seq
    /// parameter store, append a classification head, and continue
    /// training everything on the labelled pairs.
    pub fn train_fine_tuned(
        rec: &Recommender,
        split: &Split,
        cfg: TemplateClfConfig,
    ) -> (Self, TrainReport) {
        use qrec_nn::seq2seq::Seq2Seq;
        let vocab = rec.vocab().clone();
        let classes = TemplateClasses::from_pairs(&split.train, cfg.min_support);
        let mut params = rec.params().clone();
        let mut rng = StdRng::seed_from_u64(cfg.train.seed);
        let model = rec.model().clone();
        let head = ClassifierHead::new(
            &mut params,
            model.d_model(),
            cfg.hidden,
            classes.len().max(1),
            cfg.dropout,
            &mut rng,
        );
        let name = format!("{}-tuned", rec.config().label());
        Self::finish_training(name, model, head, params, vocab, classes, split, cfg, rng)
    }

    /// Non-fine-tuned ablation: same architecture, freshly initialised
    /// encoder, trained only on the classification objective.
    pub fn train_from_scratch(
        arch: Arch,
        size: SizePreset,
        seq_label: SeqMode,
        split: &Split,
        cfg: TemplateClfConfig,
        vocab_min_count: usize,
        seed: u64,
    ) -> (Self, TrainReport) {
        let vocab = build_vocab(&split.train, vocab_min_count);
        let classes = TemplateClasses::from_pairs(&split.train, cfg.min_support);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let model = AnyModel::build(arch, size, vocab.len(), &mut params, &mut rng);
        use qrec_nn::seq2seq::Seq2Seq;
        let head = ClassifierHead::new(
            &mut params,
            model.d_model(),
            cfg.hidden,
            classes.len().max(1),
            cfg.dropout,
            &mut rng,
        );
        let name = format!("{} {} untuned", seq_label.label(), arch.label());
        Self::finish_training(name, model, head, params, vocab, classes, split, cfg, rng)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_training(
        name: String,
        model: AnyModel,
        head: ClassifierHead,
        mut params: Params,
        vocab: Vocab,
        classes: TemplateClasses,
        split: &Split,
        cfg: TemplateClfConfig,
        rng: StdRng,
    ) -> (Self, TrainReport) {
        let train_data = encode_labeled(&split.train, &vocab, &classes);
        let val_data = encode_labeled(&split.val, &vocab, &classes);
        // Degenerate but legitimate: a high support threshold can leave
        // zero template classes, so there is nothing to train on. The
        // trainer treats empty data as a typed error; here it just means
        // an untrained head that predicts nothing.
        let report = if train_data.is_empty() {
            TrainReport::default()
        } else {
            train_classifier(
                &model,
                &head,
                &mut params,
                &train_data,
                &val_data,
                &cfg.train,
            )
        };
        (
            TemplateModel {
                name,
                model,
                head,
                params,
                vocab,
                classes,
                rng,
            },
            report,
        )
    }

    /// Reassemble a classifier from previously trained parts (model
    /// caching in the experiment harness).
    pub fn from_parts(
        name: String,
        model: AnyModel,
        head: ClassifierHead,
        params: Params,
        vocab: Vocab,
        classes: TemplateClasses,
        seed: u64,
    ) -> Self {
        TemplateModel {
            name,
            model,
            head,
            params,
            vocab,
            classes,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Decompose into serialisable parts: `(name, model, head, params,
    /// vocab, classes)`.
    pub fn parts(
        &self,
    ) -> (
        &str,
        &AnyModel,
        &ClassifierHead,
        &Params,
        &Vocab,
        &TemplateClasses,
    ) {
        (
            &self.name,
            &self.model,
            &self.head,
            &self.params,
            &self.vocab,
            &self.classes,
        )
    }

    /// The class label space.
    pub fn classes(&self) -> &TemplateClasses {
        &self.classes
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.params.scalar_count()
    }

    /// Ranked `(template, probability)` predictions.
    pub fn predict_ranked(&mut self, q: &QueryRecord, n: usize) -> Vec<(Template, f32)> {
        if self.classes.is_empty() {
            return Vec::new();
        }
        let src = self.vocab.encode(&q.tokens);
        let ranked = classify(&self.model, &self.head, &self.params, &src, &mut self.rng);
        ranked
            .into_iter()
            .take(n)
            .map(|(class, p)| (self.classes.template(class).clone(), p))
            .collect()
    }
}

impl TemplatePredictor for TemplateModel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn predict_templates(&mut self, q: &QueryRecord, n: usize) -> Vec<Template> {
        self.predict_ranked(q, n)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommender::RecommenderConfig;
    use qrec_workload::gen::{generate, WorkloadProfile};

    fn tiny_split() -> (qrec_workload::Workload, Split) {
        let (w, _) = generate(&WorkloadProfile::tiny(), 33);
        let mut rng = StdRng::seed_from_u64(3);
        let split = Split::paper(w.pairs(), &mut rng);
        (w, split)
    }

    #[test]
    fn from_scratch_classifier_trains_and_predicts() {
        let (_w, split) = tiny_split();
        let cfg = TemplateClfConfig::test();
        let (mut clf, report) = TemplateModel::train_from_scratch(
            Arch::Transformer,
            SizePreset::Test,
            SeqMode::Aware,
            &split,
            cfg,
            1,
            9,
        );
        assert!(!report.epoch_losses.is_empty());
        assert!(clf.classes().len() > 1);
        let q = &split.test.first().expect("test pairs").current;
        let preds = clf.predict_templates(q, 3);
        assert!(preds.len() <= 3 && !preds.is_empty());
        // Probabilities ranked descending.
        let ranked = clf.predict_ranked(q, 5);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn fine_tuned_classifier_builds_on_recommender() {
        let (w, split) = tiny_split();
        let rcfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
        let (rec, _) = Recommender::train(&split, &w, rcfg);
        let pre_params = rec.params().scalar_count();
        let (mut clf, report) =
            TemplateModel::train_fine_tuned(&rec, &split, TemplateClfConfig::test());
        assert!(clf.param_count() > pre_params, "head params appended");
        assert!(!report.epoch_losses.is_empty());
        assert!(clf.name().contains("tuned"));
        let q = &split.test.first().expect("test pairs").current;
        assert!(!clf.predict_templates(q, 2).is_empty());
    }

    #[test]
    fn classifier_beats_chance_on_train_data() {
        let (_w, split) = tiny_split();
        let cfg = TemplateClfConfig {
            train: TrainConfig {
                epochs: 10,
                batch_size: 8,
                patience: 0,
                ..TrainConfig::default()
            },
            ..TemplateClfConfig::test()
        };
        let (mut clf, _) = TemplateModel::train_from_scratch(
            Arch::Transformer,
            SizePreset::Test,
            SeqMode::Aware,
            &split,
            cfg,
            1,
            9,
        );
        let k = clf.classes().len() as f64;
        let mut hits = 0usize;
        let mut n = 0usize;
        for p in split.train.iter().take(60) {
            if let Some(label) = clf.classes().index_of(&p.next.template) {
                n += 1;
                let pred = clf.predict_templates(&p.current, 1);
                if !pred.is_empty() && clf.classes().index_of(&pred[0]) == Some(label) {
                    hits += 1;
                }
            }
        }
        assert!(n > 10);
        let acc = hits as f64 / n as f64;
        assert!(
            acc > 1.5 / k,
            "train accuracy {acc} should beat chance 1/{k}"
        );
    }
}
