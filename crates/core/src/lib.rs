//! # qrec-core — workload-aware query recommendation
//!
//! The paper's contribution (EDBT 2023, Lai et al.): next-query
//! prediction split into **next template prediction** and **next
//! fragment prediction**, solved with seq2seq models trained on query
//! pairs mined from workloads, plus a fine-tuned template classifier.
//!
//! * [`data`] — vocabulary, pair encoding, seq-aware/seq-less modes,
//!   template classes.
//! * [`lexicon`] — token → fragment-kind classification learned from the
//!   workload.
//! * [`model`] — architecture selection (Transformer / ConvS2S / GRU).
//! * [`recommender`] — step 1 + step 4: the trained seq2seq fragment
//!   recommender with greedy / beam / diverse / stochastic decoding and
//!   search-tree fragment-probability aggregation.
//! * [`template_clf`] — steps 2 + 3: the template classifier, fine-tuned
//!   from the recommender's encoder or trained from scratch.
//! * [`baselines`] — `popular`, `naive Q_i`, and QueRIE.
//! * [`metrics`] / [`eval`] — Table 4's metrics and the evaluation
//!   harness over test pairs.
//! * [`tuning`] — the paper's per-dataset hyper-parameter grid search
//!   selected by validation loss (Section 6.2.4).
//!
//! ## End-to-end sketch
//!
//! ```no_run
//! use qrec_core::prelude::*;
//! use qrec_workload::gen::{generate, WorkloadProfile};
//! use qrec_workload::Split;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let (workload, _catalog) = generate(&WorkloadProfile::sdss(), 1);
//! let mut rng = StdRng::seed_from_u64(1);
//! let split = Split::paper(workload.pairs(), &mut rng);
//!
//! // Step 1: train the seq2seq recommender on (Q_i, Q_{i+1}) pairs.
//! let cfg = RecommenderConfig::new(Arch::Transformer, SeqMode::Aware);
//! let (mut rec, _report) = Recommender::train(&split, &workload, cfg);
//!
//! // Step 2: fine-tune a template classifier from its encoder.
//! let (mut clf, _) = TemplateModel::train_fine_tuned(&rec, &split, TemplateClfConfig::default());
//!
//! // Steps 3-4: online recommendation for the user's current query.
//! let q = &split.test[0].current;
//! let fragments = rec.predict_n(q, 5);
//! let templates = clf.predict_templates(q, 3);
//! println!("suggest tables {:?} and templates {templates:?}", fragments.table);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod data;
pub mod eval;
pub mod lexicon;
pub mod metrics;
pub mod model;
pub mod predict;
pub mod recommender;
pub mod session;
pub mod template_clf;
pub mod tuning;

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::baselines::{NaiveQi, PopularBaseline, Querie};
    pub use crate::data::{SeqMode, TemplateClasses};
    pub use crate::eval::{eval_fragment_set, eval_n_fragments, eval_templates};
    pub use crate::lexicon::FragmentLexicon;
    pub use crate::metrics::{RankMetrics, SetMetrics};
    pub use crate::model::{AnyModel, Arch, SizePreset};
    pub use crate::predict::{FragmentPredictor, PerKind, TemplatePredictor};
    pub use crate::recommender::{Recommender, RecommenderConfig};
    pub use crate::session::SessionContext;
    pub use crate::template_clf::{TemplateClfConfig, TemplateModel};
}

pub use prelude::*;
