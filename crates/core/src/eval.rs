//! Evaluation harness: runs predictors over test pairs and computes the
//! paper's metrics (Section 6.2.5, Table 4).

use crate::metrics::{rank_of, RankMetrics, SetMetrics};
use crate::predict::{FragmentPredictor, PerKind, TemplatePredictor};
use qrec_sql::FragmentKind;
use qrec_workload::OwnedPair;
use std::collections::BTreeSet;

/// Evaluate fragment-*set* prediction: the predictor outputs all the
/// fragments it expects in `Q_{i+1}`; metrics are micro-averaged per
/// fragment kind (Table 5).
pub fn eval_fragment_set(
    predictor: &mut dyn FragmentPredictor,
    pairs: &[OwnedPair],
) -> PerKind<SetMetrics> {
    let mut metrics: PerKind<SetMetrics> = PerKind::default();
    for p in pairs {
        let predicted = predictor.predict_set(&p.current);
        for kind in FragmentKind::ALL {
            metrics
                .get_mut(kind)
                .record(predicted.of(kind), p.next.fragments.of(kind));
        }
    }
    metrics
}

/// Evaluate *N-fragments* prediction (Figure 12): the predictor outputs
/// up to `n` ranked fragments per kind; the actual set is the next
/// query's fragments.
pub fn eval_n_fragments(
    predictor: &mut dyn FragmentPredictor,
    pairs: &[OwnedPair],
    n: usize,
) -> PerKind<SetMetrics> {
    let mut metrics: PerKind<SetMetrics> = PerKind::default();
    for p in pairs {
        let predicted = predictor.predict_n(&p.current, n);
        for kind in FragmentKind::ALL {
            let pred_set: BTreeSet<String> = predicted.get(kind).iter().cloned().collect();
            metrics
                .get_mut(kind)
                .record(&pred_set, p.next.fragments.of(kind));
        }
    }
    metrics
}

/// Evaluate N-fragments prediction for several values of `n` at once,
/// asking the predictor for its ranking only once per pair (decoding is
/// the expensive step for the deep models). Returns one metric set per
/// entry of `ns`, in order.
pub fn eval_n_fragments_curve(
    predictor: &mut dyn FragmentPredictor,
    pairs: &[OwnedPair],
    ns: &[usize],
) -> Vec<PerKind<SetMetrics>> {
    let max_n = ns.iter().copied().max().unwrap_or(0);
    let mut out: Vec<PerKind<SetMetrics>> = vec![PerKind::default(); ns.len()];
    for p in pairs {
        let ranked = predictor.predict_n(&p.current, max_n);
        for (i, &n) in ns.iter().enumerate() {
            for kind in FragmentKind::ALL {
                let pred_set: BTreeSet<String> = ranked.get(kind).iter().take(n).cloned().collect();
                out[i]
                    .get_mut(kind)
                    .record(&pred_set, p.next.fragments.of(kind));
            }
        }
    }
    out
}

/// Evaluate N-templates prediction (Table 6 at `n = 1`, Figure 13 for
/// `n ∈ [1, 5]`): accuracy, MRR, NDCG of the true next template in the
/// ranked list.
pub fn eval_templates(
    predictor: &mut dyn TemplatePredictor,
    pairs: &[OwnedPair],
    n: usize,
) -> RankMetrics {
    let mut metrics = RankMetrics::default();
    for p in pairs {
        let ranked = predictor.predict_templates(&p.current, n);
        metrics.record(rank_of(&ranked, &p.next.template, n));
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{NaiveQi, PopularBaseline, Querie};
    use qrec_workload::QueryRecord;

    fn pair(a: &str, b: &str) -> OwnedPair {
        OwnedPair {
            current: QueryRecord::new(a).unwrap(),
            next: QueryRecord::new(b).unwrap(),
            session_id: 0,
            dataset: 0,
        }
    }

    fn pairs() -> Vec<OwnedPair> {
        vec![
            pair("SELECT ra FROM SpecObj", "SELECT ra, z FROM SpecObj"),
            pair("SELECT ra, z FROM SpecObj", "SELECT ra, z FROM SpecObj"),
            pair(
                "SELECT g FROM PhotoObj",
                "SELECT g FROM PhotoObj WHERE g > 1",
            ),
        ]
    }

    #[test]
    fn naive_qi_recall_reflects_fragment_overlap() {
        let data = pairs();
        let mut naive = NaiveQi::fit(&data);
        let m = eval_fragment_set(&mut naive, &data);
        // Tables never change within these pairs → perfect table metrics.
        assert_eq!(m.table.precision(), 1.0);
        assert_eq!(m.table.recall(), 1.0);
        // Columns: pair 1 misses "z" (recall < 1), others exact.
        assert!(m.column.recall() < 1.0);
        assert!(m.column.precision() > 0.5);
    }

    #[test]
    fn n_fragments_precision_drops_with_larger_n() {
        let data = pairs();
        let mut popular = PopularBaseline::fit(&data);
        let m1 = eval_n_fragments(&mut popular, &data, 1);
        let m3 = eval_n_fragments(&mut popular, &data, 3);
        // More predictions → recall can only grow, precision only drop.
        assert!(m3.column.recall() >= m1.column.recall());
        assert!(m3.column.precision() <= m1.column.precision() + 1e-12);
    }

    #[test]
    fn template_eval_accuracy_and_mrr() {
        let data = pairs();
        // naive Q_i predicts template(Q_i): correct only for pair 2.
        let mut naive = NaiveQi::fit(&data);
        let m = eval_templates(&mut naive, &data, 1);
        assert_eq!(m.count(), 3);
        assert!((m.accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.mrr() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn template_eval_rank_aware_at_larger_n() {
        let data = pairs();
        let mut popular = PopularBaseline::fit(&data);
        let m1 = eval_templates(&mut popular, &data, 1);
        let m5 = eval_templates(&mut popular, &data, 5);
        assert!(m5.accuracy() >= m1.accuracy());
        assert!(m5.mrr() >= m1.mrr());
    }

    #[test]
    fn querie_evaluates_without_panicking() {
        let data = pairs();
        let mut qr = Querie::fit(&data, 5);
        let m = eval_fragment_set(&mut qr, &data);
        assert!(m.table.f1() > 0.0);
        let t = eval_templates(&mut qr, &data, 3);
        assert!(t.accuracy() >= 0.0);
    }

    #[test]
    fn empty_test_set_is_safe() {
        let mut naive = NaiveQi::fit(&[]);
        let m = eval_fragment_set(&mut naive, &[]);
        assert_eq!(m.table.f1(), 1.0); // vacuously perfect: nothing predicted, nothing expected
        let t = eval_templates(&mut naive, &[], 1);
        assert_eq!(t.count(), 0);
    }
}
