//! Architecture selection: a single enum wrapping the three seq2seq
//! architectures behind one [`Seq2Seq`] object.

use qrec_nn::params::{Fwd, Params};
use qrec_nn::{
    ConvS2S, ConvS2SConfig, DecodeState, GruConfig, GruSeq2Seq, Seq2Seq, Transformer,
    TransformerConfig,
};
use qrec_tensor::{NodeId, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which architecture to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// Transformer encoder–decoder.
    Transformer,
    /// Convolutional seq2seq.
    ConvS2S,
    /// GRU with attention.
    Gru,
}

impl Arch {
    /// Report label (`"transformer"` etc. — the paper abbreviates the
    /// transformer as `tfm`).
    pub fn label(&self) -> &'static str {
        match self {
            Arch::Transformer => "transformer",
            Arch::ConvS2S => "convs2s",
            Arch::Gru => "gru",
        }
    }
}

/// Size preset for a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizePreset {
    /// The default experiment size (see crate docs on scaling).
    Small,
    /// Minimal size for tests.
    Test,
}

/// An instantiated architecture.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // built once per pipeline; size is irrelevant
pub enum AnyModel {
    /// Transformer.
    Transformer(Transformer),
    /// ConvS2S.
    ConvS2S(ConvS2S),
    /// GRU.
    Gru(GruSeq2Seq),
}

impl AnyModel {
    /// Build a model of the chosen architecture and size, registering
    /// weights in `params`.
    pub fn build(
        arch: Arch,
        size: SizePreset,
        vocab: usize,
        params: &mut Params,
        rng: &mut StdRng,
    ) -> Self {
        match (arch, size) {
            (Arch::Transformer, SizePreset::Small) => AnyModel::Transformer(Transformer::new(
                params,
                TransformerConfig::small(vocab),
                rng,
            )),
            (Arch::Transformer, SizePreset::Test) => AnyModel::Transformer(Transformer::new(
                params,
                TransformerConfig::test(vocab),
                rng,
            )),
            (Arch::ConvS2S, SizePreset::Small) => {
                AnyModel::ConvS2S(ConvS2S::new(params, ConvS2SConfig::small(vocab), rng))
            }
            (Arch::ConvS2S, SizePreset::Test) => {
                AnyModel::ConvS2S(ConvS2S::new(params, ConvS2SConfig::test(vocab), rng))
            }
            (Arch::Gru, SizePreset::Small) => {
                AnyModel::Gru(GruSeq2Seq::new(params, GruConfig::small(vocab), rng))
            }
            (Arch::Gru, SizePreset::Test) => {
                AnyModel::Gru(GruSeq2Seq::new(params, GruConfig::test(vocab), rng))
            }
        }
    }

    /// Which architecture this is.
    pub fn arch(&self) -> Arch {
        match self {
            AnyModel::Transformer(_) => Arch::Transformer,
            AnyModel::ConvS2S(_) => Arch::ConvS2S,
            AnyModel::Gru(_) => Arch::Gru,
        }
    }
}

impl Seq2Seq for AnyModel {
    fn encode(&self, fwd: &mut Fwd<'_>, src: &[usize]) -> NodeId {
        match self {
            AnyModel::Transformer(m) => m.encode(fwd, src),
            AnyModel::ConvS2S(m) => m.encode(fwd, src),
            AnyModel::Gru(m) => m.encode(fwd, src),
        }
    }

    fn decode(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        match self {
            AnyModel::Transformer(m) => m.decode(fwd, enc, tgt_in),
            AnyModel::ConvS2S(m) => m.decode(fwd, enc, tgt_in),
            AnyModel::Gru(m) => m.decode(fwd, enc, tgt_in),
        }
    }

    fn decode_last_logits(&self, fwd: &mut Fwd<'_>, enc: NodeId, tgt_in: &[usize]) -> NodeId {
        match self {
            AnyModel::Transformer(m) => m.decode_last_logits(fwd, enc, tgt_in),
            AnyModel::ConvS2S(m) => m.decode_last_logits(fwd, enc, tgt_in),
            AnyModel::Gru(m) => m.decode_last_logits(fwd, enc, tgt_in),
        }
    }

    fn begin_decode(&self, fwd: &mut Fwd<'_>, enc: &Arc<Tensor>, batch: usize) -> DecodeState {
        match self {
            AnyModel::Transformer(m) => m.begin_decode(fwd, enc, batch),
            AnyModel::ConvS2S(m) => m.begin_decode(fwd, enc, batch),
            AnyModel::Gru(m) => m.begin_decode(fwd, enc, batch),
        }
    }

    fn step_logits(
        &self,
        fwd: &mut Fwd<'_>,
        state: &mut DecodeState,
        last_toks: &[usize],
    ) -> Tensor {
        match self {
            AnyModel::Transformer(m) => m.step_logits(fwd, state, last_toks),
            AnyModel::ConvS2S(m) => m.step_logits(fwd, state, last_toks),
            AnyModel::Gru(m) => m.step_logits(fwd, state, last_toks),
        }
    }

    fn vocab(&self) -> usize {
        match self {
            AnyModel::Transformer(m) => m.vocab(),
            AnyModel::ConvS2S(m) => m.vocab(),
            AnyModel::Gru(m) => m.vocab(),
        }
    }

    fn d_model(&self) -> usize {
        match self {
            AnyModel::Transformer(m) => m.d_model(),
            AnyModel::ConvS2S(m) => m.d_model(),
            AnyModel::Gru(m) => m.d_model(),
        }
    }

    fn arch_name(&self) -> &'static str {
        self.arch().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrec_nn::params::forward_eval;
    use rand::SeedableRng;

    #[test]
    fn all_architectures_build_and_run() {
        for arch in [Arch::Transformer, Arch::ConvS2S, Arch::Gru] {
            let mut params = Params::new();
            let mut rng = StdRng::seed_from_u64(1);
            let model = AnyModel::build(arch, SizePreset::Test, 15, &mut params, &mut rng);
            assert_eq!(model.arch(), arch);
            assert_eq!(model.vocab(), 15);
            let shape = forward_eval(&params, &mut rng, |fwd| {
                let enc = model.encode(fwd, &[1, 4, 5, 2]);
                let logits = model.decode(fwd, enc, &[1, 6]);
                fwd.graph.value(logits).shape()
            });
            assert_eq!(shape, (2, 15), "{arch:?}");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Arch::Transformer.label(), "transformer");
        assert_eq!(Arch::ConvS2S.label(), "convs2s");
        assert_eq!(Arch::Gru.label(), "gru");
    }
}
