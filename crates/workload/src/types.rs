//! Core workload data types: queries, sessions, pairs, workloads
//! (Definitions 1 and 3 of the paper).

use qrec_sql::{extract_fragments, parse, query_tokens, template, FragmentSet, Template};
use serde::{Deserialize, Serialize};

/// A single query occurrence in a workload, with every derived artefact
/// the pipeline needs pre-computed once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The raw SQL statement as issued.
    pub sql: String,
    /// Canonical statement (parse → print).
    pub canonical: String,
    /// Model token sequence (Definition 1, numbers collapsed to `<NUM>`).
    pub tokens: Vec<String>,
    /// The query template (Definition 5).
    pub template: Template,
    /// The fragment sets (Definition 4).
    pub fragments: FragmentSet,
}

impl QueryRecord {
    /// Parse and derive all artefacts of one SQL statement.
    ///
    /// # Errors
    ///
    /// Returns the parse error if the statement is not valid in the `qrec`
    /// dialect; workload loaders skip such records, mirroring the paper's
    /// pre-processing which drops unparseable statements.
    pub fn new(sql: &str) -> Result<Self, qrec_sql::ParseError> {
        let query = parse(sql)?;
        // Resolve aliases first (Section 5.4.1) so templates, fragments,
        // and token sequences all see real table names.
        let resolved = qrec_sql::normalize::resolve_aliases(&query);
        Ok(QueryRecord {
            sql: sql.to_string(),
            canonical: resolved.to_string(),
            tokens: query_tokens(&resolved),
            template: template(&resolved),
            fragments: extract_fragments(&resolved),
        })
    }
}

/// A user session: an ordered sequence of queries (Definition 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Opaque session identifier.
    pub id: u64,
    /// Which dataset/schema the session operates on (SQLShare has 64,
    /// SDSS has 1).
    pub dataset: u32,
    /// Queries in issue order.
    pub queries: Vec<QueryRecord>,
}

impl Session {
    /// Consecutive query pairs `(Q_i, Q_{i+1})` of this session.
    pub fn pairs(&self) -> impl Iterator<Item = QueryPair<'_>> {
        self.queries.windows(2).map(|w| QueryPair {
            current: &w[0],
            next: &w[1],
        })
    }

    /// Number of consecutive pairs (`len - 1`, saturating).
    pub fn pair_count(&self) -> usize {
        self.queries.len().saturating_sub(1)
    }
}

/// A borrowed consecutive query pair within a session.
#[derive(Debug, Clone, Copy)]
pub struct QueryPair<'a> {
    /// `Q_i` — the preceding query.
    pub current: &'a QueryRecord,
    /// `Q_{i+1}` — the next query.
    pub next: &'a QueryRecord,
}

/// An owned query pair, the unit of the train/validation/test splits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnedPair {
    /// `Q_i`.
    pub current: QueryRecord,
    /// `Q_{i+1}`.
    pub next: QueryRecord,
    /// Session the pair came from.
    pub session_id: u64,
    /// Dataset the session operates on.
    pub dataset: u32,
}

/// A query workload: a set of sessions (Definition 3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable name, e.g. `"sdss-synthetic"`.
    pub name: String,
    /// All sessions.
    pub sessions: Vec<Session>,
}

impl Workload {
    /// Create an empty workload with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            sessions: Vec::new(),
        }
    }

    /// Total number of queries across sessions.
    pub fn query_count(&self) -> usize {
        self.sessions.iter().map(|s| s.queries.len()).sum()
    }

    /// Total number of consecutive pairs across sessions.
    pub fn pair_count(&self) -> usize {
        self.sessions.iter().map(|s| s.pair_count()).sum()
    }

    /// Materialise every consecutive pair as an [`OwnedPair`].
    pub fn pairs(&self) -> Vec<OwnedPair> {
        let mut out = Vec::with_capacity(self.pair_count());
        for s in &self.sessions {
            for w in s.queries.windows(2) {
                out.push(OwnedPair {
                    current: w[0].clone(),
                    next: w[1].clone(),
                    session_id: s.id,
                    dataset: s.dataset,
                });
            }
        }
        out
    }

    /// Number of distinct datasets the sessions touch.
    pub fn dataset_count(&self) -> usize {
        let mut ds: Vec<u32> = self.sessions.iter().map(|s| s.dataset).collect();
        ds.sort_unstable();
        ds.dedup();
        ds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(sql: &str) -> QueryRecord {
        QueryRecord::new(sql).unwrap()
    }

    #[test]
    fn query_record_derives_artifacts() {
        let r = rec("SELECT j.target FROM Jobs j WHERE j.queue = 'FULL'");
        assert_eq!(
            r.canonical,
            "SELECT Jobs.target FROM Jobs WHERE Jobs.queue = 'FULL'"
        );
        assert_eq!(
            r.template.statement(),
            "SELECT Column FROM Table WHERE Column = Literal"
        );
        assert!(r.fragments.tables.contains("Jobs"));
        assert!(r.tokens.contains(&"Jobs".to_string()));
    }

    #[test]
    fn query_record_rejects_invalid_sql() {
        assert!(QueryRecord::new("SELEC * FRM t").is_err());
        assert!(QueryRecord::new("").is_err());
    }

    #[test]
    fn session_pairs_are_consecutive() {
        let s = Session {
            id: 1,
            dataset: 0,
            queries: vec![
                rec("SELECT a FROM t"),
                rec("SELECT b FROM t"),
                rec("SELECT c FROM t"),
            ],
        };
        let pairs: Vec<_> = s.pairs().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].current.sql, "SELECT a FROM t");
        assert_eq!(pairs[0].next.sql, "SELECT b FROM t");
        assert_eq!(pairs[1].current.sql, "SELECT b FROM t");
        assert_eq!(s.pair_count(), 2);
    }

    #[test]
    fn single_query_session_has_no_pairs() {
        let s = Session {
            id: 1,
            dataset: 0,
            queries: vec![rec("SELECT a FROM t")],
        };
        assert_eq!(s.pair_count(), 0);
        assert_eq!(s.pairs().count(), 0);
    }

    #[test]
    fn workload_counts() {
        let mut w = Workload::new("test");
        w.sessions.push(Session {
            id: 1,
            dataset: 0,
            queries: vec![rec("SELECT a FROM t"), rec("SELECT b FROM t")],
        });
        w.sessions.push(Session {
            id: 2,
            dataset: 3,
            queries: vec![rec("SELECT c FROM u")],
        });
        assert_eq!(w.query_count(), 3);
        assert_eq!(w.pair_count(), 1);
        assert_eq!(w.pairs().len(), 1);
        assert_eq!(w.dataset_count(), 2);
        assert_eq!(w.pairs()[0].session_id, 1);
    }
}
