//! Synthetic workload generation.
//!
//! The paper evaluates on the real SDSS and SQLShare query logs, which we
//! cannot ship. This module generates workloads that reproduce the
//! *causal structure* those logs exhibit (see DESIGN.md §2): users pick a
//! table with Zipf popularity, start from an exploratory query, and evolve
//! it through a session — re-submitting, tweaking literals, or refining
//! the structure (projecting columns, filtering, aggregating, joining,
//! nesting). Each table carries "hot" columns/functions/literals, so the
//! next query's fragments are statistically predictable from the current
//! query — the signal the paper's workload-aware models learn.

pub mod builder;
pub mod profile;
pub mod schema;

pub use builder::{Agg, InSub, Lit, Pred, PredOp, ProjItem, Projection, QueryState, Side};
pub use profile::WorkloadProfile;
pub use schema::{build_catalog, zipf_index, Catalog, DatasetDef, TableDef};

use crate::types::{QueryRecord, Session, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a workload (and its catalog) from a profile and seed.
pub fn generate(profile: &WorkloadProfile, seed: u64) -> (Workload, Catalog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = build_catalog(profile, &mut rng);
    let workload = generate_with_catalog(profile, &catalog, &mut rng);
    (workload, catalog)
}

/// Generate sessions over an existing catalog.
pub fn generate_with_catalog(
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) -> Workload {
    let mut w = Workload::new(profile.name.clone());
    w.sessions.reserve(profile.sessions);
    for id in 0..profile.sessions {
        w.sessions
            .push(simulate_session(profile, catalog, rng, id as u64));
    }
    w
}

fn sample_session_len(profile: &WorkloadProfile, rng: &mut StdRng) -> usize {
    if rng.gen_bool(profile.p_singleton_session) {
        return 1;
    }
    // Geometric tail above a minimum of 2, mean ≈ mean_session_len.
    let extra_mean = (profile.mean_session_len - 2.0).max(0.5);
    let keep = extra_mean / (extra_mean + 1.0);
    let mut len = 2usize;
    while len < profile.max_session_len && rng.gen_bool(keep) {
        len += 1;
    }
    len
}

/// Simulate one session.
fn simulate_session(
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
    id: u64,
) -> Session {
    let dataset = zipf_index(rng, catalog.datasets.len(), profile.dataset_zipf);
    let n_tables = catalog.datasets[dataset].tables.len();
    let table = zipf_index(rng, n_tables, profile.table_zipf);
    let len = sample_session_len(profile, rng);
    let scripted = rng.gen_bool(profile.p_scripted);

    let mut stage = 0usize;
    let mut state = if scripted {
        scripted_state(catalog, dataset, table, stage, rng)
    } else {
        initial_state(profile, catalog, rng, dataset, table)
    };
    let mut queries = Vec::with_capacity(len);
    queries.push(record(&state, catalog, profile));

    for _ in 1..len {
        // Scripted (programmatic) clients have their own step mix: they
        // mostly *advance* through the pipeline, which is what makes the
        // next query predictable beyond copying the current one.
        let (p_repeat, p_lit) = if scripted {
            (SCRIPT_P_REPEAT, SCRIPT_P_LITERAL_ONLY)
        } else {
            (profile.p_repeat, profile.p_literal_only)
        };
        let r: f64 = rng.gen();
        if r < p_repeat {
            // Exact resubmission: leave the state untouched.
        } else if r < p_repeat + p_lit && has_literals(&state) {
            mutate_literals(&mut state, profile, catalog, rng);
        } else if scripted {
            // Advance through the fixed, table-determined pipeline; after
            // the terminal stage the bot starts the next batch cycle.
            stage = if stage + 1 >= SCRIPT_STAGES {
                1
            } else {
                stage + 1
            };
            state = scripted_state(catalog, dataset, table, stage, rng);
        } else {
            structural_step(&mut state, profile, catalog, rng);
        }
        queries.push(record(&state, catalog, profile));
    }

    Session {
        id,
        dataset: catalog.datasets[dataset].id,
        queries,
    }
}

/// Number of stages in the scripted pipeline.
const SCRIPT_STAGES: usize = 7;
/// Scripted clients resubmit occasionally …
const SCRIPT_P_REPEAT: f64 = 0.30;
/// … and rarely stop to tweak literals: advancing is their mode.
const SCRIPT_P_LITERAL_ONLY: f64 = 0.10;

/// The deterministic scripted pipeline: given a table, stage `k` fully
/// determines the query structure and its string literals; only numeric
/// literal values vary (they collapse to `<NUM>` in token space anyway).
fn scripted_state(
    catalog: &Catalog,
    dataset: usize,
    table: usize,
    stage: usize,
    rng: &mut StdRng,
) -> QueryState {
    let t = &catalog.datasets[dataset].tables[table];
    let hot = |i: usize| t.hot_columns[i % t.hot_columns.len().max(1)];
    let hot_lit = |i: usize, rng: &mut StdRng| -> Lit {
        if t.hot_literals.is_empty() {
            Lit::Num(rng.gen_range(0..1000))
        } else {
            Lit::Str(t.hot_literals[i % t.hot_literals.len()].clone())
        }
    };
    let mut s = QueryState::star(dataset, table);
    // Stage 0: SELECT * FROM T — the opener.
    if stage >= 1 {
        // Stage 1: project the table's two lead columns.
        s.projection = Projection::Items(vec![
            ProjItem::Column(Side::Main, hot(0)),
            ProjItem::Column(Side::Main, hot(1)),
        ]);
    }
    if stage >= 2 {
        // Stage 2: filter on the third hot column.
        s.predicates.push(Pred {
            side: Side::Main,
            col: hot(2),
            op: PredOp::Gt,
            lit: Lit::Num(rng.gen_range(0..1000)),
            lit2: None,
        });
    }
    if stage >= 3 {
        // Stage 3: add the table's signature string filter.
        let lit = hot_lit(0, rng);
        s.predicates.push(Pred {
            side: Side::Main,
            col: hot(3),
            op: PredOp::Eq,
            lit,
            lit2: None,
        });
    }
    if stage >= 4 {
        // Stage 4: aggregate with the table's preferred function.
        s.agg = Some(Agg {
            group_col: hot(0),
            func: t.hot_function.clone(),
            agg_col: Some(hot(1)),
            distinct: false,
            having_gt: None,
        });
    }
    if stage >= 5 {
        // Stage 5: threshold the aggregate.
        if let Some(agg) = &mut s.agg {
            agg.having_gt = Some(rng.gen_range(1..100));
        }
    }
    if stage >= 6 {
        // Stage 6: rank and truncate.
        s.order_by = Some((Side::Main, hot(0), true));
        s.limit = Some(100);
    }
    s
}

fn record(state: &QueryState, catalog: &Catalog, profile: &WorkloadProfile) -> QueryRecord {
    let sql = state.render(catalog, profile.use_top);
    QueryRecord::new(&sql)
        .unwrap_or_else(|e| panic!("generator must emit parseable SQL: {sql:?}: {e}"))
}

// ---------------------------------------------------------------------
// Initial query shapes
// ---------------------------------------------------------------------

fn initial_state(
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
    dataset: usize,
    table: usize,
) -> QueryState {
    let mut state = QueryState::star(dataset, table);
    match rng.gen_range(0..10) {
        0..=3 => {} // SELECT * FROM t
        4..=5 => {
            // SELECT TOP n * FROM t
            state.limit = Some(*[10u32, 100, 1000].get(rng.gen_range(0..3)).expect("idx"));
        }
        6..=7 => {
            // SELECT hot columns FROM t
            let n = 1 + rng.gen_range(0..2);
            let cols = pick_cols(state.main(catalog), profile, rng, n);
            state.projection = Projection::Items(
                cols.into_iter()
                    .map(|c| ProjItem::Column(Side::Main, c))
                    .collect(),
            );
        }
        8 => {
            // SELECT COUNT(*) FROM t
            state.projection = Projection::Items(vec![ProjItem::CountStar]);
        }
        _ => {
            // SELECT COUNT(DISTINCT hot) FROM t — the Figure 1 opener.
            let c = pick_col(state.main(catalog), profile, rng);
            state.projection = Projection::Items(vec![ProjItem::Func {
                func: "COUNT".into(),
                side: Side::Main,
                col: c,
                distinct: true,
            }]);
        }
    }
    state
}

// ---------------------------------------------------------------------
// Fragment pickers (hot-set biased — the learnable signal)
// ---------------------------------------------------------------------

fn pick_col(table: &TableDef, profile: &WorkloadProfile, rng: &mut StdRng) -> usize {
    if !table.hot_columns.is_empty() && rng.gen_bool(profile.p_hot_column) {
        table.hot_columns[rng.gen_range(0..table.hot_columns.len())]
    } else {
        rng.gen_range(0..table.columns.len())
    }
}

/// The `i`-th hot column of a table (wrapping), falling back to a random
/// column with probability `1 - p_hot_column`. Session edits walk the
/// hot columns *in order*, which is what makes the next fragment
/// statistically predictable from the current query — the workload
/// signal the paper's models exploit.
fn hot_col_at(table: &TableDef, profile: &WorkloadProfile, rng: &mut StdRng, i: usize) -> usize {
    if !table.hot_columns.is_empty() && rng.gen_bool(profile.p_hot_column) {
        table.hot_columns[i % table.hot_columns.len()]
    } else {
        rng.gen_range(0..table.columns.len())
    }
}

fn pick_cols(
    table: &TableDef,
    profile: &WorkloadProfile,
    rng: &mut StdRng,
    n: usize,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n * 3 {
        if out.len() >= n {
            break;
        }
        let c = pick_col(table, profile, rng);
        if !out.contains(&c) {
            out.push(c);
        }
    }
    if out.is_empty() {
        out.push(0);
    }
    out
}

fn pick_function(
    table: &TableDef,
    catalog: &Catalog,
    profile: &WorkloadProfile,
    rng: &mut StdRng,
) -> String {
    if rng.gen_bool(profile.p_hot_function) {
        table.hot_function.clone()
    } else {
        let i = zipf_index(rng, catalog.functions.len(), 0.0);
        catalog.functions[i].clone()
    }
}

fn pick_str_literal(
    table: &TableDef,
    catalog: &Catalog,
    profile: &WorkloadProfile,
    rng: &mut StdRng,
) -> String {
    if !table.hot_literals.is_empty() && rng.gen_bool(profile.p_hot_literal) {
        table.hot_literals[rng.gen_range(0..table.hot_literals.len())].clone()
    } else {
        let i = zipf_index(rng, catalog.literals.len(), 1.0);
        catalog.literals[i].clone()
    }
}

fn pick_lit(
    table: &TableDef,
    catalog: &Catalog,
    profile: &WorkloadProfile,
    rng: &mut StdRng,
    op: PredOp,
) -> Lit {
    match op {
        PredOp::Like => Lit::Str(format!(
            "%{}%",
            pick_str_literal(table, catalog, profile, rng)
        )),
        PredOp::Eq if rng.gen_bool(0.6) => Lit::Str(pick_str_literal(table, catalog, profile, rng)),
        PredOp::Between | PredOp::Gt | PredOp::Lt | PredOp::Eq => {
            if rng.gen_bool(0.5) {
                Lit::Num(rng.gen_range(0..1000))
            } else {
                Lit::Dec(rng.gen_range(0..10_000))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Literal-only mutation (template-preserving)
// ---------------------------------------------------------------------

fn has_literals(state: &QueryState) -> bool {
    !state.predicates.is_empty()
        || state.limit.is_some()
        || state.agg.as_ref().is_some_and(|a| a.having_gt.is_some())
        || state
            .in_sub
            .as_ref()
            .is_some_and(|s| s.inner_pred.is_some())
}

fn mutate_lit(lit: &mut Lit, rng: &mut StdRng, pool: &[String]) {
    match lit {
        Lit::Num(n) => *n = rng.gen_range(0..1000).max(*n / 2),
        Lit::Dec(n) => *n = rng.gen_range(0..10_000).max(*n / 2),
        Lit::Str(s) => {
            // Preserve LIKE-pattern shape so the template stays put.
            let inner = &pool[rng.gen_range(0..pool.len())];
            if s.starts_with('%') && s.ends_with('%') && s.len() >= 2 {
                *s = format!("%{inner}%");
            } else {
                *s = inner.clone();
            }
        }
    }
}

fn mutate_literals(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    let _ = profile;
    let table = state.main(catalog).clone();
    let pool: Vec<String> = if table.hot_literals.is_empty() {
        catalog.literals.clone()
    } else {
        table.hot_literals.clone()
    };
    let mut touched = false;
    for p in &mut state.predicates {
        if rng.gen_bool(0.6) {
            mutate_lit(&mut p.lit, rng, &pool);
            if let Some(l2) = &mut p.lit2 {
                mutate_lit(l2, rng, &pool);
            }
            touched = true;
        }
    }
    if let Some(n) = &mut state.limit {
        if rng.gen_bool(0.3) {
            *n = [10u32, 50, 100, 500, 1000][rng.gen_range(0..5)];
            touched = true;
        }
    }
    if let Some(agg) = &mut state.agg {
        if let Some(th) = &mut agg.having_gt {
            if rng.gen_bool(0.3) {
                *th = rng.gen_range(1..100);
                touched = true;
            }
        }
    }
    if let Some(is) = &mut state.in_sub {
        if let Some((_, lit)) = &mut is.inner_pred {
            if rng.gen_bool(0.3) {
                mutate_lit(lit, rng, &pool);
                touched = true;
            }
        }
    }
    if !touched {
        // Guarantee at least one literal changed so the step is a
        // sequential change (the branch was taken because literals exist).
        if let Some(p) = state.predicates.first_mut() {
            mutate_lit(&mut p.lit, rng, &pool);
        } else if let Some(n) = &mut state.limit {
            *n = n.saturating_add(10);
        } else if let Some(agg) = &mut state.agg {
            if let Some(th) = &mut agg.having_gt {
                *th += 1;
            }
        } else if let Some(is) = &mut state.in_sub {
            if let Some((_, lit)) = &mut is.inner_pred {
                mutate_lit(lit, rng, &pool);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Structural evolution (the session "story")
// ---------------------------------------------------------------------

fn structural_step(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    if rng.gen_bool(profile.p_new_subtask) {
        // Fresh sub-task: new table in the same dataset, reset structure.
        let n_tables = catalog.datasets[state.dataset].tables.len();
        let table = zipf_index(rng, n_tables, profile.table_zipf);
        *state = initial_state(profile, catalog, rng, state.dataset, table);
        return;
    }

    let is_star = matches!(state.projection, Projection::Star) && state.agg.is_none();
    if is_star {
        // Stage 1: move from exploration to projection.
        match weighted(rng, &[65, 20, 15]) {
            0 => specify_columns(state, profile, catalog, rng),
            1 => add_predicate(state, profile, catalog, rng),
            _ => {
                state.limit = Some([10u32, 100, 1000][rng.gen_range(0..3)]);
            }
        }
        return;
    }
    if state.predicates.is_empty() && state.in_sub.is_none() {
        // Stage 2: add selectivity.
        match weighted(rng, &[50, 20, 15, 15]) {
            0 => add_predicate(state, profile, catalog, rng),
            1 => add_column(state, profile, catalog, rng),
            2 => add_aggregate(state, profile, catalog, rng),
            _ => add_join_or_predicate(state, profile, catalog, rng),
        }
        return;
    }
    if state.agg.is_none() {
        // Stage 3: refine or aggregate.
        match weighted(rng, &[28, 18, 14, 10, 10, 12, 8]) {
            0 => add_aggregate(state, profile, catalog, rng),
            1 => add_predicate(state, profile, catalog, rng),
            2 => add_column(state, profile, catalog, rng),
            3 => add_join_or_predicate(state, profile, catalog, rng),
            4 => add_in_subquery(state, profile, catalog, rng),
            5 => add_order_or_limit(state, profile, catalog, rng),
            _ => drop_predicate_or_column(state, rng),
        }
        return;
    }
    // Stage 4: polish the aggregate query.
    match weighted(rng, &[30, 25, 20, 15, 10]) {
        0 => add_having(state, rng),
        1 => add_order_or_limit(state, profile, catalog, rng),
        2 => add_predicate(state, profile, catalog, rng),
        3 => change_aggregate(state, profile, catalog, rng),
        _ => drop_predicate_or_column(state, rng),
    }
}

fn weighted(rng: &mut StdRng, weights: &[u32]) -> usize {
    let total: u32 = weights.iter().sum();
    let mut u = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

fn specify_columns(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    let n = 1 + rng.gen_range(0..3);
    let main = state.main(catalog);
    let mut cols = Vec::with_capacity(n);
    for i in 0..n {
        let c = hot_col_at(main, profile, rng, i);
        if !cols.contains(&c) {
            cols.push(c);
        }
    }
    state.projection = Projection::Items(
        cols.into_iter()
            .map(|c| ProjItem::Column(Side::Main, c))
            .collect(),
    );
}

fn add_column(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    let main = state.main(catalog).clone();
    let next_slot = match &state.projection {
        Projection::Items(items) => items.len(),
        Projection::Star => 0,
    };
    let c = hot_col_at(&main, profile, rng, next_slot);
    match &mut state.projection {
        Projection::Star => specify_columns(state, profile, catalog, rng),
        Projection::Items(items) => {
            let item = ProjItem::Column(Side::Main, c);
            if !items.contains(&item) && items.len() < 6 {
                items.push(item);
            } else if items.len() > 1 && rng.gen_bool(0.5) {
                items.pop();
            } else {
                // Swap in a function application on an existing column.
                let func = pick_function(&main, catalog, profile, rng);
                items[0] = ProjItem::Func {
                    func,
                    side: Side::Main,
                    col: c,
                    distinct: false,
                };
            }
        }
    }
}

fn add_predicate(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    if state.predicates.len() >= 4 {
        // Saturated: tweak the last predicate's operator instead.
        if let Some(p) = state.predicates.last_mut() {
            p.op = match p.op {
                PredOp::Eq => PredOp::Gt,
                PredOp::Gt => PredOp::Lt,
                other => other,
            };
        }
        return;
    }
    let side = if state.join.is_some() && rng.gen_bool(0.3) {
        Side::Joined
    } else {
        Side::Main
    };
    let table = match side {
        Side::Main => state.main(catalog),
        Side::Joined => state.joined(catalog).expect("join checked"),
    };
    // The i-th predicate of a table's users goes on the i-th hot column
    // with the operator users prefer for it (keyed by column index) —
    // both predictable from the current query.
    let slot = state.predicates.len() + 1;
    let col = hot_col_at(table, profile, rng, slot);
    let op = if rng.gen_bool(0.75) {
        match col % 5 {
            0 => PredOp::Gt,
            1 => PredOp::Eq,
            2 => PredOp::Lt,
            3 => PredOp::Like,
            _ => PredOp::Between,
        }
    } else {
        match weighted(rng, &[30, 25, 15, 15, 15]) {
            0 => PredOp::Gt,
            1 => PredOp::Eq,
            2 => PredOp::Lt,
            3 => PredOp::Like,
            _ => PredOp::Between,
        }
    };
    let lit = pick_lit(table, catalog, profile, rng, op);
    let lit2 = (op == PredOp::Between).then(|| match &lit {
        Lit::Num(n) => Lit::Num(n + rng.gen_range(1..100)),
        Lit::Dec(n) => Lit::Dec(n + rng.gen_range(1..1000)),
        Lit::Str(_) => Lit::Num(rng.gen_range(1..100)),
    });
    state.predicates.push(Pred {
        side,
        col,
        op,
        lit,
        lit2,
    });
}

fn add_aggregate(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    let main = state.main(catalog);
    let group_col = hot_col_at(main, profile, rng, 0);
    let func = pick_function(main, catalog, profile, rng);
    let agg_col = if rng.gen_bool(0.7) {
        let mut c = hot_col_at(main, profile, rng, 1);
        if c == group_col {
            c = (c + 1) % main.columns.len();
        }
        Some(c)
    } else {
        None
    };
    state.agg = Some(Agg {
        group_col,
        func: if agg_col.is_none() {
            "COUNT".into()
        } else {
            func
        },
        agg_col,
        distinct: rng.gen_bool(0.3),
        having_gt: None,
    });
    state.distinct = false;
    state.order_by = None;
}

fn change_aggregate(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    let main = state.main(catalog).clone();
    if let Some(agg) = &mut state.agg {
        if rng.gen_bool(0.5) {
            agg.func = pick_function(&main, catalog, profile, rng);
            if agg.agg_col.is_none() {
                agg.agg_col = Some(pick_col(&main, profile, rng));
            }
        } else {
            agg.group_col = pick_col(&main, profile, rng);
        }
    }
}

fn add_having(state: &mut QueryState, rng: &mut StdRng) {
    if let Some(agg) = &mut state.agg {
        if agg.having_gt.is_none() {
            agg.having_gt = Some(rng.gen_range(1..50));
        } else {
            agg.having_gt = Some(rng.gen_range(1..100));
        }
    }
}

fn add_join_or_predicate(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    if state.join.is_none() {
        if let Some(partner) = state.main(catalog).join_partner {
            if partner != state.table {
                state.join = Some(partner);
                return;
            }
        }
    }
    add_predicate(state, profile, catalog, rng);
}

fn add_in_subquery(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    if state.in_sub.is_some() {
        add_predicate(state, profile, catalog, rng);
        return;
    }
    let main = state.main(catalog);
    let Some(inner_table) = main.join_partner else {
        add_predicate(state, profile, catalog, rng);
        return;
    };
    let inner = &catalog.datasets[state.dataset].tables[inner_table];
    let inner_col = inner.key_column;
    let inner_pred = rng.gen_bool(0.5).then(|| {
        (
            pick_col(inner, profile, rng),
            Lit::Num(rng.gen_range(0..100)),
        )
    });
    state.in_sub = Some(InSub {
        col: main.key_column,
        inner_table,
        inner_col,
        inner_pred,
    });
}

fn add_order_or_limit(
    state: &mut QueryState,
    profile: &WorkloadProfile,
    catalog: &Catalog,
    rng: &mut StdRng,
) {
    if state.order_by.is_none() && rng.gen_bool(0.6) {
        let c = if let Some(agg) = &state.agg {
            agg.group_col
        } else {
            hot_col_at(state.main(catalog), profile, rng, 0)
        };
        state.order_by = Some((Side::Main, c, rng.gen_bool(0.7)));
    } else if state.limit.is_none() {
        state.limit = Some([10u32, 100, 1000][rng.gen_range(0..3)]);
    } else if !state.distinct && state.agg.is_none() {
        state.distinct = true;
    } else {
        add_predicate(state, profile, catalog, rng);
    }
}

fn drop_predicate_or_column(state: &mut QueryState, rng: &mut StdRng) {
    if !state.predicates.is_empty() && rng.gen_bool(0.6) {
        let i = rng.gen_range(0..state.predicates.len());
        state.predicates.remove(i);
        return;
    }
    if let Projection::Items(items) = &mut state.projection {
        if items.len() > 1 {
            items.pop();
            return;
        }
    }
    // Nothing to drop: clear the aggregate's HAVING as a fallback edit.
    if let Some(agg) = &mut state.agg {
        agg.having_gt = None;
    } else {
        state.limit = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn tiny_workload_generates() {
        let (w, c) = generate(&WorkloadProfile::tiny(), 7);
        assert_eq!(w.sessions.len(), 30);
        assert!(w.pair_count() > 30);
        assert_eq!(c.datasets.len(), 1);
        // Every query parsed (QueryRecord::new would have panicked otherwise)
        // and has at least one table.
        for s in &w.sessions {
            for q in &s.queries {
                assert!(!q.fragments.tables.is_empty(), "{}", q.sql);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _) = generate(&WorkloadProfile::tiny(), 42);
        let (b, _) = generate(&WorkloadProfile::tiny(), 42);
        assert_eq!(a, b);
        let (c, _) = generate(&WorkloadProfile::tiny(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn session_lengths_respect_bounds() {
        let p = WorkloadProfile::tiny();
        let (w, _) = generate(&p, 1);
        for s in &w.sessions {
            assert!(!s.queries.is_empty());
            assert!(s.queries.len() <= p.max_session_len);
        }
        // Some singletons and some long sessions should exist.
        assert!(w.sessions.iter().any(|s| s.queries.len() == 1));
        assert!(w.sessions.iter().any(|s| s.queries.len() >= 4));
    }

    #[test]
    fn repeats_produce_identical_consecutive_queries() {
        // With p_repeat > 0 and enough pairs, identical consecutive
        // statements must occur.
        let (w, _) = generate(&WorkloadProfile::tiny(), 5);
        let mut repeats = 0;
        for s in &w.sessions {
            for p in s.pairs() {
                if p.current.canonical == p.next.canonical {
                    repeats += 1;
                }
            }
        }
        assert!(repeats > 0);
    }

    #[test]
    fn literal_only_steps_keep_template() {
        // Template-same rate must be well above the repeat rate alone,
        // because literal-only steps also preserve templates.
        let (w, _) = generate(&WorkloadProfile::tiny(), 11);
        let ps = stats::pair_stats(&w);
        assert!(
            ps.template_change_rate < 0.75,
            "change rate {}",
            ps.template_change_rate
        );
        assert!(ps.template_change_rate > 0.2);
    }

    #[test]
    fn sessions_tell_a_story() {
        // Later queries in long sessions are, on average, longer (more
        // tokens) than openers — the explore→refine arc of Figure 1.
        let (w, _) = generate(&WorkloadProfile::tiny(), 13);
        let mut first = 0usize;
        let mut first_n = 0usize;
        let mut late = 0usize;
        let mut late_n = 0usize;
        for s in &w.sessions {
            if s.queries.len() >= 4 {
                first += s.queries[0].tokens.len();
                first_n += 1;
                late += s.queries.last().expect("non-empty").tokens.len();
                late_n += 1;
            }
        }
        assert!(first_n > 0);
        let first_avg = first as f64 / first_n as f64;
        let late_avg = late as f64 / late_n as f64;
        assert!(late_avg > first_avg, "late {late_avg} vs first {first_avg}");
    }

    #[test]
    fn multi_dataset_profile_spreads_sessions() {
        let mut p = WorkloadProfile::tiny();
        p.datasets = 8;
        p.dataset_zipf = 0.2;
        p.sessions = 60;
        let (w, _) = generate(&p, 17);
        assert!(w.dataset_count() >= 4, "{}", w.dataset_count());
    }
}
