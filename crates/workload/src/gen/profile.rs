//! Workload generation profiles.
//!
//! A [`WorkloadProfile`] captures every knob that differentiates the SDSS
//! and SQLShare workloads in the paper's analysis (Section 5): corpus
//! size, schema sharing, fragment-type diversity, session dynamics, and
//! the pair-level template-change rate. The two presets are calibrated so
//! the generated workloads reproduce the *shape* of Table 2 and
//! Figures 9–11 at laptop scale.

use serde::{Deserialize, Serialize};

/// All generation knobs for one synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name (used in reports).
    pub name: String,

    // --- catalog ------------------------------------------------------
    /// Number of datasets (schemas). SDSS: 1 shared schema. SQLShare: 64
    /// user-uploaded datasets.
    pub datasets: usize,
    /// Tables per dataset, inclusive range.
    pub tables_per_dataset: (usize, usize),
    /// Columns per table, inclusive range.
    pub columns_per_table: (usize, usize),
    /// Size of the function-name pool (built-ins plus synthetic UDFs).
    pub function_pool: usize,
    /// Size of the string-literal pool.
    pub literal_pool: usize,
    /// Whether table names look like uploaded files (`[genes_2020.csv]`).
    pub file_style_tables: bool,
    /// Row-limiting dialect: `TOP n` (SQL Server / SDSS) when true,
    /// `LIMIT n` otherwise.
    pub use_top: bool,

    // --- sessions -----------------------------------------------------
    /// Number of sessions to generate.
    pub sessions: usize,
    /// Mean session length in queries (geometric-ish distribution).
    pub mean_session_len: f64,
    /// Maximum session length.
    pub max_session_len: usize,
    /// Fraction of sessions with exactly one query.
    pub p_singleton_session: f64,

    // --- per-step dynamics --------------------------------------------
    /// Probability the next query is an exact resubmission of the current
    /// one (duplicates are common in SDSS).
    pub p_repeat: f64,
    /// Probability the next query only changes literal values — the
    /// template stays identical. The main knob for the pair-level
    /// template-change rate (Figures 10/11 (f)).
    pub p_literal_only: f64,
    /// Probability a structural step switches to a fresh sub-task (new
    /// table, reset state) instead of refining the current query.
    pub p_new_subtask: f64,
    /// Fraction of sessions that are *scripted*: programmatic clients
    /// that walk a fixed, table-determined pipeline of query stages
    /// (explore → project → filter → aggregate → rank), varying only
    /// literals. The real SDSS log is dominated by such traffic, and it
    /// is what makes next-query transitions learnable beyond copying
    /// `Q_i` (Section 5.1; our DESIGN.md §2).
    pub p_scripted: f64,

    // --- popularity skew ----------------------------------------------
    /// Zipf exponent over tables within a dataset (higher = a few hot
    /// tables dominate, which is what makes the `popular` baseline strong
    /// on SDSS).
    pub table_zipf: f64,
    /// Zipf exponent over datasets (SQLShare sessions mostly stay on
    /// their own dataset; sampled per session).
    pub dataset_zipf: f64,

    /// How concentrated each table's "hot columns" are: the probability
    /// that a column pick comes from the table's hot set rather than the
    /// full column list. This is the learnable workload signal: the next
    /// query's fragments are predictable from the current table.
    pub p_hot_column: f64,
    /// Number of hot columns per table.
    pub hot_columns: usize,
    /// Probability that a function pick is the table's preferred function.
    pub p_hot_function: f64,
    /// Probability that a literal pick comes from the table's hot literals.
    pub p_hot_literal: f64,
    /// Hot literals per table.
    pub hot_literals: usize,
}

impl WorkloadProfile {
    /// SDSS-like preset: one big shared astronomy schema, long sessions,
    /// heavy duplication, strong popularity skew. Scaled to train in
    /// minutes; the SDSS ≫ SQLShare data-volume relation is preserved.
    pub fn sdss() -> Self {
        WorkloadProfile {
            name: "sdss".into(),
            datasets: 1,
            tables_per_dataset: (56, 56),
            columns_per_table: (30, 90),
            function_pool: 110,
            literal_pool: 400,
            file_style_tables: false,
            use_top: true,
            sessions: 1100,
            mean_session_len: 8.0,
            max_session_len: 32,
            p_singleton_session: 0.10,
            p_repeat: 0.20,
            p_literal_only: 0.55,
            p_new_subtask: 0.10,
            p_scripted: 0.50,
            table_zipf: 1.15,
            dataset_zipf: 1.0,
            p_hot_column: 0.85,
            hot_columns: 6,
            p_hot_function: 0.35,
            p_hot_literal: 0.8,
            hot_literals: 4,
        }
    }

    /// SQLShare-like preset: 64 small user-uploaded datasets, short
    /// sessions, less duplication, higher template churn, weak
    /// cross-session popularity (each user only sees their own data).
    pub fn sqlshare() -> Self {
        WorkloadProfile {
            name: "sqlshare".into(),
            datasets: 64,
            tables_per_dataset: (3, 9),
            columns_per_table: (6, 26),
            function_pool: 60,
            literal_pool: 220,
            file_style_tables: true,
            use_top: false,
            sessions: 330,
            mean_session_len: 6.0,
            max_session_len: 20,
            p_singleton_session: 0.14,
            p_repeat: 0.06,
            p_literal_only: 0.38,
            p_new_subtask: 0.16,
            p_scripted: 0.25,
            table_zipf: 0.6,
            dataset_zipf: 0.35,
            p_hot_column: 0.8,
            hot_columns: 4,
            p_hot_function: 0.85,
            p_hot_literal: 0.8,
            hot_literals: 3,
        }
    }

    /// A tiny profile for unit and integration tests: everything small so
    /// end-to-end pipelines run in milliseconds.
    pub fn tiny() -> Self {
        WorkloadProfile {
            name: "tiny".into(),
            datasets: 1,
            tables_per_dataset: (4, 4),
            columns_per_table: (4, 8),
            function_pool: 6,
            literal_pool: 10,
            file_style_tables: false,
            use_top: true,
            sessions: 30,
            mean_session_len: 5.0,
            max_session_len: 10,
            p_singleton_session: 0.1,
            p_repeat: 0.1,
            p_literal_only: 0.35,
            p_new_subtask: 0.1,
            p_scripted: 0.4,
            table_zipf: 1.0,
            dataset_zipf: 1.0,
            p_hot_column: 0.85,
            hot_columns: 3,
            p_hot_function: 0.8,
            p_hot_literal: 0.8,
            hot_literals: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for p in [
            WorkloadProfile::sdss(),
            WorkloadProfile::sqlshare(),
            WorkloadProfile::tiny(),
        ] {
            assert!(p.tables_per_dataset.0 <= p.tables_per_dataset.1);
            assert!(p.columns_per_table.0 <= p.columns_per_table.1);
            assert!(p.p_repeat + p.p_literal_only < 1.0);
            assert!(p.mean_session_len >= 1.0);
            assert!(p.max_session_len >= 2);
            assert!((0.0..=1.0).contains(&p.p_hot_column));
            assert!(p.sessions > 0);
        }
    }

    #[test]
    fn sdss_vs_sqlshare_shape_relations() {
        let sdss = WorkloadProfile::sdss();
        let ss = WorkloadProfile::sqlshare();
        // The relations that drive the paper's findings:
        assert!(sdss.datasets < ss.datasets);
        assert!(
            sdss.sessions as f64 * sdss.mean_session_len
                > 3.0 * ss.sessions as f64 * ss.mean_session_len
        );
        assert!(sdss.p_repeat > ss.p_repeat);
        assert!(sdss.p_literal_only > ss.p_literal_only);
        assert!(sdss.table_zipf > ss.table_zipf);
    }
}
