//! Synthetic catalog generation: datasets, tables, columns, functions,
//! literals — with per-table "hot" affinities that give the workload its
//! learnable structure.

use super::profile::WorkloadProfile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A table with its columns and affinity sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name (may contain dots for file-style SQLShare tables).
    pub name: String,
    /// All column names.
    pub columns: Vec<String>,
    /// Indices into `columns` of the table's hot columns — the ones users
    /// of this table overwhelmingly select and filter on.
    pub hot_columns: Vec<usize>,
    /// Preferred aggregate/scalar function of this table's users.
    pub hot_function: String,
    /// Literals users of this table filter with.
    pub hot_literals: Vec<String>,
    /// Index of a designated join-key column shared with the join partner.
    pub key_column: usize,
    /// Preferred join partner (index of a table in the same dataset), if
    /// the dataset has more than one table.
    pub join_partner: Option<usize>,
}

/// One dataset (schema): a set of tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetDef {
    /// Dataset id, also used as `Session::dataset`.
    pub id: u32,
    /// Tables of this dataset.
    pub tables: Vec<TableDef>,
}

/// The full synthetic catalog a workload is generated over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    /// All datasets.
    pub datasets: Vec<DatasetDef>,
    /// Global function-name pool (index 0..k are the common built-ins).
    pub functions: Vec<String>,
    /// Global string-literal pool.
    pub literals: Vec<String>,
}

const TABLE_STEMS: [&str; 28] = [
    "Photo", "Spec", "Star", "Galaxy", "Frame", "Field", "Tile", "Mask", "Neighbor", "Run",
    "Plate", "Fiber", "Tag", "Obj", "Chunk", "Segment", "Target", "Region", "Zone", "Match",
    "First", "Rosat", "Usno", "Profile", "Band", "Survey", "Stripe", "Patch",
];
const TABLE_SUFFIXES: [&str; 8] = ["Obj", "All", "Tag", "Log", "Info", "List", "Best", ""];

const COLUMN_STEMS: [&str; 40] = [
    "objid", "ra", "decl", "z", "zconf", "type", "gene", "temp", "name", "value", "status", "flag",
    "mode", "class", "mag", "err", "psf", "petro", "model", "fiber", "plate", "mjd", "run_id",
    "rerun", "camcol", "field_id", "priority", "target", "estimate", "queue", "depth", "lat",
    "lon", "species", "sample", "site", "year", "month", "score", "weight",
];

const BUILTIN_FUNCTIONS: [&str; 12] = [
    "COUNT", "AVG", "MIN", "MAX", "SUM", "ABS", "ROUND", "UPPER", "LOWER", "FLOOR", "CEILING",
    "LEN",
];

const LITERAL_STEMS: [&str; 24] = [
    "GALAXY", "STAR", "QSO", "UNKNOWN", "FULL", "QUICK", "QUERY", "DONE", "PENDING", "OK", "FAIL",
    "HIGH", "LOW", "NORTH", "SOUTH", "CONTROL", "TREATED", "WILD", "MUTANT", "RNA", "DNA", "OCEAN",
    "RIVER", "LAKE",
];

const FILE_EXTS: [&str; 4] = [".csv", ".txt", ".tsv", ".xlsx"];

fn syllable(rng: &mut impl Rng) -> String {
    const CONS: &[u8] = b"bcdfgklmnprstvz";
    const VOWS: &[u8] = b"aeiou";
    let c = CONS[rng.gen_range(0..CONS.len())] as char;
    let v = VOWS[rng.gen_range(0..VOWS.len())] as char;
    format!("{c}{v}")
}

fn synth_word(rng: &mut impl Rng, syllables: usize) -> String {
    let mut s = String::new();
    for _ in 0..syllables {
        s.push_str(&syllable(rng));
    }
    s
}

/// Generate a pool of unique names, seeded with realistic stems and
/// topped up with synthetic words. Names never collide with SQL keywords.
fn name_pool(
    rng: &mut StdRng,
    stems: &[&str],
    n: usize,
    decorate: impl Fn(&mut StdRng, &str) -> String,
) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut stem_iter = stems.iter().cycle();
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 50 {
        attempts += 1;
        let base = if out.len() < stems.len() {
            (*stem_iter.next().expect("cycle")).to_string()
        } else {
            let stem = stems[rng.gen_range(0..stems.len())];
            let syllables = 1 + rng.gen_range(0..2);
            format!("{stem}{}", synth_word(rng, syllables))
        };
        let name = decorate(rng, &base);
        if qrec_sql::token::Keyword::from_word(&name).is_some() {
            continue;
        }
        if seen.insert(name.clone()) {
            out.push(name);
        }
    }
    assert_eq!(out.len(), n, "could not generate {n} unique names");
    out
}

/// Build the catalog for a profile.
pub fn build_catalog(profile: &WorkloadProfile, rng: &mut StdRng) -> Catalog {
    // Functions: builtins first, then synthetic UDFs (fGetNearbyObjEq-ish).
    let mut functions: Vec<String> = BUILTIN_FUNCTIONS
        .iter()
        .take(profile.function_pool)
        .map(|s| s.to_string())
        .collect();
    let mut seen: std::collections::HashSet<String> = functions.iter().cloned().collect();
    while functions.len() < profile.function_pool {
        let name = format!(
            "fGet{}{}",
            capitalise(&synth_word(rng, 2)),
            capitalise(&synth_word(rng, 1))
        );
        if seen.insert(name.clone()) {
            functions.push(name);
        }
    }

    // Literals: realistic stems plus synthetic codes and LIKE patterns.
    let mut literals: Vec<String> = Vec::with_capacity(profile.literal_pool);
    let mut seen = std::collections::HashSet::new();
    for stem in LITERAL_STEMS.iter().take(profile.literal_pool) {
        if seen.insert(stem.to_string()) {
            literals.push(stem.to_string());
        }
    }
    while literals.len() < profile.literal_pool {
        let lit = match rng.gen_range(0..3) {
            0 => format!("%{}%", synth_word(rng, 2)),
            1 => synth_word(rng, 3).to_uppercase(),
            _ => format!("{}_{}", synth_word(rng, 2), rng.gen_range(1..100)),
        };
        if seen.insert(lit.clone()) {
            literals.push(lit);
        }
    }

    // Datasets and tables. Table names are globally unique so that the
    // fragment vocabulary distinguishes them (as in the real workloads).
    let total_tables_hint: usize = profile.datasets
        * (profile.tables_per_dataset.0 + profile.tables_per_dataset.1).div_ceil(2);
    let table_names = name_pool(rng, &TABLE_STEMS, total_tables_hint * 2, |rng, base| {
        let suffix = TABLE_SUFFIXES[rng.gen_range(0..TABLE_SUFFIXES.len())];
        if profile.file_style_tables {
            let ext = FILE_EXTS[rng.gen_range(0..FILE_EXTS.len())];
            format!("{}_{}{ext}", base.to_lowercase(), rng.gen_range(2000..2026))
        } else {
            format!("{base}{suffix}")
        }
    });
    let mut table_name_iter = table_names.into_iter();

    let mut datasets = Vec::with_capacity(profile.datasets);
    for ds_id in 0..profile.datasets {
        let n_tables = rng.gen_range(profile.tables_per_dataset.0..=profile.tables_per_dataset.1);
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = table_name_iter.next().expect("pool sized with 2x headroom");
            let n_cols = rng.gen_range(profile.columns_per_table.0..=profile.columns_per_table.1);
            let columns = name_pool(rng, &COLUMN_STEMS, n_cols, |rng, base| {
                if rng.gen_bool(0.5) {
                    base.to_string()
                } else {
                    format!("{base}_{}", synth_word(rng, 1))
                }
            });
            let mut idx: Vec<usize> = (0..columns.len()).collect();
            idx.shuffle(rng);
            let hot_columns: Vec<usize> = idx
                .into_iter()
                .take(profile.hot_columns.min(columns.len()))
                .collect();
            let hot_function = functions[rng.gen_range(0..functions.len().min(24))].clone();
            let hot_literals: Vec<String> = (0..profile.hot_literals)
                .map(|_| literals[rng.gen_range(0..literals.len())].clone())
                .collect();
            let key_column = hot_columns[0];
            tables.push(TableDef {
                name,
                columns,
                hot_columns,
                hot_function,
                hot_literals,
                key_column,
                join_partner: None,
            });
        }
        // Assign join partners (ring over the dataset's tables).
        let n = tables.len();
        if n > 1 {
            for (i, t) in tables.iter_mut().enumerate() {
                t.join_partner = Some((i + 1) % n);
            }
        }
        datasets.push(DatasetDef {
            id: ds_id as u32,
            tables,
        });
    }

    Catalog {
        datasets,
        functions,
        literals,
    }
}

fn capitalise(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Sample an index in `0..n` from a Zipf-like distribution with exponent
/// `s` (s = 0 is uniform). Implemented by inverse CDF over precomputable
/// weights; `n` is small everywhere we use this.
pub fn zipf_index(rng: &mut impl Rng, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    // Cheap two-pass inverse CDF; n ≤ a few hundred in all call sites.
    let total: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
    let mut u = rng.gen_range(0.0..total);
    for k in 1..=n {
        let w = 1.0 / (k as f64).powf(s);
        if u < w {
            return k - 1;
        }
        u -= w;
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn catalog_matches_profile_counts() {
        let p = WorkloadProfile::sdss();
        let mut rng = StdRng::seed_from_u64(1);
        let c = build_catalog(&p, &mut rng);
        assert_eq!(c.datasets.len(), 1);
        assert_eq!(c.datasets[0].tables.len(), 56);
        assert_eq!(c.functions.len(), 110);
        assert_eq!(c.literals.len(), 400);
        for t in &c.datasets[0].tables {
            assert!(t.columns.len() >= 30 && t.columns.len() <= 90);
            assert_eq!(t.hot_columns.len(), p.hot_columns);
            assert!(t.join_partner.is_some());
        }
    }

    #[test]
    fn sqlshare_catalog_is_multi_dataset_file_style() {
        let p = WorkloadProfile::sqlshare();
        let mut rng = StdRng::seed_from_u64(2);
        let c = build_catalog(&p, &mut rng);
        assert_eq!(c.datasets.len(), 64);
        let any_file = c
            .datasets
            .iter()
            .flat_map(|d| &d.tables)
            .any(|t| t.name.contains('.'));
        assert!(any_file, "file-style tables expected");
    }

    #[test]
    fn table_names_globally_unique() {
        let p = WorkloadProfile::sqlshare();
        let mut rng = StdRng::seed_from_u64(3);
        let c = build_catalog(&p, &mut rng);
        let mut names: Vec<&str> = c
            .datasets
            .iter()
            .flat_map(|d| d.tables.iter().map(|t| t.name.as_str()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }

    #[test]
    fn no_keyword_collisions() {
        let p = WorkloadProfile::sdss();
        let mut rng = StdRng::seed_from_u64(4);
        let c = build_catalog(&p, &mut rng);
        for d in &c.datasets {
            for t in &d.tables {
                assert!(qrec_sql::token::Keyword::from_word(&t.name).is_none());
                for col in &t.columns {
                    assert!(
                        qrec_sql::token::Keyword::from_word(col).is_none(),
                        "column {col} collides with a keyword"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = WorkloadProfile::tiny();
        let a = build_catalog(&p, &mut StdRng::seed_from_u64(9));
        let b = build_catalog(&p, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_index_is_skewed_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0usize; 10];
        for _ in 0..5000 {
            let i = zipf_index(&mut rng, 10, 1.2);
            counts[i] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
        assert_eq!(zipf_index(&mut rng, 1, 2.0), 0);
    }

    #[test]
    fn zipf_zero_exponent_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = vec![0usize; 4];
        for _ in 0..8000 {
            counts[zipf_index(&mut rng, 4, 0.0)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "{counts:?}");
        }
    }
}
