//! The mutable query state that session simulation evolves, and its SQL
//! rendering.
//!
//! A [`QueryState`] is a structured description of one `SELECT` query over
//! the synthetic catalog; the session engine applies edit operations to it
//! (add a column, add a predicate, aggregate, join, …) and renders SQL
//! text after every step. Rendered statements always parse in the `qrec`
//! dialect — a property test in this crate guarantees it.

use super::schema::{Catalog, TableDef};
use serde::{Deserialize, Serialize};
use std::fmt::Write;

/// Which of the (up to two) tables a column reference belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// The primary table.
    Main,
    /// The joined table.
    Joined,
}

/// A projected item: a plain column or a function application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProjItem {
    /// `col`
    Column(Side, usize),
    /// `FUNC(col)`
    Func {
        /// Function name.
        func: String,
        /// Which table the argument comes from.
        side: Side,
        /// Column index.
        col: usize,
        /// `FUNC(DISTINCT col)`.
        distinct: bool,
    },
    /// `COUNT(*)`
    CountStar,
}

/// The projection list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// Explicit items; never empty.
    Items(Vec<ProjItem>),
}

/// Comparison operators used in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredOp {
    /// `=`
    Eq,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `LIKE`
    Like,
    /// `BETWEEN x AND y`
    Between,
}

/// A literal operand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Lit {
    /// Integer literal.
    Num(i64),
    /// Decimal literal with two fractional digits (`x / 100`).
    Dec(i64),
    /// String literal (value without quotes).
    Str(String),
}

impl Lit {
    fn render(&self, out: &mut String) {
        match self {
            Lit::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Lit::Dec(n) => {
                let _ = write!(out, "{}.{:02}", n / 100, (n % 100).abs());
            }
            Lit::Str(s) => {
                let _ = write!(out, "'{}'", s.replace('\'', "''"));
            }
        }
    }
}

/// A `WHERE` predicate `col op literal` (or `BETWEEN lit AND lit2`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pred {
    /// Which table the column belongs to.
    pub side: Side,
    /// Column index.
    pub col: usize,
    /// Operator.
    pub op: PredOp,
    /// First (or only) literal.
    pub lit: Lit,
    /// Second literal for `BETWEEN`.
    pub lit2: Option<Lit>,
}

/// An `IN (SELECT …)` membership predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InSub {
    /// Outer column (on the main table).
    pub col: usize,
    /// Inner table index within the dataset.
    pub inner_table: usize,
    /// Inner projected column.
    pub inner_col: usize,
    /// Optional inner predicate `inner_pred_col > lit`.
    pub inner_pred: Option<(usize, Lit)>,
}

/// Aggregation state: `GROUP BY group_col` + `FUNC(agg_col)` in the
/// projection, with an optional `HAVING FUNC(agg_col) > lit`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Agg {
    /// Grouping column (main table).
    pub group_col: usize,
    /// Aggregate function name.
    pub func: String,
    /// Aggregated column, or `None` for `COUNT(*)`.
    pub agg_col: Option<usize>,
    /// `FUNC(DISTINCT col)`.
    pub distinct: bool,
    /// Optional `HAVING … > lit` threshold.
    pub having_gt: Option<i64>,
}

/// A structured query under construction during session simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryState {
    /// Dataset index in the catalog.
    pub dataset: usize,
    /// Primary table index within the dataset.
    pub table: usize,
    /// Joined table index (must be ≠ `table`), if any.
    pub join: Option<usize>,
    /// Projection list.
    pub projection: Projection,
    /// Aggregation, if any (overrides `projection` rendering).
    pub agg: Option<Agg>,
    /// Conjunctive predicates.
    pub predicates: Vec<Pred>,
    /// `IN (SELECT …)` predicate, if any.
    pub in_sub: Option<InSub>,
    /// `ORDER BY col [DESC]`.
    pub order_by: Option<(Side, usize, bool)>,
    /// `TOP n` / `LIMIT n`.
    pub limit: Option<u32>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
}

impl QueryState {
    /// A fresh `SELECT * FROM table` state.
    pub fn star(dataset: usize, table: usize) -> Self {
        QueryState {
            dataset,
            table,
            join: None,
            projection: Projection::Star,
            agg: None,
            predicates: Vec::new(),
            in_sub: None,
            order_by: None,
            limit: None,
            distinct: false,
        }
    }

    /// The main table definition.
    pub fn main<'a>(&self, catalog: &'a Catalog) -> &'a TableDef {
        &catalog.datasets[self.dataset].tables[self.table]
    }

    /// The joined table definition, if a join is present.
    pub fn joined<'a>(&self, catalog: &'a Catalog) -> Option<&'a TableDef> {
        self.join.map(|j| &catalog.datasets[self.dataset].tables[j])
    }

    fn table_of<'a>(&self, catalog: &'a Catalog, side: Side) -> &'a TableDef {
        match side {
            Side::Main => self.main(catalog),
            Side::Joined => self.joined(catalog).expect("Joined side requires a join"),
        }
    }

    /// Render the state as a SQL statement. `use_top` selects `TOP n`
    /// versus `LIMIT n`.
    pub fn render(&self, catalog: &Catalog, use_top: bool) -> String {
        let main = self.main(catalog);
        let joined = self.joined(catalog);
        let qualify = joined.is_some();
        let mut sql = String::with_capacity(128);
        sql.push_str("SELECT ");
        if self.distinct {
            sql.push_str("DISTINCT ");
        }
        if use_top {
            if let Some(n) = self.limit {
                let _ = write!(sql, "TOP {n} ");
            }
        }

        // Projection.
        if let Some(agg) = &self.agg {
            push_col(&mut sql, main, agg.group_col, qualify);
            sql.push_str(", ");
            push_agg(&mut sql, main, agg, qualify);
        } else {
            match &self.projection {
                Projection::Star => sql.push('*'),
                Projection::Items(items) => {
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            sql.push_str(", ");
                        }
                        match item {
                            ProjItem::Column(side, c) => {
                                push_col(&mut sql, self.table_of(catalog, *side), *c, qualify)
                            }
                            ProjItem::Func {
                                func,
                                side,
                                col,
                                distinct,
                            } => {
                                sql.push_str(func);
                                sql.push('(');
                                if *distinct {
                                    sql.push_str("DISTINCT ");
                                }
                                push_col(&mut sql, self.table_of(catalog, *side), *col, qualify);
                                sql.push(')');
                            }
                            ProjItem::CountStar => sql.push_str("COUNT(*)"),
                        }
                    }
                }
            }
        }

        // FROM.
        sql.push_str(" FROM ");
        push_ident(&mut sql, &main.name);
        if let Some(j) = joined {
            sql.push_str(" JOIN ");
            push_ident(&mut sql, &j.name);
            sql.push_str(" ON ");
            push_qualified(&mut sql, main, main.key_column);
            sql.push_str(" = ");
            push_qualified(&mut sql, j, j.key_column);
        }

        // WHERE.
        let mut first_pred = true;
        for p in &self.predicates {
            sql.push_str(if first_pred { " WHERE " } else { " AND " });
            first_pred = false;
            let t = self.table_of(catalog, p.side);
            push_col(&mut sql, t, p.col, qualify);
            match p.op {
                PredOp::Eq => sql.push_str(" = "),
                PredOp::Gt => sql.push_str(" > "),
                PredOp::Lt => sql.push_str(" < "),
                PredOp::Like => sql.push_str(" LIKE "),
                PredOp::Between => sql.push_str(" BETWEEN "),
            }
            p.lit.render(&mut sql);
            if p.op == PredOp::Between {
                sql.push_str(" AND ");
                match &p.lit2 {
                    Some(l2) => l2.render(&mut sql),
                    None => Lit::Num(0).render(&mut sql),
                }
            }
        }
        if let Some(is) = &self.in_sub {
            sql.push_str(if first_pred { " WHERE " } else { " AND " });
            let inner = &catalog.datasets[self.dataset].tables[is.inner_table];
            push_col(&mut sql, main, is.col, qualify);
            sql.push_str(" IN (SELECT ");
            push_col(&mut sql, inner, is.inner_col, false);
            sql.push_str(" FROM ");
            push_ident(&mut sql, &inner.name);
            if let Some((pc, lit)) = &is.inner_pred {
                sql.push_str(" WHERE ");
                push_col(&mut sql, inner, *pc, false);
                sql.push_str(" > ");
                lit.render(&mut sql);
            }
            sql.push(')');
        }

        // GROUP BY / HAVING.
        if let Some(agg) = &self.agg {
            sql.push_str(" GROUP BY ");
            push_col(&mut sql, main, agg.group_col, qualify);
            if let Some(th) = agg.having_gt {
                sql.push_str(" HAVING ");
                push_agg(&mut sql, main, agg, qualify);
                let _ = write!(sql, " > {th}");
            }
        }

        // ORDER BY / LIMIT.
        if let Some((side, c, desc)) = self.order_by {
            sql.push_str(" ORDER BY ");
            push_col(&mut sql, self.table_of(catalog, side), c, qualify);
            if desc {
                sql.push_str(" DESC");
            }
        }
        if !use_top {
            if let Some(n) = self.limit {
                let _ = write!(sql, " LIMIT {n}");
            }
        }
        sql
    }
}

fn push_agg(sql: &mut String, main: &TableDef, agg: &Agg, qualify: bool) {
    match agg.agg_col {
        Some(c) => {
            sql.push_str(&agg.func);
            sql.push('(');
            if agg.distinct {
                sql.push_str("DISTINCT ");
            }
            push_col(sql, main, c, qualify);
            sql.push(')');
        }
        None => sql.push_str("COUNT(*)"),
    }
}

fn push_col(sql: &mut String, table: &TableDef, col: usize, qualify: bool) {
    if qualify {
        push_qualified(sql, table, col);
    } else {
        push_ident(sql, &table.columns[col]);
    }
}

fn push_qualified(sql: &mut String, table: &TableDef, col: usize) {
    push_ident(sql, &table.name);
    sql.push('.');
    push_ident(sql, &table.columns[col]);
}

/// Print an identifier, bracket-quoting when it is not a bare ident.
fn push_ident(sql: &mut String, name: &str) {
    let bare = !name.is_empty()
        && name.as_bytes()[0].is_ascii_alphabetic()
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
        && qrec_sql::token::Keyword::from_word(name).is_none();
    if bare {
        sql.push_str(name);
    } else {
        let _ = write!(sql, "[{name}]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::profile::WorkloadProfile;
    use crate::gen::schema::build_catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn catalog() -> Catalog {
        build_catalog(&WorkloadProfile::tiny(), &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn star_renders_and_parses() {
        let c = catalog();
        let s = QueryState::star(0, 0);
        let sql = s.render(&c, true);
        assert!(sql.starts_with("SELECT * FROM "));
        qrec_sql::parse(&sql).unwrap();
    }

    #[test]
    fn full_state_renders_and_parses() {
        let c = catalog();
        let mut s = QueryState::star(0, 0);
        s.join = Some(1);
        s.projection = Projection::Items(vec![
            ProjItem::Column(Side::Main, 0),
            ProjItem::Func {
                func: "AVG".into(),
                side: Side::Joined,
                col: 1,
                distinct: false,
            },
        ]);
        s.predicates.push(Pred {
            side: Side::Main,
            col: 1,
            op: PredOp::Between,
            lit: Lit::Dec(30),
            lit2: Some(Lit::Dec(40)),
        });
        s.predicates.push(Pred {
            side: Side::Joined,
            col: 0,
            op: PredOp::Like,
            lit: Lit::Str("%x%".into()),
            lit2: None,
        });
        s.order_by = Some((Side::Main, 0, true));
        s.limit = Some(10);
        s.distinct = true;
        let sql = s.render(&c, true);
        let q = qrec_sql::parse(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let f = qrec_sql::extract_fragments(&q);
        assert_eq!(f.tables.len(), 2);
        assert!(f.functions.contains("AVG"));
        assert!(f.literals.contains("%x%"));
    }

    #[test]
    fn aggregation_renders_group_by_and_having() {
        let c = catalog();
        let mut s = QueryState::star(0, 2);
        s.agg = Some(Agg {
            group_col: 0,
            func: "COUNT".into(),
            agg_col: Some(1),
            distinct: true,
            having_gt: Some(5),
        });
        let sql = s.render(&c, true);
        assert!(sql.contains("GROUP BY"));
        assert!(sql.contains("HAVING"));
        assert!(sql.contains("DISTINCT"));
        qrec_sql::parse(&sql).unwrap();
    }

    #[test]
    fn in_subquery_renders() {
        let c = catalog();
        let mut s = QueryState::star(0, 0);
        s.in_sub = Some(InSub {
            col: 0,
            inner_table: 1,
            inner_col: 0,
            inner_pred: Some((1, Lit::Num(3))),
        });
        let sql = s.render(&c, true);
        assert!(sql.contains("IN (SELECT"));
        let q = qrec_sql::parse(&sql).unwrap();
        assert_eq!(qrec_sql::extract_fragments(&q).tables.len(), 2);
    }

    #[test]
    fn limit_dialects() {
        let c = catalog();
        let mut s = QueryState::star(0, 0);
        s.limit = Some(7);
        assert!(s.render(&c, true).contains("TOP 7"));
        assert!(s.render(&c, false).ends_with("LIMIT 7"));
    }

    #[test]
    fn file_style_names_are_bracketed() {
        let p = WorkloadProfile::sqlshare();
        let c = build_catalog(&p, &mut StdRng::seed_from_u64(2));
        // Find a dataset with a dotted table name.
        let (di, ti) = c
            .datasets
            .iter()
            .enumerate()
            .find_map(|(di, d)| {
                d.tables
                    .iter()
                    .position(|t| t.name.contains('.'))
                    .map(|ti| (di, ti))
            })
            .expect("sqlshare catalog has file-style tables");
        let s = QueryState::star(di, ti);
        let sql = s.render(&c, false);
        assert!(sql.contains('['), "{sql}");
        qrec_sql::parse(&sql).unwrap();
    }

    #[test]
    fn decimal_literal_renders_correctly() {
        let mut s = String::new();
        Lit::Dec(345).render(&mut s);
        assert_eq!(s, "3.45");
        let mut s = String::new();
        Lit::Dec(5).render(&mut s);
        assert_eq!(s, "0.05");
    }

    #[test]
    fn string_literal_escapes_quotes() {
        let mut s = String::new();
        Lit::Str("o'brien".into()).render(&mut s);
        assert_eq!(s, "'o''brien'");
    }
}
