//! Workload import/export.
//!
//! Real deployments bring their own query logs. The interchange format
//! is JSON-lines: one session per line, `{"id": 7, "dataset": 0,
//! "queries": ["SELECT …", …]}`. Import parses each statement with the
//! `qrec` dialect and *skips* what it cannot parse (mirroring the
//! paper's pre-processing, which drops unparseable statements), keeping
//! a per-session report of what was dropped.

use crate::types::{QueryRecord, Session, Workload};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::path::Path;

/// One session in the interchange format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionLine {
    /// Session id.
    pub id: u64,
    /// Dataset id (0 when the whole log shares one schema).
    #[serde(default)]
    pub dataset: u32,
    /// Raw SQL statements in issue order.
    pub queries: Vec<String>,
}

/// What happened during an import.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportReport {
    /// Sessions kept (with ≥ 1 parseable query).
    pub sessions: usize,
    /// Queries parsed and kept.
    pub queries_kept: usize,
    /// Queries dropped because they did not parse.
    pub queries_dropped: usize,
    /// Input lines dropped because they were not valid JSON.
    pub lines_dropped: usize,
}

/// Errors from workload I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Serialisation failure on export.
    Serde(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Serde(e) => write!(f, "serialisation error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Serde(e)
    }
}

/// Import a workload from a JSONL reader.
pub fn read_jsonl(name: &str, reader: impl BufRead) -> Result<(Workload, ImportReport), IoError> {
    let mut workload = Workload::new(name);
    let mut report = ImportReport::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed: SessionLine = match serde_json::from_str(&line) {
            Ok(s) => s,
            Err(_) => {
                report.lines_dropped += 1;
                continue;
            }
        };
        let mut queries = Vec::with_capacity(parsed.queries.len());
        for sql in &parsed.queries {
            match QueryRecord::new(sql) {
                Ok(q) => {
                    report.queries_kept += 1;
                    queries.push(q);
                }
                Err(_) => report.queries_dropped += 1,
            }
        }
        if !queries.is_empty() {
            report.sessions += 1;
            workload.sessions.push(Session {
                id: parsed.id,
                dataset: parsed.dataset,
                queries,
            });
        }
    }
    Ok((workload, report))
}

/// Import a workload from a JSONL file.
pub fn load_jsonl(name: &str, path: impl AsRef<Path>) -> Result<(Workload, ImportReport), IoError> {
    let file = std::fs::File::open(path)?;
    read_jsonl(name, std::io::BufReader::new(file))
}

/// Export a workload as JSONL (raw SQL statements only — derived
/// artefacts are recomputed on import).
pub fn write_jsonl(workload: &Workload, mut writer: impl Write) -> Result<(), IoError> {
    for s in &workload.sessions {
        let line = SessionLine {
            id: s.id,
            dataset: s.dataset,
            queries: s.queries.iter().map(|q| q.sql.clone()).collect(),
        };
        serde_json::to_writer(&mut writer, &line)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Export a workload to a JSONL file.
pub fn save_jsonl(workload: &Workload, path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_jsonl(workload, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, WorkloadProfile};

    #[test]
    fn roundtrip_preserves_workload() {
        let (w, _) = generate(&WorkloadProfile::tiny(), 3);
        let mut buf = Vec::new();
        write_jsonl(&w, &mut buf).unwrap();
        let (back, report) = read_jsonl(&w.name, buf.as_slice()).unwrap();
        assert_eq!(report.queries_dropped, 0);
        assert_eq!(report.lines_dropped, 0);
        assert_eq!(back.sessions.len(), w.sessions.len());
        for (a, b) in back.sessions.iter().zip(&w.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.dataset, b.dataset);
            assert_eq!(a.queries.len(), b.queries.len());
            for (qa, qb) in a.queries.iter().zip(&b.queries) {
                assert_eq!(qa.canonical, qb.canonical);
                assert_eq!(qa.template, qb.template);
            }
        }
    }

    #[test]
    fn import_skips_unparseable_queries() {
        let jsonl = concat!(
            r#"{"id": 1, "queries": ["SELECT a FROM t", "NOT SQL AT ALL", "SELECT b FROM t"]}"#,
            "\n",
            r#"{"id": 2, "queries": ["ALSO NOT SQL"]}"#,
            "\n",
            "this line is not json\n",
        );
        let (w, report) = read_jsonl("test", jsonl.as_bytes()).unwrap();
        assert_eq!(w.sessions.len(), 1); // session 2 had nothing parseable
        assert_eq!(report.sessions, 1);
        assert_eq!(report.queries_kept, 2);
        assert_eq!(report.queries_dropped, 2);
        assert_eq!(report.lines_dropped, 1);
        assert_eq!(w.sessions[0].queries.len(), 2);
    }

    #[test]
    fn dataset_field_defaults_to_zero() {
        let jsonl = r#"{"id": 9, "queries": ["SELECT a FROM t"]}"#;
        let (w, _) = read_jsonl("test", jsonl.as_bytes()).unwrap();
        assert_eq!(w.sessions[0].dataset, 0);
    }

    #[test]
    fn empty_input_gives_empty_workload() {
        let (w, report) = read_jsonl("test", "".as_bytes()).unwrap();
        assert!(w.sessions.is_empty());
        assert_eq!(report, ImportReport::default());
    }

    #[test]
    fn file_roundtrip() {
        let (w, _) = generate(&WorkloadProfile::tiny(), 4);
        let dir = std::env::temp_dir().join("qrec-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.jsonl");
        save_jsonl(&w, &path).unwrap();
        let (back, report) = load_jsonl("tiny", &path).unwrap();
        assert_eq!(back.sessions.len(), w.sessions.len());
        assert_eq!(report.queries_dropped, 0);
        std::fs::remove_file(&path).ok();
    }
}
