//! Train / validation / test splits over query pairs.
//!
//! The paper uses a random (80/10/10) split of pairs (Section 6.2.1).

use crate::types::OwnedPair;
use rand::seq::SliceRandom;
use rand::Rng;

/// A three-way split of query pairs.
#[derive(Debug, Clone, Default)]
pub struct Split {
    /// Training pairs.
    pub train: Vec<OwnedPair>,
    /// Validation pairs (early stopping, hyper-parameter selection).
    pub val: Vec<OwnedPair>,
    /// Held-out test pairs.
    pub test: Vec<OwnedPair>,
}

impl Split {
    /// Randomly split `pairs` into train/val/test with the given
    /// fractions. `train_frac + val_frac` must be ≤ 1; the remainder is
    /// the test set. Shuffling is driven by `rng` for reproducibility.
    pub fn random(
        mut pairs: Vec<OwnedPair>,
        train_frac: f64,
        val_frac: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&train_frac)
                && (0.0..=1.0).contains(&val_frac)
                && train_frac + val_frac <= 1.0 + 1e-9,
            "fractions must be in [0,1] and sum to at most 1"
        );
        pairs.shuffle(rng);
        let n = pairs.len();
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_val = ((n as f64 * val_frac).round() as usize).min(n - n_train.min(n));
        let test = pairs.split_off((n_train + n_val).min(n));
        let val = pairs.split_off(n_train.min(pairs.len()));
        Split {
            train: pairs,
            val,
            test,
        }
    }

    /// The paper's 80/10/10 split.
    pub fn paper(pairs: Vec<OwnedPair>, rng: &mut impl Rng) -> Self {
        Split::random(pairs, 0.8, 0.1, rng)
    }

    /// Total pair count across the three parts.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True if all parts are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::QueryRecord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pairs(n: usize) -> Vec<OwnedPair> {
        let a = QueryRecord::new("SELECT a FROM t").unwrap();
        let b = QueryRecord::new("SELECT b FROM t").unwrap();
        (0..n)
            .map(|i| OwnedPair {
                current: a.clone(),
                next: b.clone(),
                session_id: i as u64,
                dataset: 0,
            })
            .collect()
    }

    #[test]
    fn split_sizes_80_10_10() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = Split::paper(pairs(100), &mut rng);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.val.len(), 10);
        assert_eq!(s.test.len(), 10);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn split_is_a_partition() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = Split::paper(pairs(57), &mut rng);
        let mut ids: Vec<u64> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .map(|p| p.session_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..57).collect::<Vec<u64>>());
    }

    #[test]
    fn split_deterministic_given_seed() {
        let a = Split::paper(pairs(40), &mut StdRng::seed_from_u64(3));
        let b = Split::paper(pairs(40), &mut StdRng::seed_from_u64(3));
        let ids = |s: &Split| s.train.iter().map(|p| p.session_id).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn empty_input_ok() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = Split::paper(vec![], &mut rng);
        assert!(s.is_empty());
    }

    #[test]
    fn tiny_input_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = Split::paper(pairs(1), &mut rng);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn bad_fractions_panic() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = Split::random(pairs(3), 0.9, 0.3, &mut rng);
    }
}
