//! Token vocabulary for the sequence models.
//!
//! Maps word tokens (Definition 1) to dense ids. Four special tokens are
//! always present: `<PAD>` (0), `<SOS>` (1), `<EOS>` (2), `<UNK>` (3).
//! Tokens below a frequency threshold map to `<UNK>`, bounding the
//! vocabulary exactly as the paper's pre-processing does.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Id of the padding token.
pub const PAD: usize = 0;
/// Id of the start-of-sequence token.
pub const SOS: usize = 1;
/// Id of the end-of-sequence token.
pub const EOS: usize = 2;
/// Id of the unknown-token placeholder.
pub const UNK: usize = 3;

/// Spellings of the special tokens, indexed by id.
pub const SPECIALS: [&str; 4] = ["<PAD>", "<SOS>", "<EOS>", "<UNK>"];

/// A frozen token ↔ id mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Build a vocabulary from token sequences, keeping tokens that occur
    /// at least `min_count` times. Ids are assigned by descending
    /// frequency (ties broken lexicographically) for reproducibility.
    pub fn build<'a>(sequences: impl IntoIterator<Item = &'a [String]>, min_count: usize) -> Self {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for seq in sequences {
            for t in seq {
                *counts.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let mut kept: Vec<(&str, usize)> = counts
            .into_iter()
            .filter(|&(t, c)| c >= min_count && !SPECIALS.contains(&t))
            .collect();
        kept.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let mut id_to_token: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        id_to_token.extend(kept.into_iter().map(|(t, _)| t.to_string()));
        let token_to_id = id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocab {
            token_to_id,
            id_to_token,
        }
    }

    /// Vocabulary size including specials.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True if only the special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= SPECIALS.len()
    }

    /// Id of a token, or [`UNK`].
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id.get(token).copied().unwrap_or(UNK)
    }

    /// True if the token is in-vocabulary.
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// Token spelling of an id. Panics on out-of-range ids.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Encode a token sequence as `<SOS> tokens… <EOS>`.
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        let mut out = Vec::with_capacity(tokens.len() + 2);
        out.push(SOS);
        out.extend(tokens.iter().map(|t| self.id(t)));
        out.push(EOS);
        out
    }

    /// Decode ids back to tokens, stopping at `<EOS>` and skipping
    /// specials.
    pub fn decode(&self, ids: &[usize]) -> Vec<String> {
        let mut out = Vec::new();
        for &id in ids {
            if id == EOS {
                break;
            }
            if id < SPECIALS.len() {
                continue;
            }
            out.push(self.id_to_token[id].clone());
        }
        out
    }

    /// Iterate `(id, token)` for non-special tokens.
    pub fn entries(&self) -> impl Iterator<Item = (usize, &str)> {
        self.id_to_token
            .iter()
            .enumerate()
            .skip(SPECIALS.len())
            .map(|(i, t)| (i, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(xs: &[&[&str]]) -> Vec<Vec<String>> {
        xs.iter()
            .map(|s| s.iter().map(|t| t.to_string()).collect())
            .collect()
    }

    #[test]
    fn build_respects_min_count() {
        let s = seqs(&[&["SELECT", "a", "FROM", "t"], &["SELECT", "b", "FROM", "t"]]);
        let v = Vocab::build(s.iter().map(|x| x.as_slice()), 2);
        assert!(v.contains("SELECT") && v.contains("FROM") && v.contains("t"));
        assert!(!v.contains("a") && !v.contains("b"));
        assert_eq!(v.id("a"), UNK);
    }

    #[test]
    fn ids_by_frequency_then_lexicographic() {
        let s = seqs(&[&["x", "y", "y", "a", "b"]]);
        let v = Vocab::build(s.iter().map(|x| x.as_slice()), 1);
        // y (freq 2) comes first; then a, b, x lexicographically.
        assert_eq!(v.token(4), "y");
        assert_eq!(v.token(5), "a");
        assert_eq!(v.token(6), "b");
        assert_eq!(v.token(7), "x");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = seqs(&[&["SELECT", "a", "FROM", "t"]]);
        let v = Vocab::build(s.iter().map(|x| x.as_slice()), 1);
        let ids = v.encode(&s[0]);
        assert_eq!(ids[0], SOS);
        assert_eq!(*ids.last().unwrap(), EOS);
        assert_eq!(v.decode(&ids), s[0]);
    }

    #[test]
    fn decode_stops_at_eos() {
        let s = seqs(&[&["a", "b"]]);
        let v = Vocab::build(s.iter().map(|x| x.as_slice()), 1);
        let a = v.id("a");
        let b = v.id("b");
        assert_eq!(v.decode(&[a, EOS, b]), vec!["a".to_string()]);
    }

    #[test]
    fn oov_encodes_as_unk() {
        let s = seqs(&[&["a"]]);
        let v = Vocab::build(s.iter().map(|x| x.as_slice()), 1);
        let ids = v.encode(&seqs(&[&["zzz"]])[0]);
        assert_eq!(ids, vec![SOS, UNK, EOS]);
        // UNK is special and dropped in decode.
        assert!(v.decode(&ids).is_empty());
    }

    #[test]
    fn specials_always_present() {
        let v = Vocab::build(std::iter::empty::<&[String]>(), 1);
        assert_eq!(v.len(), 4);
        assert!(v.is_empty());
        for (i, s) in SPECIALS.iter().enumerate() {
            assert_eq!(v.token(i), *s);
        }
    }

    #[test]
    fn special_spellings_in_input_do_not_duplicate() {
        let s = seqs(&[&["<UNK>", "<PAD>", "tok"]]);
        let v = Vocab::build(s.iter().map(|x| x.as_slice()), 1);
        assert_eq!(v.len(), 5); // 4 specials + "tok"
    }
}
