//! # qrec-workload — query workloads, analysis, and synthetic generation
//!
//! Implements the data layer of the paper:
//!
//! * [`types`] — queries, sessions, pairs, workloads (Definitions 1 & 3),
//!   with templates and fragment sets pre-derived per query.
//! * [`vocab`] — the word-token vocabulary fed to the sequence models.
//! * [`split`] — the paper's random 80/10/10 train/val/test pair split.
//! * [`stats`] — the three-level workload analysis of Section 5
//!   (Table 2, Figures 9–11).
//! * [`gen`] — synthetic SDSS-like and SQLShare-like workload generators
//!   (the substitution for the real logs; see DESIGN.md §2), driven by
//!   [`gen::WorkloadProfile`] presets.
//! * [`io`] — JSONL import/export so deployments can bring their own
//!   query logs.
//!
//! ```
//! use qrec_workload::gen::{generate, WorkloadProfile};
//! use qrec_workload::stats::workload_stats;
//!
//! let (workload, _catalog) = generate(&WorkloadProfile::tiny(), 1);
//! let stats = workload_stats(&workload);
//! assert!(stats.total_pairs > 0);
//! assert_eq!(stats.datasets, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod io;
pub mod split;
pub mod stats;
pub mod types;
pub mod vocab;

pub use split::Split;
pub use types::{OwnedPair, QueryRecord, Session, Workload};
pub use vocab::Vocab;
