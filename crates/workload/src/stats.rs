//! Workload analysis (Section 5 of the paper).
//!
//! Three levels, matching the paper's methodology:
//!
//! * [`WorkloadStats`] — Table 2: pair/query/session/dataset counts,
//!   vocabulary size, fragment-type diversity, template counts.
//! * [`SessionStats`] — Figures 10/11 (a)–(e): per-session query and
//!   template variability.
//! * [`PairStats`] — Figures 10/11 (f)–(l): pair-level syntactic deltas
//!   between `Q_i` and `Q_{i+1}`.

use crate::types::{QueryRecord, Workload};
use qrec_sql::ast::{Expr, Query, Select, SetExpr, TableRef};
use qrec_sql::Template;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------
// Workload level (Table 2)
// ---------------------------------------------------------------------

/// Table 2 statistics of a workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Total consecutive query pairs.
    pub total_pairs: usize,
    /// Distinct `(canonical(Q_i), canonical(Q_{i+1}))` pairs.
    pub unique_pairs: usize,
    /// Distinct canonical query statements.
    pub unique_queries: usize,
    /// Number of sessions.
    pub sessions: usize,
    /// Number of distinct datasets.
    pub datasets: usize,
    /// Distinct word tokens across all queries.
    pub vocabulary: usize,
    /// Distinct table fragments.
    pub tables: usize,
    /// Distinct column fragments.
    pub columns: usize,
    /// Distinct function fragments.
    pub functions: usize,
    /// Distinct literal fragments.
    pub literals: usize,
    /// Distinct templates.
    pub templates: usize,
}

/// Compute Table 2 statistics for a workload.
pub fn workload_stats(w: &Workload) -> WorkloadStats {
    let mut unique_pairs = HashSet::new();
    let mut unique_queries = HashSet::new();
    let mut vocabulary = HashSet::new();
    let mut tables = HashSet::new();
    let mut columns = HashSet::new();
    let mut functions = HashSet::new();
    let mut literals = HashSet::new();
    let mut templates = HashSet::new();
    let mut total_pairs = 0usize;

    for s in &w.sessions {
        for q in &s.queries {
            unique_queries.insert(q.canonical.as_str());
            templates.insert(q.template.statement());
            for t in &q.tokens {
                vocabulary.insert(t.as_str());
            }
            tables.extend(q.fragments.tables.iter().map(|s| s.as_str()));
            columns.extend(q.fragments.columns.iter().map(|s| s.as_str()));
            functions.extend(q.fragments.functions.iter().map(|s| s.as_str()));
            literals.extend(q.fragments.literals.iter().map(|s| s.as_str()));
        }
        for p in s.pairs() {
            total_pairs += 1;
            unique_pairs.insert((p.current.canonical.as_str(), p.next.canonical.as_str()));
        }
    }

    WorkloadStats {
        total_pairs,
        unique_pairs: unique_pairs.len(),
        unique_queries: unique_queries.len(),
        sessions: w.sessions.len(),
        datasets: w.dataset_count(),
        vocabulary: vocabulary.len(),
        tables: tables.len(),
        columns: columns.len(),
        functions: functions.len(),
        literals: literals.len(),
        templates: templates.len(),
    }
}

/// Template frequency distribution (Figure 9): counts per template,
/// sorted descending. Also used to select template classes with minimum
/// support (Section 5.4.1 keeps templates appearing ≥ 3 times).
pub fn template_frequencies(w: &Workload) -> Vec<(Template, usize)> {
    let mut counts: HashMap<&Template, usize> = HashMap::new();
    for s in &w.sessions {
        for q in &s.queries {
            *counts.entry(&q.template).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(Template, usize)> = counts.into_iter().map(|(t, c)| (t.clone(), c)).collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// The template classes kept for classification: templates with at least
/// `min_support` occurrences, most frequent first.
pub fn template_classes(w: &Workload, min_support: usize) -> Vec<Template> {
    template_frequencies(w)
        .into_iter()
        .filter(|(_, c)| *c >= min_support)
        .map(|(t, _)| t)
        .collect()
}

// ---------------------------------------------------------------------
// Session level (Figures 10/11 a–e)
// ---------------------------------------------------------------------

/// Per-session variability measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionRow {
    /// Number of queries in the session.
    pub queries: usize,
    /// Number of distinct canonical statements.
    pub unique_queries: usize,
    /// How many consecutive steps changed the statement.
    pub sequential_changes: usize,
    /// Number of distinct templates.
    pub unique_templates: usize,
    /// How many consecutive steps changed the template.
    pub template_changes: usize,
}

/// Session-level analysis: one [`SessionRow`] per session plus the
/// summary fractions the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Per-session rows, in workload order.
    pub rows: Vec<SessionRow>,
    /// Fraction of sessions with ≥ 2 unique queries ("over 70%").
    pub frac_ge2_unique_queries: f64,
    /// Fraction of sessions with ≥ 2 unique templates (79% SDSS / 68% SQLShare).
    pub frac_ge2_unique_templates: f64,
    /// Fraction of sessions with ≥ 2 template changes (64% SDSS / 55% SQLShare).
    pub frac_ge2_template_changes: f64,
    /// Mean sequential changes per session.
    pub mean_sequential_changes: f64,
    /// Mean unique queries per session.
    pub mean_unique_queries: f64,
}

/// Compute session-level statistics.
pub fn session_stats(w: &Workload) -> SessionStats {
    let mut rows = Vec::with_capacity(w.sessions.len());
    for s in &w.sessions {
        let mut uniq_q = HashSet::new();
        let mut uniq_t = HashSet::new();
        let mut seq_changes = 0usize;
        let mut tpl_changes = 0usize;
        for q in &s.queries {
            uniq_q.insert(q.canonical.as_str());
            uniq_t.insert(q.template.statement());
        }
        for p in s.pairs() {
            if p.current.canonical != p.next.canonical {
                seq_changes += 1;
            }
            if p.current.template != p.next.template {
                tpl_changes += 1;
            }
        }
        rows.push(SessionRow {
            queries: s.queries.len(),
            unique_queries: uniq_q.len(),
            sequential_changes: seq_changes,
            unique_templates: uniq_t.len(),
            template_changes: tpl_changes,
        });
    }
    let n = rows.len().max(1) as f64;
    let frac = |f: &dyn Fn(&SessionRow) -> bool| rows.iter().filter(|r| f(r)).count() as f64 / n;
    SessionStats {
        frac_ge2_unique_queries: frac(&|r| r.unique_queries >= 2),
        frac_ge2_unique_templates: frac(&|r| r.unique_templates >= 2),
        frac_ge2_template_changes: frac(&|r| r.template_changes >= 2),
        mean_sequential_changes: rows.iter().map(|r| r.sequential_changes).sum::<usize>() as f64
            / n,
        mean_unique_queries: rows.iter().map(|r| r.unique_queries).sum::<usize>() as f64 / n,
        rows,
    }
}

// ---------------------------------------------------------------------
// Pair level (Figures 10/11 f–l)
// ---------------------------------------------------------------------

/// The six syntactic properties the paper extracts per query with the
/// ANTLR parser (Section 5.3.3), computed here from our own AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntaxProps {
    /// Number of table references.
    pub table_count: usize,
    /// Number of projection items.
    pub selected_columns: usize,
    /// Number of atomic predicates in WHERE/HAVING/ON clauses.
    pub predicate_count: usize,
    /// Number of distinct columns used in predicates.
    pub predicate_columns: usize,
    /// Number of function applications.
    pub function_count: usize,
    /// Number of word tokens.
    pub word_count: usize,
}

/// Extract the six syntactic properties of a query record.
pub fn syntax_props(record: &QueryRecord) -> SyntaxProps {
    let query = qrec_sql::parse(&record.canonical).expect("canonical statements always reparse");
    let mut p = PropsAcc::default();
    p.query(&query);
    SyntaxProps {
        table_count: p.tables,
        selected_columns: p.selected,
        predicate_count: p.predicates,
        predicate_columns: p.predicate_cols.len(),
        function_count: p.functions,
        word_count: record.tokens.len(),
    }
}

#[derive(Default)]
struct PropsAcc {
    tables: usize,
    selected: usize,
    predicates: usize,
    predicate_cols: HashSet<String>,
    functions: usize,
}

impl PropsAcc {
    fn query(&mut self, q: &Query) {
        for cte in &q.with {
            self.query(&cte.query);
        }
        self.set_expr(&q.body);
        for o in &q.order_by {
            self.expr(&o.expr, false);
        }
    }

    fn set_expr(&mut self, b: &SetExpr) {
        match b {
            SetExpr::Select(s) => self.select(s),
            SetExpr::SetOp { left, right, .. } => {
                self.set_expr(left);
                self.set_expr(right);
            }
        }
    }

    fn select(&mut self, s: &Select) {
        self.selected += s.projection.len();
        for item in &s.projection {
            if let qrec_sql::ast::SelectItem::Expr { expr, .. } = item {
                self.expr(expr, false);
            }
        }
        for t in &s.from {
            self.table_ref(t);
        }
        if let Some(w) = &s.selection {
            self.expr(w, true);
        }
        for g in &s.group_by {
            self.expr(g, false);
        }
        if let Some(h) = &s.having {
            self.expr(h, true);
        }
    }

    fn table_ref(&mut self, t: &TableRef) {
        match t {
            TableRef::Named { .. } => self.tables += 1,
            TableRef::Derived { subquery, .. } => self.query(subquery),
            TableRef::Join {
                left, right, on, ..
            } => {
                self.table_ref(left);
                self.table_ref(right);
                if let Some(on) = on {
                    self.expr(on, true);
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr, in_predicate: bool) {
        e.walk(&mut |x| match x {
            Expr::Binary { op, .. }
                if in_predicate
                    && matches!(
                        op,
                        qrec_sql::ast::BinaryOp::Eq
                            | qrec_sql::ast::BinaryOp::Neq
                            | qrec_sql::ast::BinaryOp::Lt
                            | qrec_sql::ast::BinaryOp::LtEq
                            | qrec_sql::ast::BinaryOp::Gt
                            | qrec_sql::ast::BinaryOp::GtEq
                    ) =>
            {
                self.predicates += 1;
            }
            Expr::Between { .. }
            | Expr::Like { .. }
            | Expr::IsNull { .. }
            | Expr::InList { .. }
            | Expr::InSubquery { .. }
                if in_predicate =>
            {
                self.predicates += 1;
            }
            Expr::Function { .. } | Expr::Cast { .. } => self.functions += 1,
            Expr::Column(c) if in_predicate => {
                self.predicate_cols.insert(c.column.clone());
            }
            _ => {}
        });
        // Recurse into subqueries for table/function counting.
        for sub in e.subqueries() {
            self.query(sub);
        }
    }
}

/// Direction of change of one property between `Q_i` and `Q_{i+1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Delta {
    /// `Q_{i+1}` has more.
    Increase,
    /// Same count.
    Same,
    /// `Q_{i+1}` has fewer.
    Decrease,
}

fn delta(a: usize, b: usize) -> Delta {
    use std::cmp::Ordering::*;
    match b.cmp(&a) {
        Greater => Delta::Increase,
        Equal => Delta::Same,
        Less => Delta::Decrease,
    }
}

/// Pair-level analysis: fractions of pairs that increase / keep / decrease
/// each syntactic property, plus the template-change rate (Figures 10/11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairStats {
    /// Total pairs analysed.
    pub pairs: usize,
    /// Fraction of pairs where the template changed (> 40% SDSS, ~62% SQLShare).
    pub template_change_rate: f64,
    /// Per property: `(increase, same, decrease)` fractions, keyed by label.
    pub property_deltas: Vec<(String, f64, f64, f64)>,
}

/// Compute pair-level statistics for a workload.
pub fn pair_stats(w: &Workload) -> PairStats {
    const PROPS: [&str; 6] = [
        "table count",
        "selected columns",
        "predicate count",
        "predicate columns",
        "function count",
        "word count",
    ];
    let mut pairs = 0usize;
    let mut template_changes = 0usize;
    let mut inc = [0usize; 6];
    let mut same = [0usize; 6];
    let mut dec = [0usize; 6];

    for s in &w.sessions {
        for p in s.pairs() {
            pairs += 1;
            if p.current.template != p.next.template {
                template_changes += 1;
            }
            let a = syntax_props(p.current);
            let b = syntax_props(p.next);
            let ds = [
                delta(a.table_count, b.table_count),
                delta(a.selected_columns, b.selected_columns),
                delta(a.predicate_count, b.predicate_count),
                delta(a.predicate_columns, b.predicate_columns),
                delta(a.function_count, b.function_count),
                delta(a.word_count, b.word_count),
            ];
            for (i, d) in ds.into_iter().enumerate() {
                match d {
                    Delta::Increase => inc[i] += 1,
                    Delta::Same => same[i] += 1,
                    Delta::Decrease => dec[i] += 1,
                }
            }
        }
    }

    let n = pairs.max(1) as f64;
    PairStats {
        pairs,
        template_change_rate: template_changes as f64 / n,
        property_deltas: PROPS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.to_string(),
                    inc[i] as f64 / n,
                    same[i] as f64 / n,
                    dec[i] as f64 / n,
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Session;

    fn rec(sql: &str) -> QueryRecord {
        QueryRecord::new(sql).unwrap()
    }

    fn workload(sessions: Vec<Vec<&str>>) -> Workload {
        Workload {
            name: "test".into(),
            sessions: sessions
                .into_iter()
                .enumerate()
                .map(|(i, qs)| Session {
                    id: i as u64,
                    dataset: 0,
                    queries: qs.into_iter().map(rec).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn table2_counts() {
        let w = workload(vec![
            vec![
                "SELECT a FROM t",
                "SELECT a FROM t WHERE a > 1",
                "SELECT a FROM t",
            ],
            vec!["SELECT b FROM u", "SELECT b FROM u"],
        ]);
        let s = workload_stats(&w);
        assert_eq!(s.total_pairs, 3);
        assert_eq!(s.sessions, 2);
        assert_eq!(s.unique_queries, 3);
        // Pair (b,b) plus (a, a>1) and (a>1, a): all distinct.
        assert_eq!(s.unique_pairs, 3);
        assert_eq!(s.tables, 2);
        assert_eq!(s.columns, 2);
        assert_eq!(s.functions, 0);
        assert_eq!(s.literals, 1); // <NUM>
        assert_eq!(s.templates, 2);
        assert_eq!(s.datasets, 1);
        assert!(s.vocabulary >= 6);
    }

    #[test]
    fn template_frequencies_sorted() {
        let w = workload(vec![vec![
            "SELECT a FROM t",
            "SELECT b FROM u",
            "SELECT c FROM v WHERE c = 1",
        ]]);
        let f = template_frequencies(&w);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].1, 2); // SELECT Column FROM Table
        assert_eq!(f[1].1, 1);
        assert_eq!(template_classes(&w, 2).len(), 1);
        assert_eq!(template_classes(&w, 3).len(), 0);
    }

    #[test]
    fn session_level_fractions() {
        let w = workload(vec![
            // 3 unique queries, 2 templates, template changes = 2
            vec![
                "SELECT a FROM t",
                "SELECT a FROM t WHERE a > 1",
                "SELECT b FROM t",
            ],
            // constant session
            vec!["SELECT x FROM y", "SELECT x FROM y"],
        ]);
        let s = session_stats(&w);
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].unique_queries, 3);
        assert_eq!(s.rows[0].sequential_changes, 2);
        assert_eq!(s.rows[0].unique_templates, 2);
        assert_eq!(s.rows[0].template_changes, 2);
        assert_eq!(s.rows[1].sequential_changes, 0);
        assert_eq!(s.frac_ge2_unique_queries, 0.5);
        assert_eq!(s.frac_ge2_template_changes, 0.5);
    }

    #[test]
    fn syntax_props_counts() {
        let p = syntax_props(&rec("SELECT a, COUNT(b) FROM t JOIN u ON t.x = u.x \
             WHERE a > 1 AND c LIKE 'z%' GROUP BY a HAVING COUNT(b) > 2"));
        assert_eq!(p.table_count, 2);
        assert_eq!(p.selected_columns, 2);
        // predicates: ON t.x=u.x, a>1, LIKE, HAVING COUNT(b)>2
        assert_eq!(p.predicate_count, 4);
        assert!(p.predicate_columns >= 3); // x, a, c (+b inside count)
        assert_eq!(p.function_count, 2); // COUNT(b) in projection and HAVING
        assert!(p.word_count > 10);
    }

    #[test]
    fn pair_level_template_change_rate() {
        let w = workload(vec![vec![
            "SELECT a FROM t",
            "SELECT a FROM t WHERE a > 1", // template change, predicate increase
            "SELECT a FROM t WHERE a > 2", // literal-only: same template
        ]]);
        let s = pair_stats(&w);
        assert_eq!(s.pairs, 2);
        assert!((s.template_change_rate - 0.5).abs() < 1e-9);
        let pred = s
            .property_deltas
            .iter()
            .find(|(n, ..)| n == "predicate count")
            .unwrap();
        assert!((pred.1 - 0.5).abs() < 1e-9); // one increase out of two
        assert!((pred.2 - 0.5).abs() < 1e-9); // one same
    }

    #[test]
    fn empty_workload_safe() {
        let w = Workload::new("empty");
        let s = workload_stats(&w);
        assert_eq!(s.total_pairs, 0);
        let ss = session_stats(&w);
        assert_eq!(ss.rows.len(), 0);
        let ps = pair_stats(&w);
        assert_eq!(ps.pairs, 0);
        assert_eq!(ps.template_change_rate, 0.0);
    }

    #[test]
    fn subquery_props_counted() {
        let p = syntax_props(&rec(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b > 1)",
        ));
        assert_eq!(p.table_count, 2);
        // IN-subquery predicate + inner b > 1
        assert_eq!(p.predicate_count, 2);
    }
}
