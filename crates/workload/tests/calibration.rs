//! Calibration tests: the SDSS and SQLShare presets must reproduce the
//! *shape* of the paper's workload analysis (Table 2, Figures 9–11).
//! These are the contract between the synthetic generator and every
//! downstream experiment.

use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::stats::{
    pair_stats, session_stats, template_classes, template_frequencies, workload_stats,
};

const SEED: u64 = 1234;

#[test]
fn sdss_preset_matches_paper_shape() {
    let (w, _) = generate(&WorkloadProfile::sdss(), SEED);
    let ws = workload_stats(&w);

    // Table 2 shape: single dataset, the 56-table schema (a straggler
    // table may go unused by the sampled sessions).
    assert_eq!(ws.datasets, 1);
    assert!(ws.tables >= 54 && ws.tables <= 56, "{}", ws.tables);

    // Fragment-type diversity ordering (Section 5.3.1, SDSS):
    // columns > literals > functions > tables.
    assert!(ws.columns > ws.literals, "{ws:?}");
    assert!(ws.literals > ws.functions, "{ws:?}");
    assert!(ws.functions > ws.tables, "{ws:?}");

    // Duplication: total pairs exceed unique pairs (repeats exist).
    assert!(ws.total_pairs > ws.unique_pairs);

    // Session level (Figure 10 a–e): over 70% of sessions have ≥2 unique
    // queries; most sessions use ≥2 templates.
    let ss = session_stats(&w);
    assert!(
        ss.frac_ge2_unique_queries > 0.70,
        "{}",
        ss.frac_ge2_unique_queries
    );
    assert!(ss.frac_ge2_unique_templates > 0.70);
    assert!(ss.frac_ge2_template_changes > 0.55);

    // Pair level (Figure 10 f): over 50% of pairs KEEP the template.
    let ps = pair_stats(&w);
    assert!(
        ps.template_change_rate > 0.40 && ps.template_change_rate < 0.52,
        "SDSS template change rate {}",
        ps.template_change_rate
    );

    // Figure 9: long-tailed template popularity.
    let tf = template_frequencies(&w);
    assert!(
        tf[0].1 > 20 * tf[tf.len() / 2].1,
        "head {} mid {}",
        tf[0].1,
        tf[tf.len() / 2].1
    );
    // A healthy number of template classes survives min-support 3
    // (paper: 830 on the full log).
    let classes = template_classes(&w, 3);
    assert!(classes.len() > 150, "{}", classes.len());
}

#[test]
fn sqlshare_preset_matches_paper_shape() {
    let (w, _) = generate(&WorkloadProfile::sqlshare(), SEED);
    let ws = workload_stats(&w);

    // Table 2 shape: ~64 datasets (sessions may leave a few of the 64
    // untouched), many more tables than SDSS's 56.
    assert!(ws.datasets >= 55 && ws.datasets <= 64, "{}", ws.datasets);
    assert!(ws.tables > 100);

    // Fragment-type diversity ordering (Section 5.3.1, SQLShare):
    // columns > tables > literals > functions.
    assert!(ws.columns > ws.tables, "{ws:?}");
    assert!(ws.tables > ws.literals, "{ws:?}");
    assert!(ws.literals > ws.functions, "{ws:?}");

    // Session level (Figure 11): most sessions still vary.
    let ss = session_stats(&w);
    assert!(ss.frac_ge2_unique_queries > 0.70);
    assert!(ss.frac_ge2_template_changes > 0.5);

    // Pair level (Figure 11 f): ~62% of pairs change template — clearly
    // above SDSS.
    let ps = pair_stats(&w);
    assert!(
        ps.template_change_rate > 0.55 && ps.template_change_rate < 0.75,
        "SQLShare template change rate {}",
        ps.template_change_rate
    );

    let classes = template_classes(&w, 3);
    assert!(classes.len() > 40, "{}", classes.len());
}

#[test]
fn sdss_dwarfs_sqlshare_in_volume() {
    // Section 5.3.1: "SDSS has 50 times more query pairs"; at our scale
    // the relation is preserved with a smaller factor.
    let (sdss, _) = generate(&WorkloadProfile::sdss(), SEED);
    let (ss, _) = generate(&WorkloadProfile::sqlshare(), SEED);
    assert!(sdss.pair_count() as f64 > 3.5 * ss.pair_count() as f64);

    // And SDSS sessions drift more in absolute terms (Section 5.3.2).
    let st_sdss = session_stats(&sdss);
    let st_ss = session_stats(&ss);
    assert!(st_sdss.mean_sequential_changes > st_ss.mean_sequential_changes);
}

#[test]
fn sdss_popularity_is_more_skewed_than_sqlshare() {
    // The reason the `popular` baseline works on SDSS but not SQLShare:
    // the head table fragment covers a much larger share of queries.
    let share_of_top_table = |w: &qrec_workload::Workload| {
        let mut counts = std::collections::HashMap::<&str, usize>::new();
        let mut total = 0usize;
        for s in &w.sessions {
            for q in &s.queries {
                for t in &q.fragments.tables {
                    *counts.entry(t.as_str()).or_default() += 1;
                    total += 1;
                }
            }
        }
        let max = counts.values().copied().max().unwrap_or(0);
        max as f64 / total.max(1) as f64
    };
    let (sdss, _) = generate(&WorkloadProfile::sdss(), SEED);
    let (ss, _) = generate(&WorkloadProfile::sqlshare(), SEED);
    let a = share_of_top_table(&sdss);
    let b = share_of_top_table(&ss);
    assert!(a > 2.0 * b, "sdss head share {a}, sqlshare head share {b}");
}
