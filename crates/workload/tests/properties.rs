//! Property-based tests for the workload generator: whatever the
//! profile knobs, generated workloads must be well-formed.

use proptest::prelude::*;
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::stats::{pair_stats, session_stats, workload_stats};
use qrec_workload::vocab::{EOS, SOS, UNK};
use qrec_workload::Vocab;

fn small_profile_strategy() -> impl Strategy<Value = WorkloadProfile> {
    (
        1usize..4,     // datasets
        2usize..6,     // tables per dataset (fixed range)
        3usize..10,    // columns per table lo
        8usize..30,    // sessions
        2.5f64..9.0,   // mean session len
        0.0f64..0.3,   // p_repeat
        0.0f64..0.45,  // p_literal_only
        0.0f64..0.3,   // p_new_subtask
        0.0f64..1.0,   // p_scripted
        any::<bool>(), // use_top
        any::<bool>(), // file style
    )
        .prop_map(
            |(
                datasets,
                tables,
                col_lo,
                sessions,
                mean_len,
                p_repeat,
                p_lit,
                p_new,
                p_scripted,
                use_top,
                file_style,
            )| {
                let mut p = WorkloadProfile::tiny();
                p.datasets = datasets;
                p.tables_per_dataset = (tables, tables + 2);
                p.columns_per_table = (col_lo, col_lo + 6);
                p.sessions = sessions;
                p.mean_session_len = mean_len;
                p.p_repeat = p_repeat;
                p.p_literal_only = p_lit;
                p.p_new_subtask = p_new;
                p.p_scripted = p_scripted;
                p.use_top = use_top;
                p.file_style_tables = file_style;
                p
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated query parses (QueryRecord::new succeeded during
    /// generation) and re-parses from its canonical form; fragments are
    /// consistent with the catalog.
    #[test]
    fn generated_workloads_are_well_formed(profile in small_profile_strategy(), seed in 0u64..1000) {
        let (w, catalog) = generate(&profile, seed);
        prop_assert_eq!(w.sessions.len(), profile.sessions);
        let all_tables: std::collections::HashSet<&str> = catalog
            .datasets
            .iter()
            .flat_map(|d| d.tables.iter().map(|t| t.name.as_str()))
            .collect();
        for s in &w.sessions {
            prop_assert!(!s.queries.is_empty());
            prop_assert!(s.queries.len() <= profile.max_session_len);
            for q in &s.queries {
                // Canonical statements always reparse.
                let re = qrec_sql::parse(&q.canonical);
                prop_assert!(re.is_ok(), "canonical must reparse: {}", q.canonical);
                // Table fragments come from the catalog.
                for t in &q.fragments.tables {
                    prop_assert!(all_tables.contains(t.as_str()), "unknown table {t}");
                }
                // Row-limiting dialect respected.
                if !profile.use_top {
                    prop_assert!(!q.tokens.contains(&"TOP".to_string()), "{}", q.sql);
                }
            }
        }
    }

    /// Statistics functions never panic and produce consistent counts.
    #[test]
    fn stats_are_consistent(profile in small_profile_strategy(), seed in 0u64..1000) {
        let (w, _) = generate(&profile, seed);
        let ws = workload_stats(&w);
        prop_assert_eq!(ws.sessions, w.sessions.len());
        prop_assert_eq!(ws.total_pairs, w.pair_count());
        prop_assert!(ws.unique_pairs <= ws.total_pairs);
        prop_assert!(ws.datasets <= profile.datasets);
        let ss = session_stats(&w);
        prop_assert_eq!(ss.rows.len(), w.sessions.len());
        for r in &ss.rows {
            prop_assert!(r.unique_queries <= r.queries);
            prop_assert!(r.unique_templates <= r.unique_queries);
            prop_assert!(r.sequential_changes < r.queries.max(1));
            prop_assert!(r.template_changes <= r.sequential_changes);
        }
        let ps = pair_stats(&w);
        prop_assert_eq!(ps.pairs, w.pair_count());
        prop_assert!((0.0..=1.0).contains(&ps.template_change_rate));
        for (_, inc, same, dec) in &ps.property_deltas {
            prop_assert!((inc + same + dec - 1.0).abs() < 1e-9 || ps.pairs == 0);
        }
    }

    /// Vocabulary encode/decode round-trips for in-vocabulary sequences.
    #[test]
    fn vocab_roundtrips_generated_queries(seed in 0u64..100) {
        let (w, _) = generate(&WorkloadProfile::tiny(), seed);
        let seqs: Vec<&[String]> = w
            .sessions
            .iter()
            .flat_map(|s| s.queries.iter().map(|q| q.tokens.as_slice()))
            .collect();
        let vocab = Vocab::build(seqs.iter().copied(), 1);
        for s in &w.sessions {
            for q in &s.queries {
                let ids = vocab.encode(&q.tokens);
                prop_assert_eq!(ids[0], SOS);
                prop_assert_eq!(*ids.last().unwrap(), EOS);
                prop_assert!(!ids.contains(&UNK), "min_count=1 must cover all");
                prop_assert_eq!(vocab.decode(&ids), q.tokens.clone());
            }
        }
    }

    /// Zero repeat probability means no identical consecutive pairs
    /// unless a literal-only mutation resampled the same value (allowed);
    /// with p_repeat = p_literal_only = 0 every step changes structure.
    #[test]
    fn no_repeat_knob_mostly_changes_queries(seed in 0u64..50) {
        let mut p = WorkloadProfile::tiny();
        p.p_repeat = 0.0;
        p.p_literal_only = 0.0;
        p.p_scripted = 0.0;
        p.sessions = 10;
        let (w, _) = generate(&p, seed);
        let mut same = 0usize;
        let mut total = 0usize;
        for s in &w.sessions {
            for pair in s.pairs() {
                total += 1;
                if pair.current.canonical == pair.next.canonical {
                    same += 1;
                }
            }
        }
        // Structural edits can occasionally no-op (e.g. dropping a
        // predicate that was just re-added), but identical pairs must be
        // rare.
        prop_assert!(total == 0 || (same as f64) / (total as f64) < 0.25, "{same}/{total}");
    }
}
