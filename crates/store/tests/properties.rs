//! Property-based round-trips for every on-disk format in qrec-store.
//!
//! Each format must (1) round-trip arbitrary inputs exactly and
//! (2) reject mutated bytes with a typed error instead of panicking or
//! returning garbage. The corpus here is adversarial by construction:
//! empty keys, empty values, binary payloads, duplicate keys.

use proptest::prelude::*;
use qrec_store::{blob, bloom::Bloom, run, wal, FsyncPolicy, Wal};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per proptest case.
fn scratch() -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("qrec-store-prop-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wal_records_round_trip(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255u8, 0..200),
            0..40,
        )
    ) {
        let path = scratch().join("wal.log");
        let mut w = Wal::open(&path, FsyncPolicy::Never).expect("open");
        for p in &payloads {
            w.append(p).expect("append");
        }
        drop(w);
        let replay = wal::replay(&path).expect("replay");
        prop_assert!(replay.defect.is_none());
        prop_assert_eq!(&replay.records, &payloads);
        // Strict replay agrees on a clean log.
        let strict = wal::replay_strict(&path).expect("strict");
        prop_assert_eq!(&strict, &payloads);
    }

    #[test]
    fn wal_truncated_anywhere_never_yields_garbage(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255u8, 1..50),
            1..10,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let path = scratch().join("wal.log");
        let mut w = Wal::open(&path, FsyncPolicy::Never).expect("open");
        for p in &payloads {
            w.append(p).expect("append");
        }
        drop(w);
        let full = std::fs::read(&path).expect("read");
        let cut = ((full.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let replay = wal::replay(&path).expect("replay");
        // Every surviving record is a byte-exact prefix of the
        // original sequence — truncation can only drop whole records
        // off the tail, never corrupt an earlier one.
        prop_assert!(replay.records.len() <= payloads.len());
        for (got, want) in replay.records.iter().zip(&payloads) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn run_files_round_trip(
        entries in proptest::collection::vec(
            (
                proptest::collection::vec(0u8..=255u8, 0..30),
                proptest::option::of(proptest::collection::vec(0u8..=255u8, 0..100)),
            ),
            0..120,
        ),
        block_bytes in 64usize..1024,
    ) {
        // Last write wins for duplicate keys, matching memtable semantics.
        let map: BTreeMap<Vec<u8>, Option<Vec<u8>>> = entries.into_iter().collect();
        let path = scratch().join("000001.run");
        run::build(
            &path,
            map.iter().map(|(k, v)| (k.as_slice(), v.as_deref())),
            block_bytes,
            10,
        )
        .expect("build");
        let r = run::Run::open(&path).expect("open");
        prop_assert_eq!(r.entries(), map.len() as u64);
        for (k, v) in &map {
            let got = r.get(k).expect("get").expect("present");
            prop_assert_eq!(got.as_deref(), v.as_deref());
        }
        prop_assert_eq!(r.get(b"\xFF\xFF\xFF\xFF-not-a-key").expect("get"), None);
    }

    #[test]
    fn bloom_has_no_false_negatives(
        keys in proptest::collection::vec(
            proptest::collection::vec(0u8..=255u8, 0..40),
            1..200,
        ),
        bits_per_key in 4usize..16,
    ) {
        let mut b = Bloom::with_capacity(keys.len(), bits_per_key);
        for k in &keys {
            b.insert(k);
        }
        for k in &keys {
            prop_assert!(b.may_contain(k));
        }
        let decoded = Bloom::decode(&b.encode(), std::path::Path::new("x"), 0).expect("decode");
        for k in &keys {
            prop_assert!(decoded.may_contain(k));
        }
    }

    #[test]
    fn blobs_round_trip_bitwise(
        header in ".{0,300}",
        sections in proptest::collection::vec(
            proptest::collection::vec(0u8..=255u8, 0..500),
            0..8,
        ),
    ) {
        let path = scratch().join("model.blob");
        let refs: Vec<&[u8]> = sections.iter().map(Vec::as_slice).collect();
        blob::write_blob(&path, &header, &refs).expect("write");
        let b = blob::read_blob(&path).expect("read");
        prop_assert_eq!(&b.header, &header);
        prop_assert_eq!(&b.sections, &sections);
    }

    #[test]
    fn blob_bit_flips_are_always_detected(
        sections in proptest::collection::vec(
            proptest::collection::vec(0u8..=255u8, 1..100),
            1..4,
        ),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let path = scratch().join("model.blob");
        let refs: Vec<&[u8]> = sections.iter().map(Vec::as_slice).collect();
        blob::write_blob(&path, r#"{"v":1}"#, &refs).expect("write");
        let mut bytes = std::fs::read(&path).expect("read");
        let idx = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[idx] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).expect("write back");
        // Every byte of a blob is either covered by a checksum or is a
        // structural field whose mutation breaks validation, so a
        // single flipped bit must surface as a typed corruption error —
        // never a panic, never silently different content.
        let err = blob::read_blob(&path).expect_err("flip must be detected");
        prop_assert!(err.is_corrupt(), "wrong error class: {err}");
    }
}
