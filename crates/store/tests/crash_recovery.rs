//! Crash-recovery integration tests: a child process is SIGKILLed in
//! the middle of a write stream, and the store must recover every
//! write the child acknowledged before dying.
//!
//! The child is this same test binary re-executed with the `#[ignore]`d
//! writer test selected (`--ignored --exact`), the store directory
//! passed through `QREC_STORE_CRASH_DIR`. The writer prints `ACK <n>`
//! to stdout *after* each durable put (fsync `Always`), so every ACK
//! the parent observes is a write the store has promised to keep.

use qrec_store::{FsyncPolicy, Store, StoreConfig};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};

const DIR_ENV: &str = "QREC_STORE_CRASH_DIR";

fn crash_cfg() -> StoreConfig {
    StoreConfig {
        fsync: FsyncPolicy::Always,
        memtable_bytes: 4096, // force flushes mid-stream too
        block_bytes: 512,
        bloom_bits_per_key: 10,
    }
}

fn key(i: u64) -> Vec<u8> {
    format!("session:{i:06}").into_bytes()
}

fn value(i: u64) -> Vec<u8> {
    format!("SELECT * FROM t{} WHERE id = {i}", i % 17).into_bytes()
}

/// The writer loop run inside the doomed child process. Never exits on
/// its own — the parent SIGKILLs it mid-write.
#[test]
#[ignore = "child half of kill_mid_write_loses_no_acknowledged_write"]
fn wal_writer_child() {
    let Some(dir) = std::env::var_os(DIR_ENV) else {
        return; // invoked directly (e.g. --ignored sweep): nothing to do
    };
    let store = Store::open(PathBuf::from(dir).as_path(), crash_cfg()).expect("child open");
    let stdout = std::io::stdout();
    for i in 0.. {
        store.put(&key(i), &value(i)).expect("durable put");
        let mut out = stdout.lock();
        writeln!(out, "ACK {i}").expect("ack");
        out.flush().expect("flush ack");
    }
}

#[test]
fn kill_mid_write_loses_no_acknowledged_write() {
    let dir = std::env::temp_dir().join(format!("qrec-store-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(&exe)
        .args(["wal_writer_child", "--exact", "--ignored", "--nocapture"])
        .env(DIR_ENV, &dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn writer child");

    // Watch the ACK stream; kill (SIGKILL on unix) once the child is
    // deep enough into the write loop to have flushed at least once.
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut acked: Vec<u64> = Vec::new();
    let mut line = String::new();
    while acked.len() < 400 {
        line.clear();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "child exited early after {} acks", acked.len());
        if let Some(rest) = line.trim().strip_prefix("ACK ") {
            acked.push(rest.parse().expect("ack number"));
        }
    }
    child.kill().expect("kill child");
    // Drain anything the child managed to print between our 400th read
    // and the kill taking effect — those are acknowledged too.
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if let Some(rest) = line.trim().strip_prefix("ACK ") {
                    if let Ok(n) = rest.parse() {
                        acked.push(n);
                    }
                }
            }
        }
    }
    let _ = child.wait();
    assert!(acked.len() >= 400, "not enough acknowledged writes");

    // Recovery: every acknowledged write must be present and exact.
    let store = Store::open(&dir, crash_cfg()).expect("recover after SIGKILL");
    for &i in &acked {
        let got = store.get(&key(i)).expect("get");
        assert_eq!(
            got.as_deref(),
            Some(value(i).as_slice()),
            "acknowledged write {i} lost after SIGKILL"
        );
    }
    let stats = store.stats();
    assert!(
        stats.recovered_records > 0 || stats.live_runs > 0,
        "recovery should have replayed WAL records or loaded runs"
    );

    // The recovered store keeps working.
    store
        .put(b"post-recovery", b"ok")
        .expect("put after recovery");
    assert_eq!(
        store.get(b"post-recovery").expect("get").as_deref(),
        Some(b"ok".as_slice())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn tail written by a dying process must heal on open and keep
/// every complete record — end-to-end through `Store`, complementing
/// the WAL-level unit tests.
#[test]
fn torn_tail_after_kill_heals_and_store_continues() {
    let dir = std::env::temp_dir().join(format!("qrec-store-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = Store::open(&dir, crash_cfg()).expect("open");
        for i in 0..50u64 {
            store.put(&key(i), &value(i)).expect("put");
        }
    }
    // Simulate the torn final record a SIGKILL mid-`write_all` leaves.
    let wal_path = dir.join(qrec_store::store::WAL_FILE);
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .expect("open wal");
    f.write_all(&[0x99, 0x12, 0x34]).expect("torn bytes");
    drop(f);

    let store = Store::open(&dir, crash_cfg()).expect("heal");
    for i in 0..50u64 {
        assert_eq!(
            store.get(&key(i)).expect("get").as_deref(),
            Some(value(i).as_slice())
        );
    }
    assert_eq!(store.stats().wal_tail_truncations, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
