//! Size-capped durable telemetry log on the WAL frame machinery.
//!
//! The serving layer seals one telemetry window every few seconds and
//! wants the recent history to survive restarts — including `SIGKILL` —
//! without ever growing without bound. This module reuses [`crate::wal`]
//! framing (`[len u32 LE][crc32 u32 LE][payload]`) for an append-only
//! log of opaque frames (serve writes one JSON window snapshot per
//! frame) with two extra behaviors the session WAL does not have:
//!
//! * **Lenient open** — [`TelemetryLog::open`] replays the existing
//!   file, truncates a torn/corrupt tail to the last complete frame
//!   (telemetry is an observability aid; refusing to boot over it would
//!   invert priorities), and hands the surviving frames back so the
//!   caller can rebuild its in-memory ring.
//! * **Truncate-from-front** — once the file exceeds the byte cap, the
//!   oldest frames are dropped: the log is replayed, the newest frames
//!   that fit half the cap are kept, and the file is rebuilt (reset +
//!   re-append) under the same path. Append-only media has no cheap
//!   head truncation, so the rebuild amortises it: compaction runs at
//!   most once per half-cap of appended bytes.
//!
//! Frames are acknowledged once written (the OS page cache survives a
//! process kill); the fsync policy is the caller's, as with the WAL.

use crate::error::StoreError;
use crate::wal::{self, FsyncPolicy, Wal, HEADER_BYTES};
use std::path::Path;

/// Default byte cap: plenty for days of 10-second windows.
pub const DEFAULT_MAX_BYTES: u64 = 4 << 20;

/// A size-capped append-only frame log.
#[derive(Debug)]
pub struct TelemetryLog {
    wal: Wal,
    max_bytes: u64,
    frames: usize,
}

impl TelemetryLog {
    /// Open (or create) the log at `path`, healing a defective tail,
    /// and return it together with every surviving frame, oldest first.
    /// A `max_bytes` of 0 falls back to [`DEFAULT_MAX_BYTES`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; tail corruption is healed, not
    /// surfaced.
    pub fn open(
        path: &Path,
        max_bytes: u64,
        policy: FsyncPolicy,
    ) -> Result<(TelemetryLog, Vec<Vec<u8>>), StoreError> {
        let max_bytes = if max_bytes == 0 {
            DEFAULT_MAX_BYTES
        } else {
            max_bytes
        };
        let replayed = wal::replay(path)?;
        if replayed.defect.is_some() {
            wal::truncate_to(path, replayed.valid_len)?;
        }
        let wal = Wal::open(path, policy)?;
        let mut log = TelemetryLog {
            wal,
            max_bytes,
            frames: replayed.records.len(),
        };
        // An oversized log (cap lowered between runs) compacts on open.
        if log.wal.len() > log.max_bytes {
            log.compact()?;
            let healed = wal::replay(path)?;
            return Ok((log, healed.records));
        }
        Ok((log, replayed.records))
    }

    /// Append one frame; when the file then exceeds the cap, compact by
    /// dropping the oldest frames.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures and oversized frames.
    pub fn append_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        self.wal.append(frame)?;
        self.frames += 1;
        if self.wal.len() > self.max_bytes {
            self.compact()?;
        }
        Ok(())
    }

    /// Rebuild the file keeping only the newest frames that fit half
    /// the cap (at least one frame is always kept).
    fn compact(&mut self) -> Result<(), StoreError> {
        let replayed = wal::replay(self.wal.path())?;
        let budget = self.max_bytes / 2;
        let mut kept_bytes = 0u64;
        let mut keep_from = replayed.records.len();
        for (i, rec) in replayed.records.iter().enumerate().rev() {
            let framed = rec.len() as u64 + HEADER_BYTES;
            if kept_bytes + framed > budget && keep_from < replayed.records.len() {
                break;
            }
            kept_bytes += framed;
            keep_from = i;
        }
        self.wal.reset()?;
        self.frames = 0;
        for rec in &replayed.records[keep_from..] {
            self.wal.append(rec)?;
            self.frames += 1;
        }
        self.wal.sync()?;
        Ok(())
    }

    /// Force an fsync regardless of policy.
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Current file length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.wal.len()
    }

    /// Number of frames currently in the file.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The configured byte cap.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::path::PathBuf;

    fn temp_log(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qrec-tlog-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("telemetry.log");
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn frames_survive_reopen() {
        let path = temp_log("reopen");
        let (mut log, history) = TelemetryLog::open(&path, 1 << 20, FsyncPolicy::Never).unwrap();
        assert!(history.is_empty());
        log.append_frame(b"window-0").unwrap();
        log.append_frame(b"window-1").unwrap();
        drop(log);
        let (log, history) = TelemetryLog::open(&path, 1 << 20, FsyncPolicy::Never).unwrap();
        assert_eq!(history, vec![b"window-0".to_vec(), b"window-1".to_vec()]);
        assert_eq!(log.frames(), 2);
    }

    #[test]
    fn cap_drops_oldest_frames_first() {
        let path = temp_log("cap");
        // 1 KiB cap; 100-byte frames (108 framed) overflow after ~9.
        let (mut log, _) = TelemetryLog::open(&path, 1024, FsyncPolicy::Never).unwrap();
        for i in 0..50u8 {
            log.append_frame(&[i; 100]).unwrap();
        }
        assert!(
            log.len_bytes() <= 1024,
            "cap respected: {}",
            log.len_bytes()
        );
        assert!(log.frames() >= 1);
        drop(log);
        let (_, history) = TelemetryLog::open(&path, 1024, FsyncPolicy::Never).unwrap();
        // The survivors are the newest frames, contiguous to the end.
        let first = history.first().expect("survivors")[0];
        for (off, frame) in history.iter().enumerate() {
            assert_eq!(frame[0], first + off as u8, "frames stay in order");
        }
        assert_eq!(history.last().expect("survivors")[0], 49);
    }

    #[test]
    fn lowered_cap_compacts_on_open() {
        let path = temp_log("shrink");
        let (mut log, _) = TelemetryLog::open(&path, 1 << 20, FsyncPolicy::Never).unwrap();
        for i in 0..20u8 {
            log.append_frame(&[i; 100]).unwrap();
        }
        assert!(log.len_bytes() > 512);
        drop(log);
        let (log, history) = TelemetryLog::open(&path, 512, FsyncPolicy::Never).unwrap();
        assert!(log.len_bytes() <= 512);
        assert_eq!(history.last().expect("survivors")[0], 19);
    }

    #[test]
    fn torn_tail_heals_on_open() {
        let path = temp_log("torn");
        let (mut log, _) = TelemetryLog::open(&path, 1 << 20, FsyncPolicy::Never).unwrap();
        log.append_frame(b"good").unwrap();
        drop(log);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&99u32.to_le_bytes()).unwrap();
        f.write_all(b"torn!").unwrap();
        drop(f);
        let (mut log, history) = TelemetryLog::open(&path, 1 << 20, FsyncPolicy::Never).unwrap();
        assert_eq!(history, vec![b"good".to_vec()]);
        log.append_frame(b"after-heal").unwrap();
        drop(log);
        let (_, history) = TelemetryLog::open(&path, 1 << 20, FsyncPolicy::Never).unwrap();
        assert_eq!(history.len(), 2);
    }

    #[test]
    fn oversized_frame_is_typed_error() {
        let path = temp_log("big");
        let (mut log, _) = TelemetryLog::open(&path, 1 << 20, FsyncPolicy::Never).unwrap();
        // A frame bigger than MAX_RECORD_BYTES is rejected by the WAL
        // layer; the log file stays usable.
        assert!(log.append_frame(b"fine").is_ok());
        assert_eq!(log.frames(), 1);
    }

    #[test]
    fn at_least_one_frame_survives_compaction() {
        let path = temp_log("one");
        // Cap smaller than a single frame: the newest frame must still
        // be kept (an empty log would defeat HISTORY entirely).
        let (mut log, _) = TelemetryLog::open(&path, 64, FsyncPolicy::Never).unwrap();
        log.append_frame(&[1; 100]).unwrap();
        log.append_frame(&[2; 100]).unwrap();
        assert_eq!(log.frames(), 1);
        drop(log);
        let (_, history) = TelemetryLog::open(&path, 64, FsyncPolicy::Never).unwrap();
        assert_eq!(history, vec![vec![2; 100]]);
    }
}
