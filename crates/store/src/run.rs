//! Immutable sorted-run files (SSTable-like).
//!
//! A run is the durable form of a flushed memtable. Layout:
//!
//! ```text
//! [block 0][block 1]…[block index][bloom filter][footer]
//! ```
//!
//! Each **block** is a run of key-ordered entries
//! `[klen: u32][vtag: u32][key][value]`, where `vtag == u32::MAX`
//! marks a tombstone (no value bytes) and any other value is the value
//! length. Blocks close at ~`block_bytes`. The **index** stores, per
//! block, its first key, file offset, length, and CRC-32 — so a point
//! read binary-searches the index, reads exactly one block with
//! `read_at`, verifies its checksum, and scans it. The **bloom filter**
//! ([`crate::Bloom`]) lets reads skip runs that cannot contain the key.
//! The fixed-size **footer** at EOF locates index and bloom and carries
//! a magic number; every region is CRC-checked before interpretation,
//! so a truncated or bit-rotted run surfaces as a typed
//! [`StoreError::Corrupt`], never garbage.
//!
//! Runs are written to a `.tmp` sibling and atomically renamed into
//! place ([`crate::atomic_write`]), and are immutable afterwards —
//! readers can share the file handle freely (`read_at` takes `&File`).

use crate::bloom::Bloom;
use crate::checksum::crc32;
use crate::error::StoreError;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Footer magic ("QRUN" little-endian).
const MAGIC: u32 = 0x4E55_5251;

/// Fixed footer size in bytes.
const FOOTER_BYTES: u64 = 44;

/// Tombstone marker in the entry `vtag` field.
const TOMBSTONE: u32 = u32::MAX;

/// One index entry: the block's first key and where to find the block.
#[derive(Debug, Clone)]
struct BlockRef {
    first_key: Vec<u8>,
    offset: u64,
    len: u32,
    crc: u32,
}

/// An open, immutable sorted run.
#[derive(Debug)]
pub struct Run {
    file: File,
    path: PathBuf,
    index: Vec<BlockRef>,
    bloom: Bloom,
    entries: u64,
}

/// Serialise one entry into `out`.
fn push_entry(out: &mut Vec<u8>, key: &[u8], value: Option<&[u8]>) {
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    match value {
        Some(v) => out.extend_from_slice(&(v.len() as u32).to_le_bytes()),
        None => out.extend_from_slice(&TOMBSTONE.to_le_bytes()),
    }
    out.extend_from_slice(key);
    if let Some(v) = value {
        out.extend_from_slice(v);
    }
}

/// Build a run file at `path` from key-ordered `entries` (tombstones as
/// `None` values). Returns the number of entries written.
///
/// The whole image is assembled in memory (memtables are flushed at a
/// bounded size) and installed with [`crate::atomic_write`], so a crash
/// mid-build never leaves a partial run at `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn build<'a, I>(
    path: &Path,
    entries: I,
    block_bytes: usize,
    bloom_bits_per_key: usize,
) -> Result<u64, StoreError>
where
    I: IntoIterator<Item = (&'a [u8], Option<&'a [u8]>)>,
{
    let items: Vec<(&[u8], Option<&[u8]>)> = entries.into_iter().collect();
    let mut bloom = Bloom::with_capacity(items.len(), bloom_bits_per_key);
    let mut image: Vec<u8> = Vec::new();
    let mut index: Vec<BlockRef> = Vec::new();
    let mut block: Vec<u8> = Vec::new();
    let mut block_first: Option<Vec<u8>> = None;

    let close_block = |image: &mut Vec<u8>,
                       index: &mut Vec<BlockRef>,
                       block: &mut Vec<u8>,
                       first: &mut Option<Vec<u8>>| {
        if let Some(first_key) = first.take() {
            index.push(BlockRef {
                first_key,
                offset: image.len() as u64,
                len: block.len() as u32,
                crc: crc32(block),
            });
            image.extend_from_slice(block);
            block.clear();
        }
    };

    for (key, value) in &items {
        bloom.insert(key);
        if block_first.is_none() {
            block_first = Some(key.to_vec());
        }
        push_entry(&mut block, key, *value);
        if block.len() >= block_bytes.max(64) {
            close_block(&mut image, &mut index, &mut block, &mut block_first);
        }
    }
    close_block(&mut image, &mut index, &mut block, &mut block_first);

    // Index region.
    let index_off = image.len() as u64;
    let mut index_bytes: Vec<u8> = Vec::new();
    index_bytes.extend_from_slice(&(index.len() as u32).to_le_bytes());
    for b in &index {
        index_bytes.extend_from_slice(&(b.first_key.len() as u32).to_le_bytes());
        index_bytes.extend_from_slice(&b.first_key);
        index_bytes.extend_from_slice(&b.offset.to_le_bytes());
        index_bytes.extend_from_slice(&b.len.to_le_bytes());
        index_bytes.extend_from_slice(&b.crc.to_le_bytes());
    }
    let index_crc = crc32(&index_bytes);
    image.extend_from_slice(&index_bytes);

    // Bloom region.
    let bloom_off = image.len() as u64;
    let bloom_bytes = bloom.encode();
    let bloom_crc = crc32(&bloom_bytes);
    image.extend_from_slice(&bloom_bytes);

    // Footer.
    image.extend_from_slice(&index_off.to_le_bytes());
    image.extend_from_slice(&(index_bytes.len() as u32).to_le_bytes());
    image.extend_from_slice(&index_crc.to_le_bytes());
    image.extend_from_slice(&bloom_off.to_le_bytes());
    image.extend_from_slice(&(bloom_bytes.len() as u32).to_le_bytes());
    image.extend_from_slice(&bloom_crc.to_le_bytes());
    image.extend_from_slice(&(items.len() as u64).to_le_bytes());
    image.extend_from_slice(&MAGIC.to_le_bytes());

    crate::atomic_write(path, &image)?;
    Ok(items.len() as u64)
}

/// Cursor over a byte slice with typed-corruption bounds checks.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    file: &'a Path,
    base: u64,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], file: &'a Path, base: u64) -> Reader<'a> {
        Reader {
            bytes,
            pos: 0,
            file,
            base,
        }
    }

    fn corrupt(&self, what: &str) -> StoreError {
        StoreError::corrupt(self.file, self.base + self.pos as u64, what)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.corrupt("region truncated"))?;
        let slice = self.bytes.get(self.pos..end).unwrap_or_default();
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

impl Run {
    /// Open and validate a run file: footer magic, then index and bloom
    /// regions (each checksum-verified before parsing).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for structural or checksum failures,
    /// [`StoreError::Io`] for filesystem errors.
    pub fn open(path: &Path) -> Result<Run, StoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < FOOTER_BYTES {
            return Err(StoreError::corrupt(path, 0, "file shorter than footer"));
        }
        let mut footer = vec![0u8; FOOTER_BYTES as usize];
        file.read_exact_at(&mut footer, file_len - FOOTER_BYTES)?;
        let mut r = Reader::new(&footer, path, file_len - FOOTER_BYTES);
        let index_off = r.u64()?;
        let index_len = r.u32()?;
        let index_crc = r.u32()?;
        let bloom_off = r.u64()?;
        let bloom_len = r.u32()?;
        let bloom_crc = r.u32()?;
        let entries = r.u64()?;
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(StoreError::corrupt(
                path,
                file_len - 4,
                format!("bad run magic {magic:#x}"),
            ));
        }

        let index_bytes = read_region(&file, path, index_off, index_len, index_crc, file_len)?;
        let bloom_bytes = read_region(&file, path, bloom_off, bloom_len, bloom_crc, file_len)?;

        let mut ir = Reader::new(&index_bytes, path, index_off);
        let n_blocks = ir.u32()? as usize;
        if n_blocks > (index_len as usize) {
            return Err(ir.corrupt("implausible block count"));
        }
        let mut index = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let klen = ir.u32()? as usize;
            let first_key = ir.take(klen)?.to_vec();
            let offset = ir.u64()?;
            let len = ir.u32()?;
            let crc = ir.u32()?;
            if offset.saturating_add(u64::from(len)) > file_len {
                return Err(ir.corrupt("block extends past end of file"));
            }
            index.push(BlockRef {
                first_key,
                offset,
                len,
                crc,
            });
        }
        let bloom = Bloom::decode(&bloom_bytes, path, bloom_off)?;
        Ok(Run {
            file,
            path: path.to_path_buf(),
            index,
            bloom,
            entries,
        })
    }

    /// Point lookup. `Ok(None)` — key definitely absent from this run;
    /// `Ok(Some(None))` — a tombstone (deleted; stop searching older
    /// runs); `Ok(Some(Some(v)))` — the live value.
    ///
    /// `bloom_negative` is bumped when the bloom filter short-circuits
    /// the read; `block_reads` when a block is actually fetched.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on block checksum mismatch or malformed
    /// entries; [`StoreError::Io`] on read failure.
    pub fn get(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>, StoreError> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        // Last block whose first key <= key.
        let idx = self
            .index
            .partition_point(|b| b.first_key.as_slice() <= key);
        let Some(block_ref) = idx.checked_sub(1).and_then(|i| self.index.get(i)) else {
            return Ok(None); // key sorts before the first block
        };
        let mut block = vec![0u8; block_ref.len as usize];
        self.file.read_exact_at(&mut block, block_ref.offset)?;
        if crc32(&block) != block_ref.crc {
            return Err(StoreError::corrupt(
                &self.path,
                block_ref.offset,
                "block checksum mismatch",
            ));
        }
        let mut r = Reader::new(&block, &self.path, block_ref.offset);
        while !r.done() {
            let klen = r.u32()? as usize;
            let vtag = r.u32()?;
            let k = r.take(klen)?;
            let value = if vtag == TOMBSTONE {
                None
            } else {
                Some(r.take(vtag as usize)?)
            };
            match k.cmp(key) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => return Ok(Some(value.map(<[u8]>::to_vec))),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// True when the bloom filter rules the key out without any I/O.
    pub fn definitely_absent(&self, key: &[u8]) -> bool {
        !self.bloom.may_contain(key)
    }

    /// Total entries in the run (tombstones included).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The run's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read `len` bytes at `off` and verify their CRC.
fn read_region(
    file: &File,
    path: &Path,
    off: u64,
    len: u32,
    crc: u32,
    file_len: u64,
) -> Result<Vec<u8>, StoreError> {
    if off.saturating_add(u64::from(len)) > file_len {
        return Err(StoreError::corrupt(
            path,
            off,
            "region extends past end of file",
        ));
    }
    let mut bytes = vec![0u8; len as usize];
    file.read_exact_at(&mut bytes, off)?;
    if crc32(&bytes) != crc {
        return Err(StoreError::corrupt(path, off, "region checksum mismatch"));
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_run(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qrec-run-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("000001.run")
    }

    fn sample(n: usize) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                let k = format!("key:{i:06}").into_bytes();
                let v = if i % 7 == 0 {
                    None // tombstone
                } else {
                    Some(format!("value-{i}").repeat(i % 5 + 1).into_bytes())
                };
                (k, v)
            })
            .collect()
    }

    #[test]
    fn build_and_get_round_trip() {
        let path = temp_run("roundtrip");
        let items = sample(300);
        let n = build(
            &path,
            items.iter().map(|(k, v)| (k.as_slice(), v.as_deref())),
            256, // small blocks to exercise the index
            10,
        )
        .unwrap();
        assert_eq!(n, 300);
        let run = Run::open(&path).unwrap();
        assert_eq!(run.entries(), 300);
        for (k, v) in &items {
            let got = run.get(k).unwrap().expect("present");
            assert_eq!(
                got.as_deref(),
                v.as_deref(),
                "key {:?}",
                String::from_utf8_lossy(k)
            );
        }
        assert_eq!(run.get(b"key:999999").unwrap(), None);
        assert_eq!(run.get(b"aaa-before-first").unwrap(), None);
    }

    #[test]
    fn empty_run_is_valid() {
        let path = temp_run("empty");
        build(&path, std::iter::empty(), 4096, 10).unwrap();
        let run = Run::open(&path).unwrap();
        assert_eq!(run.entries(), 0);
        assert_eq!(run.get(b"anything").unwrap(), None);
    }

    #[test]
    fn corrupt_block_is_typed_error() {
        let path = temp_run("corrupt-block");
        let items = sample(100);
        build(
            &path,
            items.iter().map(|(k, v)| (k.as_slice(), v.as_deref())),
            256,
            10,
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF; // inside the first block
        std::fs::write(&path, &bytes).unwrap();
        let run = Run::open(&path).unwrap(); // index/bloom/footer intact
        let err = run.get(b"key:000001").unwrap_err();
        assert!(err.is_corrupt(), "{err}");
    }

    #[test]
    fn truncated_file_is_typed_error() {
        let path = temp_run("truncated");
        build(&path, [(b"k".as_slice(), Some(b"v".as_slice()))], 4096, 10).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(Run::open(&path).unwrap_err().is_corrupt());
        std::fs::write(&path, b"").unwrap();
        assert!(Run::open(&path).unwrap_err().is_corrupt());
    }

    #[test]
    fn bad_magic_is_typed_error() {
        let path = temp_run("magic");
        build(&path, [(b"k".as_slice(), Some(b"v".as_slice()))], 4096, 10).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(Run::open(&path).unwrap_err().is_corrupt());
    }
}
