//! CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant), table-driven.
//!
//! Every on-disk structure in this crate — WAL records, run blocks,
//! blob sections — carries a CRC-32 so torn writes and bit rot are
//! detected before the bytes are interpreted. The 1 KiB lookup table is
//! computed at compile time; the hot loop is one table lookup and one
//! XOR per byte, plenty for WAL-append rates (the fsync dominates).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Compile-time CRC-32 lookup table.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE polynomial, `0xFFFF_FFFF` init and final
/// XOR — identical to zlib's `crc32(0, …)`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello world");
        let mut bytes = b"hello world".to_vec();
        bytes[3] ^= 0x01;
        assert_ne!(crc32(&bytes), base);
    }
}
