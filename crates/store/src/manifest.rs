//! The manifest: which sorted runs are live, committed atomically.
//!
//! A flush produces a new run file, then commits a new manifest listing
//! it. The commit is `MANIFEST.tmp` → fsync → rename → parent-dir fsync
//! ([`crate::atomic_write`]), so a crash at any point leaves either the
//! old manifest (the new run file is unreferenced garbage, harmlessly
//! re-created on the next flush) or the new one — never a torn state.
//!
//! Runs are listed **newest first**; readers consult them in that order
//! so a fresh tombstone shadows an older value.

use crate::error::StoreError;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One live run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Monotonic run id (also the file-name stem).
    pub id: u64,
    /// File name relative to the store directory, e.g. `000007.run`.
    pub file: String,
    /// Entry count (tombstones included), for stats.
    pub entries: u64,
}

/// The durable run-set descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The id the next flushed run will take.
    pub next_run_id: u64,
    /// Live runs, newest first.
    pub runs: Vec<RunMeta>,
}

impl Default for Manifest {
    fn default() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            next_run_id: 1,
            runs: Vec::new(),
        }
    }
}

impl Manifest {
    /// Load the manifest from `dir`, or `None` when the store is fresh.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the file exists but does not parse
    /// or declares an unknown version; [`StoreError::Io`] otherwise.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let text = String::from_utf8(bytes)
            .map_err(|_| StoreError::corrupt(&path, 0, "manifest is not UTF-8"))?;
        let m: Manifest = serde_json::from_str(&text)
            .map_err(|e| StoreError::corrupt(&path, 0, format!("manifest parse error: {e}")))?;
        if m.version != MANIFEST_VERSION {
            return Err(StoreError::corrupt(
                &path,
                0,
                format!("unsupported manifest version {}", m.version),
            ));
        }
        Ok(Some(m))
    }

    /// Atomically commit this manifest into `dir`.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and filesystem errors.
    pub fn commit(&self, dir: &Path) -> Result<(), StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| StoreError::Io(format!("manifest serialise: {e}")))?;
        crate::atomic_write(&path, text.as_bytes())?;
        Ok(())
    }

    /// The file name a run with `id` uses.
    pub fn run_file_name(id: u64) -> String {
        format!("{id:06}.run")
    }

    /// Absolute path of a run listed in this manifest.
    pub fn run_path(dir: &Path, meta: &RunMeta) -> PathBuf {
        dir.join(&meta.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qrec-manifest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fresh_dir_has_no_manifest() {
        let dir = temp_dir("fresh");
        assert!(Manifest::load(&dir).unwrap().is_none());
    }

    #[test]
    fn commit_and_reload_round_trip() {
        let dir = temp_dir("roundtrip");
        let m = Manifest {
            version: MANIFEST_VERSION,
            next_run_id: 3,
            runs: vec![
                RunMeta {
                    id: 2,
                    file: Manifest::run_file_name(2),
                    entries: 10,
                },
                RunMeta {
                    id: 1,
                    file: Manifest::run_file_name(1),
                    entries: 7,
                },
            ],
        };
        m.commit(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap().expect("present");
        assert_eq!(back, m);
        // Re-commit overwrites atomically.
        let mut m2 = back;
        m2.next_run_id = 4;
        m2.commit(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().unwrap().next_run_id, 4);
    }

    #[test]
    fn garbage_manifest_is_typed_error() {
        let dir = temp_dir("garbage");
        std::fs::write(dir.join(MANIFEST_FILE), b"not json at all {{{").unwrap();
        assert!(Manifest::load(&dir).unwrap_err().is_corrupt());
    }

    #[test]
    fn unknown_version_is_rejected() {
        let dir = temp_dir("version");
        std::fs::write(
            dir.join(MANIFEST_FILE),
            br#"{"version": 99, "next_run_id": 1, "runs": []}"#,
        )
        .unwrap();
        let err = Manifest::load(&dir).unwrap_err();
        assert!(err.is_corrupt() && err.to_string().contains("99"));
    }
}
