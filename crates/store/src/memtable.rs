//! The ordered in-memory write buffer.
//!
//! A `BTreeMap` from key to `Option<value>` — `None` is a tombstone, so
//! a delete of a key that lives in an older run still shadows it when
//! the memtable is flushed into a newer run. Keys stay sorted, which is
//! exactly what the run writer needs; flushing is a plain iteration.
//!
//! The memtable tracks an approximate byte footprint (key + value + a
//! small per-entry constant) so [`crate::Store`] can decide when to
//! flush without walking the tree.

use std::collections::BTreeMap;

/// Per-entry bookkeeping overhead charged to [`Memtable::approx_bytes`].
const ENTRY_OVERHEAD: usize = 32;

/// Sorted in-memory buffer of pending mutations.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    approx_bytes: usize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.apply(key, Some(value.to_vec()));
    }

    /// Record a deletion (tombstone).
    pub fn delete(&mut self, key: &[u8]) {
        self.apply(key, None);
    }

    fn apply(&mut self, key: &[u8], value: Option<Vec<u8>>) {
        let added = key.len() + value.as_ref().map_or(0, Vec::len) + ENTRY_OVERHEAD;
        if let Some(old) = self.entries.insert(key.to_vec(), value) {
            let removed = key.len() + old.as_ref().map_or(0, Vec::len) + ENTRY_OVERHEAD;
            self.approx_bytes = self.approx_bytes.saturating_sub(removed);
        }
        self.approx_bytes += added;
    }

    /// Look up a key. `None` — the memtable knows nothing (fall through
    /// to the runs); `Some(None)` — deleted here (stop); `Some(Some(v))`
    /// — live value.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries.get(key).map(|v| v.as_deref())
    }

    /// Number of entries, tombstones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterate entries in key order (tombstones as `None` values).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&[u8]>)> {
        self.entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_deref()))
    }

    /// Discard everything (after a successful flush).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.approx_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut mt = Memtable::new();
        assert!(mt.is_empty());
        mt.put(b"a", b"1");
        mt.put(b"b", b"2");
        assert_eq!(mt.get(b"a"), Some(Some(b"1".as_slice())));
        mt.delete(b"a");
        assert_eq!(mt.get(b"a"), Some(None), "tombstone shadows");
        assert_eq!(mt.get(b"missing"), None);
        assert_eq!(mt.len(), 2);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut mt = Memtable::new();
        for k in ["delta", "alpha", "charlie", "bravo"] {
            mt.put(k.as_bytes(), b"v");
        }
        let keys: Vec<&[u8]> = mt.iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![b"alpha".as_slice(), b"bravo", b"charlie", b"delta"]
        );
    }

    #[test]
    fn byte_accounting_tracks_overwrites() {
        let mut mt = Memtable::new();
        mt.put(b"k", &[0u8; 100]);
        let after_first = mt.approx_bytes();
        mt.put(b"k", &[0u8; 10]);
        assert!(mt.approx_bytes() < after_first);
        mt.clear();
        assert_eq!(mt.approx_bytes(), 0);
        assert!(mt.is_empty());
    }
}
