//! Bloom filter for sorted-run point-read pruning.
//!
//! Classic double hashing (Kirsch–Mitzenmacher): two independent 64-bit
//! FNV-1a-style hashes `h1`, `h2` generate `k` probe positions
//! `h1 + i·h2`. At the default 10 bits per key with `k = 7` the false
//! positive rate is ≈ 0.8%, which is plenty to keep cold runs off the
//! read path. No false negatives, ever — that is what the property
//! tests pin down.

use crate::error::StoreError;
use std::path::Path;

/// Default bits budget per key.
pub const DEFAULT_BITS_PER_KEY: usize = 10;

/// A fixed-size bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u8>,
    k: u32,
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Bloom {
    /// Build a filter sized for `n_keys` at `bits_per_key`.
    pub fn with_capacity(n_keys: usize, bits_per_key: usize) -> Bloom {
        let nbits = (n_keys.max(1) * bits_per_key.max(1)).max(64);
        // k ≈ bits_per_key · ln 2; clamp to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 16);
        Bloom {
            bits: vec![0u8; nbits.div_ceil(8)],
            k,
        }
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = (fnv1a(key, 0), fnv1a(key, 0x9E37_79B9_7F4A_7C15));
        let nbits = (self.bits.len() * 8) as u64;
        for i in 0..u64::from(self.k) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            if let Some(byte) = self.bits.get_mut((bit / 8) as usize) {
                *byte |= 1 << (bit % 8);
            }
        }
    }

    /// True when the key *may* be present; false means definitely not.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = (fnv1a(key, 0), fnv1a(key, 0x9E37_79B9_7F4A_7C15));
        let nbits = (self.bits.len() * 8) as u64;
        if nbits == 0 {
            return true;
        }
        for i in 0..u64::from(self.k) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % nbits;
            let set = self
                .bits
                .get((bit / 8) as usize)
                .is_some_and(|byte| byte & (1 << (bit % 8)) != 0);
            if !set {
                return false;
            }
        }
        true
    }

    /// Serialise as `[k: u32 LE][bit bytes]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bits.len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Decode an [`encode`](Bloom::encode)d filter.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] for a truncated or implausible
    /// encoding (`file`/`offset` locate the filter inside its run file).
    pub fn decode(bytes: &[u8], file: &Path, offset: u64) -> Result<Bloom, StoreError> {
        let Some(head) = bytes.get(..4) else {
            return Err(StoreError::corrupt(file, offset, "bloom filter truncated"));
        };
        let mut kb = [0u8; 4];
        kb.copy_from_slice(head);
        let k = u32::from_le_bytes(kb);
        if k == 0 || k > 64 {
            return Err(StoreError::corrupt(
                file,
                offset,
                format!("implausible bloom probe count {k}"),
            ));
        }
        let bits = bytes.get(4..).unwrap_or_default().to_vec();
        if bits.is_empty() {
            return Err(StoreError::corrupt(file, offset, "empty bloom filter"));
        }
        Ok(Bloom { bits, k })
    }

    /// Size of the bit array in bytes.
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..500)
            .map(|i| format!("session:{i}").into_bytes())
            .collect();
        let mut bloom = Bloom::with_capacity(keys.len(), DEFAULT_BITS_PER_KEY);
        for k in &keys {
            bloom.insert(k);
        }
        for k in &keys {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn mostly_rejects_absent_keys() {
        let mut bloom = Bloom::with_capacity(500, DEFAULT_BITS_PER_KEY);
        for i in 0..500 {
            bloom.insert(format!("present:{i}").as_bytes());
        }
        let false_positives = (0..1000)
            .filter(|i| bloom.may_contain(format!("absent:{i}").as_bytes()))
            .count();
        // ~0.8% expected; 5% is a generous deterministic bound.
        assert!(false_positives < 50, "false positives: {false_positives}");
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut bloom = Bloom::with_capacity(100, 10);
        for i in 0..100 {
            bloom.insert(format!("k{i}").as_bytes());
        }
        let bytes = bloom.encode();
        let back = Bloom::decode(&bytes, Path::new("run"), 0).unwrap();
        assert_eq!(back, bloom);
    }

    #[test]
    fn decode_rejects_garbage() {
        let p = Path::new("run");
        assert!(Bloom::decode(&[], p, 0).unwrap_err().is_corrupt());
        assert!(Bloom::decode(&[1, 2], p, 0).unwrap_err().is_corrupt());
        // k = 0 invalid
        assert!(Bloom::decode(&[0, 0, 0, 0, 0xFF], p, 0)
            .unwrap_err()
            .is_corrupt());
        // k too large
        assert!(Bloom::decode(&[200, 0, 0, 0, 0xFF], p, 0)
            .unwrap_err()
            .is_corrupt());
    }
}
