//! # qrec-store — embedded LSM-style durable storage
//!
//! Zero-external-dependency persistence subsystem behind the serving
//! layer's session store and model zoo (DESIGN.md §13). The design is a
//! small log-structured merge tree:
//!
//! - [`wal`] — append-only write-ahead log of checksummed,
//!   length-prefixed records with a configurable [`FsyncPolicy`]. Every
//!   mutation is acknowledged only after it is in the WAL (and, under
//!   [`FsyncPolicy::Always`], fsync'd), so a `SIGKILL` never loses an
//!   acknowledged write.
//! - [`memtable`] — the ordered in-memory write buffer (BTree with
//!   tombstones) that absorbs WAL'd mutations until it is flushed.
//! - [`run`] — immutable sorted-run files (SSTable-like): checksummed
//!   blocks, a sparse block index, and a bloom filter so point reads
//!   skip runs that cannot contain the key.
//! - [`manifest`] — the set of live runs, committed by atomic
//!   rename so a crash mid-flush leaves either the old or the new run
//!   set, never a mix.
//! - [`blob`] — a versioned checksummed section container used for the
//!   on-disk model format (header + per-tensor weight blobs).
//! - [`tlog`] — a size-capped telemetry frame log on the WAL framing,
//!   with lenient tail healing and truncate-from-front compaction,
//!   behind the serving layer's durable window history.
//!
//! [`Store`] ties them together: writes go WAL → memtable, reads fall
//! back memtable → runs (newest first), a full memtable flushes to a
//! new run, and [`Store::open`] recovers by loading the manifest and
//! replaying the WAL tail — truncating a torn tail to the last complete
//! record instead of failing or loading garbage.
//!
//! All instruments live in the process-wide [`qrec_obs`] registry under
//! `store.*` names, so the serving layer's `STATS`/`DUMP` verbs report
//! WAL-append latency, recovery time, and run/bloom traffic for free.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blob;
pub mod bloom;
pub mod checksum;
pub mod error;
pub mod manifest;
pub mod memtable;
pub mod run;
pub mod store;
pub mod tlog;
pub mod wal;

pub use blob::{read_blob, write_blob, Blob};
pub use bloom::Bloom;
pub use checksum::crc32;
pub use error::StoreError;
pub use manifest::{Manifest, RunMeta};
pub use memtable::Memtable;
pub use run::Run;
pub use store::{Store, StoreConfig, StoreStats};
pub use tlog::TelemetryLog;
pub use wal::{FsyncPolicy, TailDefect, TailReason, Wal, WalReplay};

use std::fs::File;
use std::io;
use std::path::Path;

/// Durably replace the file at `path` with `bytes`: write to a `.tmp`
/// sibling, fsync it, atomically rename over the target, and fsync the
/// parent directory so the rename itself survives a crash. Readers see
/// either the old content or the new content, never a torn mix.
///
/// # Errors
///
/// Propagates filesystem errors; on error the target file is unchanged.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = File::create(&tmp)?;
        io::Write::write_all(&mut f, bytes)?;
        // qrec-lint: allow(blocking) -- manifest commit happens at memtable-flush boundaries, not per request; crash safety requires the data fsync before the rename
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// The `.tmp` sibling path used by [`atomic_write`].
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// fsync the directory containing `path`, making a just-performed
/// rename durable. A missing parent (relative single-component path)
/// falls back to the current directory.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    // qrec-lint: allow(blocking) -- directory fsync seals a rename at flush boundaries only; without it the manifest swap is not crash-durable
    File::open(parent)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join(format!("qrec-store-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!tmp_sibling(&path).exists(), "tmp file must not linger");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
