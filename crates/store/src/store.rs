//! The [`Store`]: WAL + memtable + sorted runs behind one handle.
//!
//! Write path: encode the mutation, append it to the WAL (acknowledged
//! only after the [`crate::FsyncPolicy`] is satisfied), then apply it
//! to the memtable. When the memtable passes its byte budget it is
//! flushed: a new sorted run is built and atomically installed, the
//! manifest is committed (atomic rename), the run list is swapped, and
//! the WAL is reset — in that order, so a crash between any two steps
//! loses nothing (the WAL still holds the memtable's mutations until
//! the manifest referencing their run is durable).
//!
//! Read path: memtable first (a tombstone stops the search), then runs
//! newest-to-oldest, each consulted only if its bloom filter cannot
//! rule the key out.
//!
//! [`Store::open`] recovers: load the manifest (or start fresh), open
//! the listed runs, replay the WAL into the memtable, and — when the
//! tail is torn or checksum-broken — truncate back to the last complete
//! record rather than failing or loading garbage.

use crate::error::StoreError;
use crate::manifest::{Manifest, RunMeta};
use crate::memtable::Memtable;
use crate::run::Run;
use crate::wal::{self, FsyncPolicy, Wal};
use parking_lot::{Mutex, RwLock};
use qrec_obs::{Counter, Gauge, Histogram};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// Mutation opcodes inside WAL payloads.
const OP_PUT: u8 = 0x01;
const OP_DELETE: u8 = 0x02;

/// Tuning knobs for a [`Store`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// When WAL appends reach stable storage. The default, `Always`,
    /// is what makes "acknowledged ⇒ durable" hold under power loss.
    pub fsync: FsyncPolicy,
    /// Flush the memtable to a run once it holds this many bytes.
    pub memtable_bytes: usize,
    /// Target uncompressed block size inside run files.
    pub block_bytes: usize,
    /// Bloom filter budget per key in run files.
    pub bloom_bits_per_key: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            fsync: FsyncPolicy::Always,
            memtable_bytes: 1 << 20,
            block_bytes: 4096,
            bloom_bits_per_key: 10,
        }
    }
}

/// The store's instruments, registered in the process-wide
/// [`qrec_obs`] registry under `store.*` so `STATS`/`DUMP` see them.
#[derive(Debug)]
struct Instruments {
    wal_append_us: Arc<Histogram>,
    wal_appends: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    flushes: Arc<Counter>,
    run_hits: Arc<Counter>,
    bloom_negatives: Arc<Counter>,
    run_block_reads: Arc<Counter>,
    recovered_records: Arc<Counter>,
    wal_tail_truncations: Arc<Counter>,
    live_runs: Arc<Gauge>,
    memtable_entries: Arc<Gauge>,
    recovery_us: Arc<Gauge>,
}

impl Instruments {
    fn register() -> Instruments {
        let reg = qrec_obs::global();
        Instruments {
            wal_append_us: reg.histogram_log2("store.wal_append_us"),
            wal_appends: reg.counter("store.wal_appends"),
            wal_bytes: reg.counter("store.wal_bytes"),
            flushes: reg.counter("store.flushes"),
            run_hits: reg.counter("store.run_hits"),
            bloom_negatives: reg.counter("store.bloom_negatives"),
            run_block_reads: reg.counter("store.run_block_reads"),
            recovered_records: reg.counter("store.recovered_records"),
            wal_tail_truncations: reg.counter("store.wal_tail_truncations"),
            live_runs: reg.gauge("store.live_runs"),
            memtable_entries: reg.gauge("store.memtable_entries"),
            recovery_us: reg.gauge("store.recovery_us"),
        }
    }
}

/// Point-in-time store statistics (from this store's own instruments,
/// not the global registry, so multiple stores in one process — e.g.
/// tests — don't bleed into each other's counts... shared names do
/// aggregate in `DUMP`, which is intended).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, Default, PartialEq)]
pub struct StoreStats {
    /// Total WAL records appended (puts + deletes).
    pub wal_appends: u64,
    /// Total WAL bytes written (frames included).
    pub wal_bytes: u64,
    /// WAL-append latency p50, microseconds.
    pub wal_append_p50_us: u64,
    /// WAL-append latency p99, microseconds.
    pub wal_append_p99_us: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Sorted runs currently live.
    pub live_runs: u64,
    /// Entries currently buffered in the memtable.
    pub memtable_entries: u64,
    /// Point reads answered from a run file.
    pub run_hits: u64,
    /// Run probes short-circuited by a bloom filter.
    pub bloom_negatives: u64,
    /// Run blocks fetched and checksum-verified.
    pub run_block_reads: u64,
    /// WAL records replayed at the last open.
    pub recovered_records: u64,
    /// Torn/corrupt WAL tails truncated at open (ever).
    pub wal_tail_truncations: u64,
    /// Wall-clock time of the last recovery, microseconds.
    pub recovery_us: u64,
}

/// State serialised by the store's single writer lock.
struct Inner {
    memtable: Memtable,
    wal: Wal,
    manifest: Manifest,
}

/// An embedded durable key-value store (one directory on disk).
pub struct Store {
    dir: PathBuf,
    cfg: StoreConfig,
    inner: Mutex<Inner>,
    runs: RwLock<Vec<Arc<Run>>>,
    metrics: Instruments,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// Encode a put/delete mutation as a WAL payload.
fn encode_op(op: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + key.len() + value.len());
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out
}

/// Decode a WAL payload back into a mutation.
fn decode_op(payload: &[u8], wal_path: &Path) -> Result<(u8, Vec<u8>, Vec<u8>), StoreError> {
    let bad = || StoreError::corrupt(wal_path, 0, "malformed mutation record");
    let (&op, rest) = payload.split_first().ok_or_else(bad)?;
    if op != OP_PUT && op != OP_DELETE {
        return Err(StoreError::corrupt(
            wal_path,
            0,
            format!("unknown mutation opcode {op:#x}"),
        ));
    }
    let len_bytes = rest.get(..4).ok_or_else(bad)?;
    let mut lb = [0u8; 4];
    lb.copy_from_slice(len_bytes);
    let klen = u32::from_le_bytes(lb) as usize;
    let key = rest.get(4..4 + klen).ok_or_else(bad)?;
    let value = rest.get(4 + klen..).unwrap_or_default();
    Ok((op, key.to_vec(), value.to_vec()))
}

impl Store {
    /// Open (or create) the store at `dir`, recovering all durable
    /// state: manifest → runs → WAL replay, truncating a defective WAL
    /// tail to the last complete record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the manifest or a run file fails
    /// validation (the WAL tail is *not* an error — it is healed);
    /// [`StoreError::Io`] for filesystem failures.
    pub fn open(dir: &Path, cfg: StoreConfig) -> Result<Store, StoreError> {
        let started = Instant::now();
        std::fs::create_dir_all(dir)?;
        let metrics = Instruments::register();

        let manifest = Manifest::load(dir)?.unwrap_or_default();
        let mut runs = Vec::with_capacity(manifest.runs.len());
        for meta in &manifest.runs {
            runs.push(Arc::new(Run::open(&Manifest::run_path(dir, meta))?));
        }

        let wal_path = dir.join(WAL_FILE);
        let replayed = wal::replay(&wal_path)?;
        if let Some(defect) = replayed.defect {
            wal::truncate_to(&wal_path, replayed.valid_len)?;
            metrics.wal_tail_truncations.inc();
            let _ = defect; // offset/reason already encoded in valid_len
        }
        let mut memtable = Memtable::new();
        for record in &replayed.records {
            let (op, key, value) = decode_op(record, &wal_path)?;
            if op == OP_PUT {
                memtable.put(&key, &value);
            } else {
                memtable.delete(&key);
            }
        }
        metrics.recovered_records.add(replayed.records.len() as u64);

        let wal = Wal::open(&wal_path, cfg.fsync)?;
        metrics.live_runs.set(runs.len() as u64);
        metrics.memtable_entries.set(memtable.len() as u64);
        metrics
            .recovery_us
            .set(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);

        Ok(Store {
            dir: dir.to_path_buf(),
            cfg,
            inner: Mutex::new(Inner {
                memtable,
                wal,
                manifest,
            }),
            runs: RwLock::new(runs),
            metrics,
        })
    }

    /// Durably write `key = value`. Returns only after the mutation is
    /// in the WAL per the configured [`FsyncPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates WAL append/fsync failures; on error the memtable is
    /// unchanged (the mutation is not applied).
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.mutate(OP_PUT, key, value)
    }

    /// Durably delete `key` (a tombstone that shadows older runs).
    ///
    /// # Errors
    ///
    /// Propagates WAL append/fsync failures.
    pub fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.mutate(OP_DELETE, key, &[])
    }

    fn mutate(&self, op: u8, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let payload = encode_op(op, key, value);
        let started = Instant::now();
        let mut inner = self.inner.lock();
        let before = inner.wal.len();
        let after = inner.wal.append(&payload)?;
        self.metrics
            .wal_append_us
            .record_duration(started.elapsed());
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(after - before);
        if op == OP_PUT {
            inner.memtable.put(key, value);
        } else {
            inner.memtable.delete(key);
        }
        self.metrics
            .memtable_entries
            .set(inner.memtable.len() as u64);
        if inner.memtable.approx_bytes() >= self.cfg.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Read `key`: memtable, then runs newest-first (bloom-pruned).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if a consulted run block fails its
    /// checksum; [`StoreError::Io`] on read failure.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        {
            let inner = self.inner.lock();
            match inner.memtable.get(key) {
                Some(Some(v)) => return Ok(Some(v.to_vec())),
                Some(None) => return Ok(None), // tombstone
                None => {}
            }
        }
        let runs = self.runs.read().clone();
        for run in &runs {
            if run.definitely_absent(key) {
                self.metrics.bloom_negatives.inc();
                continue;
            }
            self.metrics.run_block_reads.inc();
            match run.get(key)? {
                Some(Some(v)) => {
                    self.metrics.run_hits.inc();
                    return Ok(Some(v));
                }
                Some(None) => return Ok(None), // tombstone in newer run
                None => {}
            }
        }
        Ok(None)
    }

    /// Force the memtable to disk (bench/test hook; the write path
    /// flushes automatically at [`StoreConfig::memtable_bytes`]).
    ///
    /// # Errors
    ///
    /// Propagates run-build, manifest-commit, and WAL-reset failures.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        if inner.memtable.is_empty() {
            return Ok(());
        }
        self.flush_locked(&mut inner)
    }

    /// Flush the memtable into a new run. Ordering is the crash-safety
    /// argument: (1) run file installed by atomic rename, (2) manifest
    /// committed by atomic rename, (3) run list swapped in memory,
    /// (4) WAL reset. A crash after (1) alone leaks an unreferenced
    /// file; after (2) the WAL replays onto the new run set — replay is
    /// idempotent because the memtable image and the run hold the same
    /// mutations.
    fn flush_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        let run_id = inner.manifest.next_run_id;
        let file_name = Manifest::run_file_name(run_id);
        let run_path = self.dir.join(&file_name);
        let entries = crate::run::build(
            &run_path,
            inner.memtable.iter(),
            self.cfg.block_bytes,
            self.cfg.bloom_bits_per_key,
        )?;

        let mut manifest = inner.manifest.clone();
        manifest.next_run_id = run_id + 1;
        manifest.runs.insert(
            0,
            RunMeta {
                id: run_id,
                file: file_name,
                entries,
            },
        );
        manifest.commit(&self.dir)?;
        inner.manifest = manifest;

        let run = Arc::new(Run::open(&run_path)?);
        {
            let mut runs = self.runs.write();
            runs.insert(0, run);
            self.metrics.live_runs.set(runs.len() as u64);
        }
        inner.wal.reset()?;
        inner.memtable.clear();
        self.metrics.memtable_entries.set(0);
        self.metrics.flushes.inc();
        Ok(())
    }

    /// Force any buffered WAL bytes to stable storage (useful with
    /// [`FsyncPolicy::EveryN`]/[`FsyncPolicy::Never`]).
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.inner.lock().wal.sync()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Point-in-time statistics from this store's instruments.
    pub fn stats(&self) -> StoreStats {
        let lat = self.metrics.wal_append_us.snapshot();
        StoreStats {
            wal_appends: self.metrics.wal_appends.get(),
            wal_bytes: self.metrics.wal_bytes.get(),
            wal_append_p50_us: lat.quantile(0.50),
            wal_append_p99_us: lat.quantile(0.99),
            flushes: self.metrics.flushes.get(),
            live_runs: self.metrics.live_runs.get(),
            memtable_entries: self.metrics.memtable_entries.get(),
            run_hits: self.metrics.run_hits.get(),
            bloom_negatives: self.metrics.bloom_negatives.get(),
            run_block_reads: self.metrics.run_block_reads.get(),
            recovered_records: self.metrics.recovered_records.get(),
            wal_tail_truncations: self.metrics.wal_tail_truncations.get(),
            recovery_us: self.metrics.recovery_us.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qrec-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cfg() -> StoreConfig {
        StoreConfig {
            fsync: FsyncPolicy::Never,
            memtable_bytes: 2048, // flush often in tests
            block_bytes: 256,
            bloom_bits_per_key: 10,
        }
    }

    #[test]
    fn put_get_delete_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let store = Store::open(&dir, tiny_cfg()).unwrap();
            for i in 0..200 {
                store
                    .put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            store.delete(b"k0100").unwrap();
            assert!(store.stats().flushes > 0, "tiny memtable must have flushed");
        }
        let store = Store::open(&dir, tiny_cfg()).unwrap();
        assert_eq!(store.get(b"k0000").unwrap(), Some(b"v0".to_vec()));
        assert_eq!(store.get(b"k0199").unwrap(), Some(b"v199".to_vec()));
        assert_eq!(store.get(b"k0100").unwrap(), None, "delete survives");
        assert_eq!(store.get(b"missing").unwrap(), None);
    }

    #[test]
    fn overwrites_resolve_to_newest_across_runs() {
        let dir = temp_dir("overwrite");
        let store = Store::open(&dir, tiny_cfg()).unwrap();
        for round in 0..5 {
            for i in 0..50 {
                store
                    .put(
                        format!("key{i}").as_bytes(),
                        format!("round{round}").as_bytes(),
                    )
                    .unwrap();
            }
            store.flush().unwrap();
        }
        for i in 0..50 {
            assert_eq!(
                store.get(format!("key{i}").as_bytes()).unwrap(),
                Some(b"round4".to_vec())
            );
        }
        assert!(store.stats().live_runs >= 5);
    }

    #[test]
    fn torn_wal_tail_heals_on_open() {
        let dir = temp_dir("torn");
        {
            let store = Store::open(&dir, tiny_cfg()).unwrap();
            store.put(b"safe", b"yes").unwrap();
            store.sync().unwrap();
        }
        // Append garbage — a torn final record.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(&[0x55; 5]).unwrap();
        drop(f);

        let store = Store::open(&dir, tiny_cfg()).unwrap();
        assert_eq!(store.get(b"safe").unwrap(), Some(b"yes".to_vec()));
        let stats = store.stats();
        assert_eq!(stats.wal_tail_truncations, 1);
        assert!(stats.recovered_records >= 1);
        // The healed WAL accepts new writes.
        store.put(b"after", b"heal").unwrap();
        drop(store);
        let store = Store::open(&dir, tiny_cfg()).unwrap();
        assert_eq!(store.get(b"after").unwrap(), Some(b"heal".to_vec()));
    }

    #[test]
    fn stats_report_traffic() {
        let dir = temp_dir("stats");
        let store = Store::open(&dir, tiny_cfg()).unwrap();
        store.put(b"a", b"1").unwrap();
        store.put(b"b", b"2").unwrap();
        store.flush().unwrap();
        let _ = store.get(b"a").unwrap();
        let _ = store.get(b"definitely-not-there").unwrap();
        let s = store.stats();
        assert_eq!(s.wal_appends, 2);
        assert!(s.wal_bytes > 0);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.live_runs, 1);
        assert!(s.run_hits >= 1);
        assert!(s.bloom_negatives + s.run_block_reads >= 1);
    }
}
