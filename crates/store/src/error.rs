//! Typed storage errors.
//!
//! Durability code must never panic and never silently load garbage:
//! every failure mode — I/O, a checksum mismatch, a structurally
//! invalid file — is a [`StoreError`] variant that tells the caller
//! *which* file and *where*, so recovery logic can decide between
//! "truncate and continue" (a torn WAL tail) and "refuse to load"
//! (a corrupt model blob).

use std::fmt;

/// Everything that can go wrong in the storage subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure (message retains the OS error).
    Io(String),
    /// A file failed structural or checksum validation. Never returned
    /// for a torn WAL tail — that is recoverable and reported as a
    /// [`crate::wal::TailDefect`] instead.
    Corrupt {
        /// The offending file (display path).
        file: String,
        /// Byte offset of the defect within the file.
        offset: u64,
        /// What failed to validate.
        reason: String,
    },
}

impl StoreError {
    /// Build a [`StoreError::Corrupt`] for `path` at `offset`.
    pub fn corrupt(path: &std::path::Path, offset: u64, reason: impl Into<String>) -> Self {
        StoreError::Corrupt {
            file: path.display().to_string(),
            offset,
            reason: reason.into(),
        }
    }

    /// True when the error is a corruption (as opposed to plain I/O).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, StoreError::Corrupt { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "storage i/o error: {m}"),
            StoreError::Corrupt {
                file,
                offset,
                reason,
            } => {
                write!(f, "corrupt storage file {file} at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_file_and_offset() {
        let e = StoreError::corrupt(std::path::Path::new("wal.log"), 42, "bad crc");
        assert!(e.is_corrupt());
        let msg = e.to_string();
        assert!(msg.contains("wal.log") && msg.contains("42") && msg.contains("bad crc"));
    }

    #[test]
    fn io_errors_convert() {
        let e: StoreError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(!e.is_corrupt());
        assert!(e.to_string().contains("gone"));
    }
}
