//! Versioned checksummed blob container — the on-disk model format.
//!
//! A blob is a JSON header plus N binary sections, each independently
//! CRC-checked, installed atomically:
//!
//! ```text
//! [magic "QBLB": u32][version: u32]
//! [header_len: u32][header_crc: u32][header JSON bytes]
//! [n_sections: u32]
//! n × ([len: u32][crc: u32][bytes])
//! ```
//!
//! The model zoo stores the recommender's architecture, vocab, and
//! lexicon in the header and one section of little-endian `f32` bytes
//! per parameter tensor — weights survive a round trip **bitwise**, and
//! a flipped bit in any section surfaces as a typed
//! [`StoreError::Corrupt`] naming the section, never as silently wrong
//! weights.

use crate::checksum::crc32;
use crate::error::StoreError;
use std::path::Path;

/// Blob magic ("QBLB" little-endian).
const MAGIC: u32 = 0x424C_4251;

/// Current container format version.
pub const BLOB_VERSION: u32 = 1;

/// Keep header and section sizes plausible (256 MiB cap).
const MAX_REGION_BYTES: u32 = 1 << 28;

/// A decoded blob: the header text plus its binary sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// Container format version the file was written with.
    pub version: u32,
    /// The JSON header, verbatim.
    pub header: String,
    /// Checksummed binary sections in written order.
    pub sections: Vec<Vec<u8>>,
}

/// Serialise a blob image (without writing it anywhere).
fn encode(header: &str, sections: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&BLOB_VERSION.to_le_bytes());
    out.extend_from_slice(&(header.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(header.as_bytes()).to_le_bytes());
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for s in sections {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(s).to_le_bytes());
        out.extend_from_slice(s);
    }
    out
}

/// Write a blob to `path` atomically (tmp sibling + fsync + rename).
///
/// # Errors
///
/// Propagates filesystem errors; on error the previous file (if any) is
/// untouched.
pub fn write_blob(path: &Path, header: &str, sections: &[&[u8]]) -> Result<(), StoreError> {
    crate::atomic_write(path, &encode(header, sections))?;
    Ok(())
}

/// Read and fully validate a blob: magic, version, header checksum, and
/// every section checksum.
///
/// # Errors
///
/// [`StoreError::Corrupt`] naming the file, byte offset, and failing
/// region; [`StoreError::Io`] for filesystem errors.
pub fn read_blob(path: &Path) -> Result<Blob, StoreError> {
    let bytes = std::fs::read(path)?;
    let mut pos = 0usize;

    let u32_at = |pos: &mut usize, what: &str| -> Result<u32, StoreError> {
        let end = pos
            .checked_add(4)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| StoreError::corrupt(path, *pos as u64, format!("{what} truncated")))?;
        let mut b = [0u8; 4];
        b.copy_from_slice(bytes.get(*pos..end).unwrap_or_default());
        *pos = end;
        Ok(u32::from_le_bytes(b))
    };

    let magic = u32_at(&mut pos, "magic")?;
    if magic != MAGIC {
        return Err(StoreError::corrupt(
            path,
            0,
            format!("bad blob magic {magic:#x}"),
        ));
    }
    let version = u32_at(&mut pos, "version")?;
    if version == 0 || version > BLOB_VERSION {
        return Err(StoreError::corrupt(
            path,
            4,
            format!("unsupported blob version {version}"),
        ));
    }

    let take = |pos: &mut usize, n: u32, what: &str| -> Result<&[u8], StoreError> {
        if n > MAX_REGION_BYTES {
            return Err(StoreError::corrupt(
                path,
                *pos as u64,
                format!("{what} declares implausible length {n}"),
            ));
        }
        let end = pos
            .checked_add(n as usize)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| StoreError::corrupt(path, *pos as u64, format!("{what} truncated")))?;
        let slice = bytes.get(*pos..end).unwrap_or_default();
        *pos = end;
        Ok(slice)
    };

    let header_len = u32_at(&mut pos, "header length")?;
    let header_crc = u32_at(&mut pos, "header checksum")?;
    let header_off = pos as u64;
    let header_bytes = take(&mut pos, header_len, "header")?;
    if crc32(header_bytes) != header_crc {
        return Err(StoreError::corrupt(
            path,
            header_off,
            "header checksum mismatch",
        ));
    }
    let header = String::from_utf8(header_bytes.to_vec())
        .map_err(|_| StoreError::corrupt(path, header_off, "header is not UTF-8"))?;

    let n_sections = u32_at(&mut pos, "section count")?;
    if u64::from(n_sections) > bytes.len() as u64 {
        return Err(StoreError::corrupt(
            path,
            pos as u64,
            format!("implausible section count {n_sections}"),
        ));
    }
    let mut sections = Vec::with_capacity(n_sections as usize);
    for i in 0..n_sections {
        let len = u32_at(&mut pos, "section length")?;
        let crc = u32_at(&mut pos, "section checksum")?;
        let off = pos as u64;
        let body = take(&mut pos, len, "section body")?;
        if crc32(body) != crc {
            return Err(StoreError::corrupt(
                path,
                off,
                format!("section {i} checksum mismatch"),
            ));
        }
        sections.push(body.to_vec());
    }
    if pos != bytes.len() {
        return Err(StoreError::corrupt(
            path,
            pos as u64,
            "trailing bytes after last section",
        ));
    }
    Ok(Blob {
        version,
        header,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_blob(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qrec-blob-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("model.blob")
    }

    #[test]
    fn write_read_round_trip() {
        let path = temp_blob("roundtrip");
        let header = r#"{"epoch": 7, "tensors": ["w1", "w2"]}"#;
        let s1: Vec<u8> = (0..=255).collect();
        let s2 = vec![0xAB; 10_000];
        write_blob(&path, header, &[&s1, &s2, &[]]).unwrap();
        let blob = read_blob(&path).unwrap();
        assert_eq!(blob.version, BLOB_VERSION);
        assert_eq!(blob.header, header);
        assert_eq!(blob.sections, vec![s1, s2, vec![]]);
    }

    #[test]
    fn flipped_section_bit_is_typed_error() {
        let path = temp_blob("flip");
        write_blob(&path, "{}", &[&[1, 2, 3, 4], &[5, 6, 7, 8]]).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Flip one bit in the *last* section's body (the file tail).
        let mut bytes = clean.clone();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_blob(&path).unwrap_err();
        assert!(err.is_corrupt());
        assert!(err.to_string().contains("section 1"), "{err}");
    }

    #[test]
    fn corrupt_header_is_typed_error() {
        let path = temp_blob("header");
        write_blob(&path, r#"{"k": "value"}"#, &[&[9u8; 4]]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[17] ^= 0x20; // inside the header JSON
        std::fs::write(&path, &bytes).unwrap();
        let err = read_blob(&path).unwrap_err();
        assert!(
            err.is_corrupt() && err.to_string().contains("header"),
            "{err}"
        );
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let path = temp_blob("truncate");
        write_blob(&path, "{}", &[&[1u8; 100]]).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 3, 7, 12, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(read_blob(&path).unwrap_err().is_corrupt(), "cut at {cut}");
        }
        std::fs::write(&path, b"random junk not a blob").unwrap();
        assert!(read_blob(&path).unwrap_err().is_corrupt());
    }
}
