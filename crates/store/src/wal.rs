//! Append-only write-ahead log with checksummed, length-prefixed
//! records and a configurable fsync policy.
//!
//! On-disk framing of one record:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! [`Wal::append`] assembles the frame in one buffer and issues a
//! single `write_all`, then applies the [`FsyncPolicy`]; the caller's
//! acknowledgement therefore implies the record is at least in the OS
//! page cache, and — under [`FsyncPolicy::Always`] — on stable storage.
//!
//! Recovery ([`replay`]) walks frames from the start and stops at the
//! first defective one. A defect is *always* treated as the tail of the
//! log (the standard LSM convention: the only writer appends, so bytes
//! after a bad frame were never acknowledged under `Always`): replay
//! returns every record before it plus a typed [`TailDefect`] naming
//! the offset and reason, and [`truncate_to`] restores the file to the
//! last complete record. [`replay_strict`] converts a defect into a
//! typed [`StoreError::Corrupt`] for callers that must not auto-heal.

use crate::checksum::crc32;
use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Frame header size: payload length + checksum.
pub const HEADER_BYTES: u64 = 8;

/// Records larger than this are rejected on append and treated as
/// corruption on replay (a length field of garbage bytes would
/// otherwise ask for gigabytes).
pub const MAX_RECORD_BYTES: u32 = 1 << 28;

/// When the WAL file is made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append. An acknowledged write survives power
    /// loss; the fsync dominates append latency.
    Always,
    /// fsync once per `n` appends (and on [`Wal::sync`]). Bounds loss
    /// to the last `n - 1` acknowledged writes on power failure; a
    /// process crash (`SIGKILL`) alone loses nothing — the bytes are
    /// already with the OS.
    EveryN(u32),
    /// Never fsync (OS flushes on its own schedule). Fastest; process
    /// crashes still lose nothing, power loss may.
    Never,
}

/// An open write-ahead log (the single writer).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    unsynced: u32,
    len: u64,
    buf: Vec<u8>,
}

impl Wal {
    /// Open `path` for appending, creating it if missing. `len` starts
    /// at the current file size — callers that need a validated log
    /// should [`replay`] (and possibly [`truncate_to`]) first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<Wal, StoreError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            unsynced: 0,
            len,
            buf: Vec::new(),
        })
    }

    /// Append one record; returns the file length after the record,
    /// i.e. the offset the *next* record will start at.
    ///
    /// # Errors
    ///
    /// Rejects payloads over [`MAX_RECORD_BYTES`] as corrupt-by-
    /// construction; propagates write and fsync failures.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(StoreError::corrupt(
                &self.path,
                self.len,
                format!("record of {} bytes exceeds MAX_RECORD_BYTES", payload.len()),
            ));
        }
        self.buf.clear();
        self.buf.reserve(payload.len() + HEADER_BYTES as usize);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.file.write_all(&self.buf)?;
        self.len += self.buf.len() as u64;
        match self.policy {
            // qrec-lint: allow(blocking) -- this is the WAL's policy-gated group-commit point: serving deploys run EveryN/Never so the request path only pays an fsync when durability is explicitly configured
            FsyncPolicy::Always => self.file.sync_data()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    // qrec-lint: allow(blocking) -- group commit: one fsync amortised over N appends by configuration, the bounded-loss durability contract
                    self.file.sync_data()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(self.len)
    }

    /// Force an fsync regardless of policy.
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Truncate the log to zero length (after its contents were flushed
    /// into a durable run) and fsync the truncation.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        // qrec-lint: allow(blocking) -- runs once per memtable flush after the run is durable, never per request; the fsync seals the truncation
        self.file.sync_data()?;
        self.len = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Why replay stopped before end-of-file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailReason {
    /// The file ends inside a frame header or payload (torn write).
    Torn,
    /// A complete frame whose payload does not match its checksum.
    ChecksumMismatch,
    /// A frame header declaring an impossible payload length.
    BadLength,
}

impl std::fmt::Display for TailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailReason::Torn => write!(f, "torn record (file ends mid-frame)"),
            TailReason::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            TailReason::BadLength => write!(f, "implausible record length"),
        }
    }
}

/// A defective log tail found during replay: everything from `offset`
/// on is not a complete acknowledged record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailDefect {
    /// Byte offset of the first defective frame.
    pub offset: u64,
    /// What was wrong with it.
    pub reason: TailReason,
}

/// The result of replaying a WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// Every complete, checksum-valid record in order.
    pub records: Vec<Vec<u8>>,
    /// File offset just past the last valid record — the length to
    /// [`truncate_to`] when `defect` is present.
    pub valid_len: u64,
    /// The tail defect, if the file did not end cleanly.
    pub defect: Option<TailDefect>,
}

/// Replay a WAL file leniently: collect records up to the first defect.
/// A missing file replays as empty (a fresh store has no WAL yet).
///
/// # Errors
///
/// Propagates read errors; defects are *data*, not errors — see
/// [`WalReplay::defect`].
pub fn replay(path: &Path) -> Result<WalReplay, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let mut records = Vec::new();
    let mut off = 0usize;
    let mut defect = None;
    while off < bytes.len() {
        let remaining = bytes.len() - off;
        if remaining < HEADER_BYTES as usize {
            defect = Some(TailDefect {
                offset: off as u64,
                reason: TailReason::Torn,
            });
            break;
        }
        let len = read_u32(&bytes, off) as usize;
        let crc = read_u32(&bytes, off + 4);
        if len as u64 > u64::from(MAX_RECORD_BYTES) {
            defect = Some(TailDefect {
                offset: off as u64,
                reason: TailReason::BadLength,
            });
            break;
        }
        let start = off + HEADER_BYTES as usize;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            defect = Some(TailDefect {
                offset: off as u64,
                reason: TailReason::Torn,
            });
            break;
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            defect = Some(TailDefect {
                offset: off as u64,
                reason: TailReason::ChecksumMismatch,
            });
            break;
        }
        records.push(payload.to_vec());
        off = end;
    }
    Ok(WalReplay {
        records,
        valid_len: defect.map_or(bytes.len() as u64, |d| d.offset),
        defect,
    })
}

/// Replay refusing to auto-heal: any tail defect becomes a typed
/// [`StoreError::Corrupt`].
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] naming the offset and defect kind,
/// or propagates read errors.
pub fn replay_strict(path: &Path) -> Result<Vec<Vec<u8>>, StoreError> {
    let r = replay(path)?;
    match r.defect {
        None => Ok(r.records),
        Some(d) => Err(StoreError::corrupt(path, d.offset, d.reason.to_string())),
    }
}

/// Truncate the WAL at `path` to `valid_len` bytes (recovery to the
/// last complete record) and fsync the truncation.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn truncate_to(path: &Path, valid_len: u64) -> Result<(), StoreError> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()?;
    Ok(())
}

/// Read a little-endian u32 at `off` (caller guarantees bounds).
fn read_u32(bytes: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(b)
}

/// Verify a file is a readable stream (diagnostic helper for tests and
/// tools): total records and valid byte length.
///
/// # Errors
///
/// Propagates read errors.
pub fn inspect(path: &Path) -> Result<(usize, u64), StoreError> {
    let mut f = File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    let r = replay(path)?;
    Ok((r.records.len(), r.valid_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qrec-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_wal("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"").unwrap();
        wal.append(&[0xFF; 1000]).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.defect.is_none());
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[0], b"alpha");
        assert_eq!(r.records[1], b"");
        assert_eq!(r.records[2], vec![0xFF; 1000]);
        assert_eq!(r.valid_len, wal.len());
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = temp_wal("torn");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(b"good-one").unwrap();
        let good_len = wal.append(b"good-two").unwrap();
        drop(wal);
        // Simulate a torn write: header + partial payload.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&20u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(b"only-part").unwrap();
        drop(f);

        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 2);
        let d = r.defect.expect("tail defect");
        assert_eq!(d.reason, TailReason::Torn);
        assert_eq!(d.offset, good_len);
        assert_eq!(r.valid_len, good_len);

        // Strict replay surfaces a typed error.
        let err = replay_strict(&path).unwrap_err();
        assert!(err.is_corrupt(), "{err}");

        // Truncation heals the log; subsequent appends work.
        truncate_to(&path, r.valid_len).unwrap();
        let healed = replay(&path).unwrap();
        assert!(healed.defect.is_none());
        assert_eq!(healed.records.len(), 2);
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(b"good-three").unwrap();
        assert_eq!(replay(&path).unwrap().records.len(), 3);
    }

    #[test]
    fn checksum_mismatch_stops_replay() {
        let path = temp_wal("crc");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let first_end = wal.append(b"keep-me").unwrap();
        wal.append(b"corrupt-me").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = first_end as usize + HEADER_BYTES as usize; // first payload byte of record 2
        bytes[flip] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0], b"keep-me");
        let d = r.defect.expect("defect");
        assert_eq!(d.reason, TailReason::ChecksumMismatch);
        assert_eq!(d.offset, first_end);
    }

    #[test]
    fn bad_length_header_is_typed() {
        let path = temp_wal("badlen");
        let _ = std::fs::remove_file(&path);
        let mut f = File::create(&path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        drop(f);
        let r = replay(&path).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(r.defect.unwrap().reason, TailReason::BadLength);
    }

    #[test]
    fn missing_file_replays_empty() {
        let path = temp_wal("missing").join("nope.log");
        let r = replay(&path).unwrap();
        assert!(r.records.is_empty() && r.defect.is_none() && r.valid_len == 0);
    }

    #[test]
    fn oversized_append_is_rejected() {
        let path = temp_wal("oversize");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        // Don't allocate 256 MiB in a test: check the guard arithmetic
        // via a crafted length by calling with a just-over payload is
        // infeasible; instead assert the constant is enforced on the
        // replay side by the bad-length test and on append for a small
        // fake via direct comparison.
        assert!(wal.append(&[0u8; 64]).is_ok());
        assert!(u64::from(MAX_RECORD_BYTES) < u64::from(u32::MAX));
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_wal("reset");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::EveryN(2)).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert!(wal.is_empty());
        assert_eq!(replay(&path).unwrap().records.len(), 0);
        wal.append(b"after-reset").unwrap();
        assert_eq!(replay(&path).unwrap().records.len(), 1);
    }
}
