//! Compile-time thread-safety contracts.
//!
//! The serving layer shares a trained model across worker threads via
//! `Arc`, which is only sound if the whole model stack is `Send + Sync`.
//! These assertions fail to *compile* — not at runtime — if anyone
//! threads a non-`Sync` type (an `Rc`, a `RefCell`, a raw pointer)
//! into the model path.

use qrec_core::{AnyModel, Recommender};
use qrec_nn::Params;
use qrec_serve::{
    DecodeEngine, Metrics, ModelRegistry, RecCache, ServeError, Server, SessionStore,
};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn model_stack_is_send_sync() {
    assert_send_sync::<Recommender>();
    assert_send_sync::<AnyModel>();
    assert_send_sync::<Params>();
}

#[test]
fn serving_layer_is_send_sync() {
    assert_send_sync::<SessionStore>();
    assert_send_sync::<ModelRegistry>();
    assert_send_sync::<DecodeEngine>();
    assert_send_sync::<RecCache>();
    assert_send_sync::<Metrics>();
    assert_send_sync::<Server>();
    assert_send_sync::<ServeError>();
}
