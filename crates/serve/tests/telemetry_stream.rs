//! Telemetry-engine integration tests: the `WATCH` stream, `HISTORY`
//! durability across SIGKILL, slow-watcher disconnects, the
//! thread-pool rejection path, and deterministic drift detection.
//!
//! The restart test reuses the child-process pattern from
//! `restart_recovery.rs`: the child is this binary re-executed with the
//! `#[ignore]`d server test selected, the data directory passed through
//! an env var, and `READY <addr>` printed once serving.

use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_serve::telemetry::Telemetry;
use qrec_serve::{Client, EngineConfig, Frontend, Metrics, Response, Server, ServerConfig};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const DIR_ENV: &str = "QREC_SERVE_TLOG_DIR";

/// Two training epochs: these tests exercise telemetry, not model
/// quality.
fn train_tiny(seed: u64) -> Recommender {
    let (workload, _catalog) = generate(&WorkloadProfile::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = Split::paper(workload.pairs(), &mut rng);
    let mut cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 2;
    let (model, _report) = Recommender::try_train(&split, &workload, cfg).expect("train");
    model
}

/// Fast windows so tests observe several seals in well under a second.
fn windowed_config() -> ServerConfig {
    ServerConfig {
        engine: EngineConfig {
            workers: 1,
            queue_cap: 32,
            max_batch: 4,
            ..EngineConfig::default()
        },
        session_ttl: Duration::from_secs(600),
        sweep_interval: Duration::from_secs(600),
        cache_capacity: 64,
        window_width: Duration::from_millis(100),
        window_buckets: 32,
        ..ServerConfig::default()
    }
}

/// `WATCH` acks, then streams one line per sealed window — with the
/// template sketch and request deltas populated by traffic — while the
/// loop keeps answering other connections; `HISTORY` accumulates the
/// same windows.
#[test]
fn watch_streams_sealed_windows_without_blocking_the_loop() {
    let server = Server::start(train_tiny(31), "127.0.0.1:0", windowed_config()).expect("start");

    let mut watcher = Client::connect(server.local_addr()).expect("connect watcher");
    watcher.watch().expect("WATCH acked");

    // Traffic on a second connection: the loop must keep serving it
    // while the watcher is subscribed.
    let mut c = Client::connect(server.local_addr()).expect("connect");
    for i in 0..6 {
        let resp = c
            .recommend("walt", &format!("SELECT a FROM t{}", i % 3 + 1), 3)
            .expect("recommend while watching");
        assert!(resp.fragments.is_some());
    }

    // Streamed frames arrive until one shows the traffic (the first
    // frame may have sealed before the requests landed).
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut streamed = 0usize;
    loop {
        let frame = watcher.next_watch_frame().expect("streamed window");
        streamed += 1;
        let requests = frame.window.delta("serve.requests").expect("tracked");
        if requests >= 6 && !frame.templates.is_empty() {
            assert!(frame.template_total >= 6, "every parsed push is sketched");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no streamed window carried the traffic after {streamed} frames"
        );
    }
    // The loop stayed responsive throughout.
    c.ping().expect("ping while watching");

    // HISTORY returns the same ring, oldest first, seq strictly rising.
    let history = c.history(1000).expect("history");
    assert!(
        history.windows.len() >= 2,
        "several windows sealed: {}",
        history.windows.len()
    );
    assert!(history
        .windows
        .windows(2)
        .all(|w| w[0].window.seq < w[1].window.seq));
    // STATS carries the summary of the same engine.
    let stats = c.stats().expect("stats");
    assert!(stats.metrics.window.sealed >= 2);
    assert_eq!(stats.metrics.window.width_ms, 100);
}

/// Shrink a socket's kernel receive buffer to the OS minimum so the
/// peer's writes hit backpressure after a few KB instead of after the
/// default ~128 KB of kernel buffering (which would stretch this test
/// from about a second to about a minute). The build has no `libc`
/// crate; declare the one call directly, as `shims/polling` does.
fn shrink_recv_buffer(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};
    const SOL_SOCKET: c_int = 1;
    const SO_RCVBUF: c_int = 8;
    extern "C" {
        fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
    }
    let val: c_int = 1; // kernel clamps to its per-socket minimum
                        // SAFETY: fd is a live socket owned by `stream`, and the value
                        // pointer/length describe a valid c_int for the whole call.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&val as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

/// A watcher that never reads is disconnected with the typed
/// `slow_consumer` error once streamed windows overflow its outbox —
/// the same ladder every connection gets. Kernel buffering on both
/// sides is pinned small (`SO_SNDBUF` via the server's soft watermark,
/// `SO_RCVBUF` here) so the ladder engages in well under a second.
#[test]
fn slow_watcher_gets_typed_disconnect() {
    let cfg = ServerConfig {
        outbox_soft_bytes: 1024,
        outbox_hard_bytes: 2048,
        window_width: Duration::from_millis(10),
        ..windowed_config()
    };
    let server = Server::start(train_tiny(32), "127.0.0.1:0", cfg).expect("start");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    shrink_recv_buffer(&stream);
    let mut stream = stream;
    stream
        .write_all(b"{\"verb\":\"WATCH\"}\n")
        .expect("subscribe");
    // Never read: sealed windows stream every 10ms, the tiny receive
    // buffer fills, the server's outbox backs up past the hard cap, and
    // the ladder disconnects the watcher.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if server.metrics().snapshot().frontend.slow_disconnects >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slow watcher was never disconnected"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut all = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_to_string(&mut all).expect("read to EOF");
    let last = all.lines().last().expect("at least the error line");
    let resp: Response = serde_json::from_str(last).expect("parse last line");
    assert_eq!(resp.code.as_deref(), Some("slow_consumer"));
}

/// The thread-pool front end has no broadcast point (one blocking
/// thread per connection), so `WATCH` is a typed `bad_request` there —
/// while `HISTORY` and `PROF` work on both front ends.
#[test]
fn threadpool_rejects_watch_but_serves_history_and_prof() {
    let cfg = ServerConfig {
        frontend: Frontend::ThreadPool,
        conn_threads: 2,
        ..windowed_config()
    };
    let server = Server::start(train_tiny(33), "127.0.0.1:0", cfg).expect("start");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    match c.watch() {
        Err(qrec_serve::ServeError::BadRequest(msg)) => {
            assert!(msg.contains("event-loop"), "error names the fix: {msg}")
        }
        other => panic!("expected typed bad_request, got {other:?}"),
    }
    // The same connection keeps working, and the polling verbs serve.
    c.recommend("tp", "SELECT a FROM t1", 3).expect("recommend");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let h = c.history(10).expect("history over thread pool");
        if !h.windows.is_empty() {
            break;
        }
        assert!(Instant::now() < deadline, "no window sealed");
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = c.prof(8).expect("prof over thread pool");
    assert!(!report.running, "profiler off unless configured on");
}

/// The doomed child server: durable dir from the env, fast windows,
/// announce readiness, serve until SIGKILLed.
#[test]
#[ignore = "child half of history_survives_sigkill_restart"]
fn telemetry_server_child() {
    let Some(dir) = std::env::var_os(DIR_ENV) else {
        return; // invoked directly (e.g. --ignored sweep): nothing to do
    };
    let dir = PathBuf::from(dir);
    let cfg = ServerConfig {
        data_dir: Some(dir),
        ..windowed_config()
    };
    let server = Server::start(train_tiny(34), "127.0.0.1:0", cfg).expect("child server start");
    // Raw stdout: libtest's capture buffer only flushes when a test
    // ends, and this one never does.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "READY {}", server.local_addr()).expect("announce");
    out.flush().expect("flush announce");
    drop(out);
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}

/// Acceptance: sealed windows survive a SIGKILL via the telemetry log.
/// A child server seals windows under traffic, the parent records what
/// `HISTORY` reported, SIGKILLs the child, restarts over the same
/// directory, and finds the pre-kill windows in `HISTORY` again — with
/// new sequence numbers continuing after the restored ones.
#[test]
fn history_survives_sigkill_restart() {
    let dir = std::env::temp_dir().join(format!("qrec-serve-tlog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(&exe)
        .args([
            "telemetry_server_child",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env(DIR_ENV, &dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server child");

    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    // libtest prints its `test ... ` prefix without a newline, so READY
    // arrives glued to it — search within the line, don't anchor.
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "child exited before READY");
        if let Some(pos) = line.find("READY ") {
            break line[pos + "READY ".len()..].trim().to_string();
        }
    };

    // Drive traffic until at least three windows sealed, one carrying
    // requests.
    let mut c = Client::connect(addr.as_str()).expect("connect to child");
    let deadline = Instant::now() + Duration::from_secs(30);
    let pre_kill = loop {
        for i in 0..3 {
            c.recommend("hist", &format!("SELECT a FROM t{}", i + 1), 3)
                .expect("child recommend");
        }
        let h = c.history(1000).expect("child history");
        let carried: u64 = h
            .windows
            .iter()
            .filter_map(|w| w.window.delta("serve.requests"))
            .sum();
        if h.windows.len() >= 3 && carried >= 3 {
            break h.windows;
        }
        assert!(Instant::now() < deadline, "child never sealed 3 windows");
        std::thread::sleep(Duration::from_millis(30));
    };
    drop(c);

    // SIGKILL: no drain, no flush hooks, no destructors. The telemetry
    // log's acknowledged frames live in the OS page cache.
    child.kill().expect("kill child");
    let _ = child.wait();

    let cfg = ServerConfig {
        data_dir: Some(dir.clone()),
        ..windowed_config()
    };
    let server = Server::start(train_tiny(34), "127.0.0.1:0", cfg).expect("restart over dir");
    let mut c = Client::connect(server.local_addr()).expect("connect after restart");
    let restored = c.history(1000).expect("history after restart").windows;
    assert!(
        !restored.is_empty(),
        "restored HISTORY must carry pre-kill windows"
    );
    // Every pre-kill window except possibly the newest (sealed but not
    // yet appended when the kill landed) must be back, byte-identical
    // in the fields that matter.
    let restored_seqs: Vec<u64> = restored.iter().map(|w| w.window.seq).collect();
    for w in &pre_kill[..pre_kill.len() - 1] {
        assert!(
            restored_seqs.contains(&w.window.seq),
            "pre-kill window seq {} missing after restart (have {:?})",
            w.window.seq,
            restored_seqs
        );
        let again = restored
            .iter()
            .find(|r| r.window.seq == w.window.seq)
            .expect("present");
        assert_eq!(again.window.unix_ms, w.window.unix_ms);
        assert_eq!(
            again.window.delta("serve.requests"),
            w.window.delta("serve.requests")
        );
    }
    // New windows continue after the restored sequence, never reusing
    // seqs.
    let max_restored = restored_seqs.iter().copied().max().expect("non-empty");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let h = c.history(1000).expect("history keeps growing");
        if let Some(max_now) = h.windows.iter().map(|w| w.window.seq).max() {
            if max_now > max_restored {
                break;
            }
        }
        assert!(Instant::now() < deadline, "no new window after restart");
        std::thread::sleep(Duration::from_millis(30));
    }

    drop(c);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic drift detection, fake clock, no sleeps: a scripted
/// template-popularity flip between two windows pushes the JS
/// divergence gauge across the alert threshold within the second
/// window.
#[test]
fn template_flip_raises_js_divergence_within_two_windows() {
    let metrics = Metrics::new();
    let telemetry = Telemetry::new(&metrics, Duration::from_secs(10), 8);

    // Window 1: template 1 dominates. First window has no predecessor,
    // so drift is zero by construction.
    for _ in 0..100 {
        telemetry.note_template(1);
    }
    for _ in 0..5 {
        telemetry.note_template(2);
    }
    let w1 = telemetry.seal_at(10_000);
    assert_eq!(w1.drift.js_divergence, 0.0, "no predecessor, no drift");

    // Window 2: the popularity flips. JS divergence of the flipped
    // distributions is large (ln-based JS is bounded by ln 2 ≈ 0.693).
    for _ in 0..100 {
        telemetry.note_template(2);
    }
    for _ in 0..5 {
        telemetry.note_template(1);
    }
    let w2 = telemetry.seal_at(20_000);
    const ALERT: f64 = 0.2;
    assert!(
        w2.drift.js_divergence > ALERT,
        "flip must cross the threshold within two windows: {}",
        w2.drift.js_divergence
    );
    assert!(w2.drift.js_divergence <= std::f64::consts::LN_2 + 1e-9);
    assert!(w2.drift.chi_square > 0.0, "chi-square flags the flip too");

    // The score is exported through the registry gauges, which is what
    // `latest_drift` (and so STATS) reads back.
    let published = telemetry.latest_drift();
    assert!(
        published.js_divergence > ALERT,
        "gauge-backed readback crossed the threshold: {}",
        published.js_divergence
    );

    // A steady window afterwards drops back under the threshold.
    for _ in 0..100 {
        telemetry.note_template(2);
    }
    for _ in 0..5 {
        telemetry.note_template(1);
    }
    let w3 = telemetry.seal_at(30_000);
    assert!(
        w3.drift.js_divergence < ALERT / 2.0,
        "steady workload must not alert: {}",
        w3.drift.js_divergence
    );
}
