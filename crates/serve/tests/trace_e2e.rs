//! End-to-end flight-recorder test: drive real `RECOMMEND` requests
//! through the TCP server and assert that `TRACE` returns complete
//! per-request stage chains — proving the trace context survives the
//! conn-thread → batcher-worker hand-off with a stable request id —
//! and that `DUMP` exposes the stage histograms those spans fed.
//!
//! Lives in its own test binary on purpose: the flight recorder and
//! metric registry are process-global, so a dedicated process keeps
//! other integration tests' requests out of the assertions.

use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_serve::{Client, EngineConfig, Server, ServerConfig};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::Duration;

fn train_tiny(seed: u64) -> Recommender {
    let (workload, _catalog) = generate(&WorkloadProfile::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = Split::paper(workload.pairs(), &mut rng);
    let mut cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 2;
    let (model, _report) = Recommender::try_train(&split, &workload, cfg).expect("train");
    model
}

fn server_config() -> ServerConfig {
    ServerConfig {
        conn_threads: 2,
        engine: EngineConfig {
            workers: 1,
            queue_cap: 32,
            max_batch: 4,
            ..EngineConfig::default()
        },
        session_ttl: Duration::from_secs(600),
        sweep_interval: Duration::from_secs(600),
        cache_capacity: 256,
        ..ServerConfig::default()
    }
}

#[test]
fn flight_records_carry_full_stage_chains_end_to_end() {
    qrec_obs::set_enabled(true);
    let mut server =
        Server::start(train_tiny(1), "127.0.0.1:0", server_config()).expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // First request on a fresh window decodes; the repeat is answered by
    // the recommendation cache. Both must land in the flight recorder.
    let sql = "SELECT a FROM t WHERE b < 2";
    client
        .recommend("trace-user", sql, 5)
        .expect("decode request");
    let repeat = client
        .recommend("trace-user", sql, 5)
        .expect("cached request");
    assert_eq!(
        repeat.cached,
        Some(true),
        "repeat window must hit the cache"
    );

    let reply = client
        .trace(16)
        .expect("TRACE round-trips through the client");
    assert!(
        reply.recent.len() >= 2,
        "both requests recorded, got {}",
        reply.recent.len()
    );

    // Newest first: recent[0] is the cached repeat, recent[1] the decode.
    let cached = &reply.recent[0];
    let decoded = &reply.recent[1];

    // --- stable request identity across the batcher hand-off ---------
    // The "session" stage is recorded on the conn thread, "decode" on
    // the batcher worker; both appearing in one record proves the
    // context kept its identity through the queue.
    let ids: HashSet<u64> = reply.recent.iter().map(|r| r.request_id).collect();
    assert_eq!(ids.len(), reply.recent.len(), "request ids are distinct");
    assert!(
        decoded.request_id < cached.request_id,
        "ids increase monotonically"
    );

    // --- decode-path record: full stage chain, non-zero durations -----
    let stage = |name: &str| decoded.stages.iter().find(|s| s.name == name);
    for name in ["session", "batch_wait", "cache", "decode", "rank"] {
        assert!(
            stage(name).is_some(),
            "decode record has stage {name:?}: {decoded:?}"
        );
    }
    let decode_stage = stage("decode").expect("decode stage");
    assert!(decode_stage.dur_us > 0, "decode takes measurable time");
    assert!(
        decoded.total_us >= decode_stage.dur_us,
        "total covers the decode stage"
    );
    // The encode span nests inside the decode span on the worker.
    let encode = stage("encode").expect("encoder span nests in decode");
    assert!(encode.depth > decode_stage.depth, "encode is nested deeper");
    // Stage offsets are measured from one origin and ordered.
    assert!(decode_stage.start_us >= stage("session").expect("session").start_us);
    assert!(!decoded.cache_hit, "first window missed the cache");
    assert!(decoded.decode_steps > 0, "decoder steps attributed");
    assert!(!decoded.strategy.is_empty(), "strategy recorded");
    assert!(decoded.batch_size >= 1, "batch size recorded");
    assert_eq!(decoded.epoch, 1, "served by the first model epoch");

    // --- cache-hit record: same chain minus decode --------------------
    assert!(cached.cache_hit, "repeat request is a cache hit");
    assert!(cached.stages.iter().any(|s| s.name == "cache"));
    assert!(
        !cached.stages.iter().any(|s| s.name == "decode"),
        "cache hit never reaches the decoder: {cached:?}"
    );
    assert_eq!(cached.decode_steps, 0);

    // --- slowest reservoir: sorted, and holds the decode request ------
    assert!(!reply.slowest.is_empty(), "slowest reservoir populated");
    assert!(
        reply
            .slowest
            .windows(2)
            .all(|w| w[0].total_us >= w[1].total_us),
        "slowest is sorted slowest-first"
    );
    assert!(
        reply
            .slowest
            .iter()
            .any(|r| r.request_id == decoded.request_id),
        "the decode request is among the slowest seen"
    );

    // --- DUMP exposes the histograms the spans fed --------------------
    let dump = client.dump().expect("DUMP");
    for needle in [
        "# TYPE qrec_serve_stage_decode_us histogram",
        "qrec_serve_stage_session_us_count",
        "qrec_serve_latency_us_count",
        "qrec_nn_decode_steps",
    ] {
        assert!(dump.contains(needle), "DUMP missing {needle:?}:\n{dump}");
    }

    server.shutdown();
}
