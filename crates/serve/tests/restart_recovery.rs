//! Restart-recovery integration tests: the durability story end to end.
//!
//! The headline test SIGKILLs a serving process after it has swapped in
//! a trained model and acknowledged session writes, restarts the server
//! over the same data directory, and asserts that (a) every session is
//! served from its recovered history, (b) the recovered model is the
//! swapped one — same epoch, bitwise-identical weights — and (c) the
//! durable-store metrics surface through `STATS`.
//!
//! The child is this test binary re-executed with the `#[ignore]`d
//! server test selected, the data directory passed through
//! `QREC_SERVE_RESTART_DIR`. The child prints `READY <addr>` only after
//! the model swap has been persisted, so everything the parent does is
//! against post-swap, durability-on state.

use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_serve::{Client, ModelZoo, Server, ServerConfig};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

const DIR_ENV: &str = "QREC_SERVE_RESTART_DIR";

/// Deterministic tiny model: same seed, same weights — in any process.
fn train_tiny(seed: u64) -> Recommender {
    let (workload, _catalog) = generate(&WorkloadProfile::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = Split::paper(workload.pairs(), &mut rng);
    let mut cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 2;
    let (model, _report) = Recommender::try_train(&split, &workload, cfg).expect("train");
    model
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        conn_threads: 2,
        session_ttl: Duration::from_secs(600),
        sweep_interval: Duration::from_secs(600),
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

/// Assert two models carry bitwise-identical parameter tensors.
fn assert_weights_bitwise_equal(got: &Recommender, want: &Recommender) {
    let got: Vec<_> = got.params().named_tensors().collect();
    let want: Vec<_> = want.params().named_tensors().collect();
    assert_eq!(got.len(), want.len(), "tensor count differs");
    for ((gn, gt), (wn, wt)) in got.iter().zip(&want) {
        assert_eq!(gn, wn, "tensor name order differs");
        assert_eq!(gt.rows(), wt.rows(), "tensor {gn}: rows differ");
        assert_eq!(gt.cols(), wt.cols(), "tensor {gn}: cols differ");
        for (i, (g, w)) in gt.data().iter().zip(wt.data()).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "tensor {gn}[{i}]: {g} != {w} (bitwise)"
            );
        }
    }
}

/// The doomed server run inside the child process: boot with one model,
/// hot-swap (and persist) a second, announce readiness, then serve until
/// the parent SIGKILLs us.
#[test]
#[ignore = "child half of sigkill_restart_recovers_sessions_and_model"]
fn restart_server_child() {
    let Some(dir) = std::env::var_os(DIR_ENV) else {
        return; // invoked directly (e.g. --ignored sweep): nothing to do
    };
    let dir = PathBuf::from(dir);
    let server = Server::start(train_tiny(11), "127.0.0.1:0", durable_config(&dir))
        .expect("child server start");
    let epoch = server
        .try_swap_model(train_tiny(22))
        .expect("persisted swap");
    assert_eq!(epoch, 2, "boot at 1, first swap is 2");
    // Printed only after the swap is durable: the parent's whole
    // interaction happens against the post-swap server. Written to the
    // raw stdout handle — `println!` would land in libtest's capture
    // buffer, which only flushes when a test *ends*, and this one never
    // does.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "READY {}", server.local_addr()).expect("announce");
    out.flush().expect("flush announce");
    drop(out);
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}

/// Acceptance test for the PR: populate sessions and hot-swap a model in
/// a child server, SIGKILL it, restart over the same directory, and
/// serve recommendations from the recovered sessions with the recovered
/// model — weights bitwise-equal to the swapped ones.
#[test]
fn sigkill_restart_recovers_sessions_and_model() {
    let dir = std::env::temp_dir().join(format!("qrec-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dir");

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(&exe)
        .args([
            "restart_server_child",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env(DIR_ENV, &dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server child");

    // Wait for the child to announce its ephemeral address.
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    // libtest prints `test restart_server_child ... ` with no trailing
    // newline before the test body runs, so the READY marker arrives
    // glued to that prefix — search within the line, don't anchor.
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "child exited before READY");
        if let Some(pos) = line.find("READY ") {
            break line[pos + "READY ".len()..].trim().to_string();
        }
    };

    // Populate sessions through the real protocol. Every Ok reply is an
    // acknowledged durable write (fsync Always is the default policy).
    let mut c = Client::connect(addr.as_str()).expect("connect to child");
    let alice_sqls = [
        "SELECT a FROM t",
        "SELECT b FROM t WHERE a > 1",
        "SELECT a, b FROM t ORDER BY a",
    ];
    for sql in alice_sqls {
        let resp = c.recommend("alice", sql, 5).expect("alice recommend");
        assert_eq!(resp.epoch, Some(2), "child serves the swapped model");
    }
    for sql in ["SELECT x FROM u", "SELECT y FROM u WHERE x = 0"] {
        c.recommend("bob", sql, 5).expect("bob recommend");
    }
    drop(c);

    // SIGKILL: no drain, no flush hooks, no destructors.
    child.kill().expect("kill child");
    let _ = child.wait();

    // Restart in-process over the same directory with a *different*
    // fallback model; recovery must prefer the persisted state.
    let mut server = Server::start(train_tiny(99), "127.0.0.1:0", durable_config(&dir))
        .expect("restart over recovered dir");
    assert_eq!(server.model_epoch(), 2, "epoch resumes from the zoo");
    assert_weights_bitwise_equal(&server.registry().current().1, &train_tiny(22));

    // Session histories came back from the durable tier...
    assert_eq!(
        server.sessions().session_len("alice"),
        Some(3),
        "alice's acknowledged history survives the SIGKILL"
    );
    assert_eq!(server.sessions().session_len("bob"), Some(2));

    // ...and serving continues from them.
    let mut c = Client::connect(server.local_addr()).expect("connect after restart");
    let resp = c
        .recommend("alice", "SELECT a FROM t WHERE b < 2", 5)
        .expect("recommend from recovered session");
    assert_eq!(resp.epoch, Some(2), "recovered model serves");
    assert!(resp.fragments.is_some(), "real recommendation produced");
    assert_eq!(
        server.sessions().session_len("alice"),
        Some(4),
        "recovered history keeps growing"
    );
    assert!(
        server.sessions().rehydrated() >= 1,
        "at least one session was rehydrated from disk"
    );

    // Durable-store counters surface through STATS.
    let stats = c.stats().expect("stats");
    assert_eq!(stats.model_epoch, 2);
    assert!(
        stats.metrics.store.recovered_records >= 5,
        "recovery replayed the five acknowledged session writes, got {}",
        stats.metrics.store.recovered_records
    );
    assert!(
        stats.metrics.store.wal_appends >= 1,
        "post-restart write hit the WAL"
    );

    drop(c);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A zoo save/load round trip preserves the weights bitwise and the
/// epoch exactly — the in-process half of the recovery guarantee.
#[test]
fn zoo_round_trip_is_bitwise() {
    let dir = std::env::temp_dir().join(format!("qrec-zoo-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let zoo = ModelZoo::open(&dir).expect("open zoo");
    assert!(zoo.load_current().expect("empty zoo").is_none());

    let model = train_tiny(7);
    zoo.save(7, &model).expect("save");
    let (epoch, restored) = zoo.load_current().expect("load").expect("model present");
    assert_eq!(epoch, 7);
    assert_weights_bitwise_equal(&restored, &model);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-write a saved blob with its JSON header transformed; the sections
/// are carried over untouched (the blob layer re-CRCs them).
fn rewrite_header(blob_path: &Path, f: impl FnOnce(&mut serde::Map)) {
    let b = qrec_store::blob::read_blob(blob_path).expect("read blob");
    let v: serde::Value = serde_json::from_str(&b.header).expect("parse header");
    let mut map = v.as_object().expect("header is an object").clone();
    f(&mut map);
    let doctored = serde_json::to_string(&serde::Value::Object(map)).expect("serialise header");
    let refs: Vec<&[u8]> = b.sections.iter().map(Vec::as_slice).collect();
    qrec_store::blob::write_blob(blob_path, &doctored, &refs).expect("rewrite blob");
}

/// A quantized model's int8 sidecar persists to the zoo (v2 sections)
/// and is rebuilt on load without re-calibrating: the exported packed
/// weights match entry for entry, and the f32 weights stay bitwise.
#[test]
fn quantized_zoo_round_trip_restores_sidecar() {
    let dir = std::env::temp_dir().join(format!("qrec-zoo-quant-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let zoo = ModelZoo::open(&dir).expect("open zoo");
    let mut model = train_tiny(5);
    model.quantize();
    zoo.save(3, &model).expect("save quantized");

    let (epoch, restored) = zoo.load_current().expect("load").expect("model present");
    assert_eq!(epoch, 3);
    assert!(restored.is_quantized(), "sidecar must survive the zoo");
    assert_weights_bitwise_equal(&restored, &model);
    let want = model.params().quant().expect("sidecar").export();
    let got = restored.params().quant().expect("sidecar").export();
    assert_eq!(want.len(), got.len(), "quantized weight count");
    for ((wi, wr, wc, ws, wq), (gi, gr, gc, gs, gq)) in want.iter().zip(&got) {
        assert_eq!(wi, gi, "param index");
        assert_eq!((wr, wc), (gr, gc), "param {wi}: shape");
        let bits = |s: &[f32]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ws), bits(gs), "param {wi}: scale bits");
        assert_eq!(wq, gq, "param {wi}: int8 values");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An f32-only (v1-era) blob — no `quant` header field — still loads,
/// and comes back unquantized.
#[test]
fn v1_blob_without_quant_field_still_loads() {
    let dir = std::env::temp_dir().join(format!("qrec-zoo-v1-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let zoo = ModelZoo::open(&dir).expect("open zoo");
    let model = train_tiny(4);
    zoo.save(1, &model).expect("save");

    // Rewrite the header exactly as a v1 writer would have produced it.
    rewrite_header(&dir.join(ModelZoo::blob_name(1)), |map| {
        map.insert("format_version", serde::Value::Int(1));
        *map = map
            .iter()
            .filter(|(k, _)| k.as_str() != "quant")
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
    });

    let (epoch, restored) = zoo.load_current().expect("v1 blob loads").expect("present");
    assert_eq!(epoch, 1);
    assert!(!restored.is_quantized(), "v1 blobs carry no sidecar");
    assert_weights_bitwise_equal(&restored, &model);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A blob written by a *future* zoo version is refused with a typed
/// corruption error — never a panic or a misparse of unknown sections.
#[test]
fn future_format_version_blob_is_refused_typed() {
    let dir = std::env::temp_dir().join(format!("qrec-zoo-future-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let zoo = ModelZoo::open(&dir).expect("open zoo");
    zoo.save(1, &train_tiny(6)).expect("save");

    rewrite_header(&dir.join(ModelZoo::blob_name(1)), |map| {
        map.insert("format_version", serde::Value::Int(99));
    });

    let err = match zoo.load_current() {
        Err(e) => e,
        Ok(_) => panic!("future version must be refused"),
    };
    assert!(err.is_corrupt(), "wrong error class: {err}");
    assert!(
        err.to_string().contains("format version"),
        "error should name the version mismatch: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped bit anywhere in a persisted weight blob is a typed
/// corruption error on load — never a silently different model.
#[test]
fn corrupt_weight_blob_is_typed_not_loaded() {
    let dir = std::env::temp_dir().join(format!("qrec-zoo-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let zoo = ModelZoo::open(&dir).expect("open zoo");
    let model = train_tiny(3);
    zoo.save(1, &model).expect("save");

    let blob_path = dir.join(ModelZoo::blob_name(1));
    let mut bytes = std::fs::read(&blob_path).expect("read blob");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40; // flip one bit in the middle of the weights
    std::fs::write(&blob_path, &bytes).expect("write corrupted blob");

    let err = match zoo.load_current() {
        Err(e) => e,
        Ok(_) => panic!("corruption must be detected"),
    };
    assert!(err.is_corrupt(), "wrong error class: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
