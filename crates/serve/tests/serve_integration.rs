//! End-to-end serving test: train a tiny model, run the real TCP
//! server on an ephemeral port, and drive it with real clients.
//!
//! Covers the full story in one pass (training is the expensive part,
//! so the scenario reuses one server): parallel clients, cache hits on
//! repeated windows, STATS accounting, typed backpressure from a
//! saturated queue, model hot-swap mid-serve, and graceful shutdown.

use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_serve::{
    Client, DecodeEngine, DecodeRequest, EngineConfig, Metrics, RecCache, ServeError, Server,
    ServerConfig,
};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// Train a small-but-real recommender; two epochs is plenty for a
/// serving test (we exercise plumbing, not model quality).
fn train_tiny(seed: u64) -> Recommender {
    let (workload, _catalog) = generate(&WorkloadProfile::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = Split::paper(workload.pairs(), &mut rng);
    let mut cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 2;
    let (model, _report) = Recommender::try_train(&split, &workload, cfg).expect("train");
    model
}

fn server_config() -> ServerConfig {
    ServerConfig {
        conn_threads: 6,
        engine: EngineConfig {
            workers: 2,
            queue_cap: 32,
            max_batch: 4,
            ..EngineConfig::default()
        },
        session_ttl: Duration::from_secs(600),
        sweep_interval: Duration::from_secs(600),
        cache_capacity: 256,
        ..ServerConfig::default()
    }
}

#[test]
fn serve_end_to_end() {
    let mut server =
        Server::start(train_tiny(1), "127.0.0.1:0", server_config()).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Liveness.
    let mut probe = Client::connect(addr).expect("connect");
    probe.ping().expect("ping");

    // --- parallel clients, distinct sessions --------------------------
    let sqls = [
        "SELECT a FROM t",
        "SELECT b FROM t WHERE a > 1",
        "SELECT a, b FROM t ORDER BY a",
    ];
    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let session = format!("user-{i}");
                for sql in sqls {
                    let resp = c.recommend(&session, sql, 5).expect("recommend");
                    assert_eq!(resp.epoch, Some(1), "all pre-swap replies are epoch 1");
                    let frags = resp.fragments.expect("fragments present");
                    assert!(
                        frags.table.len() <= 5
                            && frags.column.len() <= 5
                            && frags.function.len() <= 5
                            && frags.literal.len() <= 5,
                        "n caps every kind"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // --- cache hit on a repeated input window -------------------------
    // Window size is 1, so re-issuing the same statement reproduces the
    // same normalized window; the second answer must come from the LRU.
    let mut c = Client::connect(addr).expect("connect");
    let first = c
        .recommend("cache-user", "SELECT a FROM t WHERE b < 2", 5)
        .expect("first");
    let second = c
        .recommend("cache-user", "SELECT a FROM t WHERE b < 2", 5)
        .expect("second");
    assert_eq!(
        second.cached,
        Some(true),
        "repeat window must hit the cache"
    );
    assert_eq!(
        first.fragments, second.fragments,
        "cached ranking equals the computed one"
    );

    // --- STATS accounting ---------------------------------------------
    let stats = probe.stats().expect("stats");
    assert!(stats.metrics.requests > 0);
    assert!(stats.metrics.recommends >= 14, "4 clients x 3 + 2 = 14");
    assert!(stats.metrics.cache_hits >= 1);
    assert!(stats.metrics.cache_misses >= 1);
    assert!(stats.metrics.batches >= 1);
    assert!(stats.metrics.batched_jobs >= stats.metrics.batches);
    assert!(stats.metrics.latency.count > 0);
    assert_eq!(stats.model_epoch, 1);
    assert!(stats.sessions >= 5, "4 parallel sessions + cache-user");
    assert!(stats.cache_entries >= 1);

    // --- typed backpressure from a saturated queue --------------------
    // A zero-worker engine against the same registry: the queue never
    // drains, so capacity + 1 submissions deterministically overflow.
    {
        let idle = DecodeEngine::start(
            EngineConfig {
                workers: 0,
                queue_cap: 2,
                ..EngineConfig::default()
            },
            Arc::clone(server.registry()),
            Arc::new(RecCache::new(4)),
            Arc::new(Metrics::new()),
        )
        .unwrap();
        let req = DecodeRequest {
            tokens: vec!["select".into(), "a".into()],
            n: 3,
            trace: None,
        };
        assert!(idle.submit(req.clone()).is_ok());
        assert!(idle.submit(req.clone()).is_ok());
        match idle.submit(req) {
            Err(ServeError::Overloaded) => {}
            Err(e) => panic!("expected Overloaded, got {e}"),
            Ok(_) => panic!("expected Overloaded, got Ok"),
        }
    }

    // --- hot-swap: in-flight service continues, epoch advances --------
    let new_epoch = server.swap_model(train_tiny(2));
    assert_eq!(new_epoch, 2);
    let resp = c
        .recommend("cache-user", "SELECT a FROM t WHERE b < 2", 5)
        .expect("post-swap recommend");
    assert_eq!(resp.epoch, Some(2), "new model serves after the swap");
    assert_eq!(
        resp.cached,
        Some(false),
        "epoch-keyed cache cannot serve the old model's entry"
    );
    probe.ping().expect("server alive across swap");
    assert_eq!(probe.stats().expect("stats").metrics.swaps, 1);

    // --- graceful shutdown --------------------------------------------
    probe.shutdown_server().expect("SHUTDOWN acknowledged");
    assert!(
        server.wait_for_shutdown_request(Some(Duration::from_secs(5))),
        "SHUTDOWN verb signals the owner"
    );
    drop(c);
    drop(probe);
    server.shutdown();
    // The listener is gone: a fresh connection must fail (either the
    // connect itself or the first round-trip).
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut late) => late.ping().is_err(),
    };
    assert!(refused, "server must stop accepting after shutdown");
}
