//! Event-loop front-end robustness: partial frames, pipelining,
//! oversized lines, connection caps, idle timeouts, slow consumers, and
//! the slowloris scenario (thousands of idle connections on a bounded
//! thread count).
//!
//! Every test drives the real TCP server through raw sockets — no
//! `Client` conveniences — because the failure modes under test live
//! below the request/response layer.

use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_serve::{EngineConfig, Response, Server, ServerConfig};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Two training epochs: these tests exercise the socket layer, not
/// model quality.
fn train_tiny(seed: u64) -> Recommender {
    let (workload, _catalog) = generate(&WorkloadProfile::tiny(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = Split::paper(workload.pairs(), &mut rng);
    let mut cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 2;
    let (model, _report) = Recommender::try_train(&split, &workload, cfg).expect("train");
    model
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        engine: EngineConfig {
            workers: 1,
            queue_cap: 32,
            max_batch: 4,
            ..EngineConfig::default()
        },
        session_ttl: Duration::from_secs(600),
        sweep_interval: Duration::from_secs(600),
        cache_capacity: 64,
        ..ServerConfig::default()
    }
}

fn read_response(stream: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    stream.read_line(&mut line).expect("read response line");
    serde_json::from_str(line.trim()).expect("parse response")
}

/// Threads of this process, from /proc/self/status. The slowloris test
/// runs the server in-process, so this covers its threads too.
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// A request split across many tiny writes must reassemble into exactly
/// one request, answered once the final newline lands.
#[test]
fn partial_writes_reassemble_into_one_request() {
    let server = Server::start(train_tiny(11), "127.0.0.1:0", quiet_config()).expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    let line = br#"{"verb":"RECOMMEND","session":"drip","sql":"SELECT a FROM t1","n":3}"#;
    // Byte-by-byte: every possible split boundary of this line crosses
    // a separate read() on the server.
    for b in line.iter() {
        stream
            .write_all(std::slice::from_ref(b))
            .expect("write byte");
        stream.flush().expect("flush");
    }
    stream.write_all(b"\n").expect("write newline");

    let mut reader = BufReader::new(stream);
    let resp = read_response(&mut reader);
    assert!(resp.ok, "dripped request must succeed: {resp:?}");
    assert!(resp.fragments.is_some());

    // Exactly one response: a follow-up PING answers next, proving no
    // phantom second response was queued.
    let mut stream = reader.into_inner();
    stream.write_all(b"{\"verb\":\"PING\"}\n").expect("ping");
    let resp = read_response(&mut BufReader::new(stream));
    assert!(resp.ok);
}

/// Many requests arriving in a single read must each get a response, in
/// order.
#[test]
fn pipelined_requests_in_one_write_answer_in_order() {
    let server = Server::start(train_tiny(12), "127.0.0.1:0", quiet_config()).expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    let mut batch = Vec::new();
    for i in 0..8 {
        batch.extend_from_slice(
            format!(
                r#"{{"verb":"RECOMMEND","session":"pipe","sql":"SELECT a FROM t{}","n":2}}"#,
                i % 3 + 1
            )
            .as_bytes(),
        );
        batch.push(b'\n');
    }
    batch.extend_from_slice(b"{\"verb\":\"STATS\"}\n");
    stream.write_all(&batch).expect("write pipeline");

    let mut reader = BufReader::new(stream);
    for i in 0..8 {
        let resp = read_response(&mut reader);
        assert!(resp.ok, "pipelined request {i} failed: {resp:?}");
        assert!(resp.fragments.is_some(), "request {i} is a RECOMMEND");
    }
    // The STATS trailer answers last — ordering held across the
    // recommend/inline-verb boundary.
    let resp = read_response(&mut reader);
    let stats = resp.stats.expect("stats reply last");
    assert!(stats.metrics.recommends >= 8);
    drop(server);
}

/// A line over the cap gets a typed `bad_request` naming the limit, and
/// the connection closes (the stream offset is unrecoverable).
#[test]
fn oversized_line_rejected_with_typed_error() {
    let cfg = ServerConfig {
        max_line_bytes: 4 * 1024,
        ..quiet_config()
    };
    let server = Server::start(train_tiny(13), "127.0.0.1:0", cfg).expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    let mut big = Vec::with_capacity(8 * 1024 + 1);
    big.extend_from_slice(br#"{"verb":"RECOMMEND","sql":""#);
    big.resize(8 * 1024, b'x');
    big.push(b'\n');
    stream.write_all(&big).expect("write oversized");

    let mut reader = BufReader::new(stream);
    let resp = read_response(&mut reader);
    assert!(!resp.ok);
    assert_eq!(resp.code.as_deref(), Some("bad_request"));
    assert!(
        resp.error.as_deref().unwrap_or("").contains("4096"),
        "error names the limit: {:?}",
        resp.error
    );
    // Typed rejection, then EOF.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "nothing after the rejection: {rest:?}");
    assert!(server.metrics().snapshot().errors >= 1);
}

/// The slowloris scenario: hundreds of connections that send nothing
/// must not consume threads — the whole point of the event loop. The
/// thread-per-connection design would need one thread each.
#[test]
fn slowloris_idle_connections_hold_on_bounded_threads() {
    let server = Server::start(train_tiny(14), "127.0.0.1:0", quiet_config()).expect("start");
    let addr = server.local_addr();

    let threads_before = process_threads();
    let mut herd = Vec::new();
    for i in 0..400 {
        match TcpStream::connect(addr) {
            Ok(s) => herd.push(s),
            Err(e) => panic!("connect {i} failed: {e}"),
        }
    }
    // Accepts run on the loop thread; give it a beat to drain the
    // backlog, then confirm every connection was admitted.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = server.metrics().snapshot().frontend.conns_open;
        if open >= 400 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {open}/400 connections admitted before timeout"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let threads_after = process_threads();
    assert!(
        threads_after <= threads_before + 2,
        "400 idle connections must not grow the thread count: \
         {threads_before} -> {threads_after}"
    );

    // Every idle connection still works: the last one accepted answers.
    let mut last = herd.pop().expect("herd nonempty");
    last.write_all(b"{\"verb\":\"PING\"}\n").expect("ping");
    let resp = read_response(&mut BufReader::new(last));
    assert!(resp.ok, "idle connection still serves: {resp:?}");
    drop(server);
}

/// Connections beyond the cap are counted and dropped; the ones under
/// the cap keep working.
#[test]
fn connections_over_the_cap_are_rejected() {
    let cfg = ServerConfig {
        max_connections: 4,
        ..quiet_config()
    };
    let server = Server::start(train_tiny(15), "127.0.0.1:0", cfg).expect("start");
    let addr = server.local_addr();

    let keepers: Vec<TcpStream> = (0..4)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    let extras: Vec<TcpStream> = (0..6)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();

    // Rejected connections see EOF (after a best-effort overloaded
    // line); admitted ones stay silent until spoken to.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = server.metrics().snapshot().frontend;
        if s.rejected_cap >= 6 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {}/6 over-cap connections rejected before timeout",
            s.rejected_cap
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    for extra in extras {
        let mut buf = String::new();
        let mut r = BufReader::new(extra);
        // Either a typed overloaded line or an immediate EOF.
        let _ = r.read_line(&mut buf);
        if !buf.trim().is_empty() {
            let resp: Response = serde_json::from_str(buf.trim()).expect("parse");
            assert_eq!(resp.code.as_deref(), Some("overloaded"));
        }
    }
    // An admitted connection still answers.
    let mut keeper = keepers.into_iter().next().expect("keeper");
    keeper.write_all(b"{\"verb\":\"PING\"}\n").expect("ping");
    let resp = read_response(&mut BufReader::new(keeper));
    assert!(resp.ok);
}

/// Idle connections are reclaimed by the timeout and counted.
#[test]
fn idle_connections_time_out() {
    let cfg = ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..quiet_config()
    };
    let server = Server::start(train_tiny(16), "127.0.0.1:0", cfg).expect("start");
    let idle = TcpStream::connect(server.local_addr()).expect("connect");

    let mut reader = BufReader::new(idle);
    let mut buf = String::new();
    // The server closes us: read returns 0 (EOF) once the timeout
    // fires. Generous client-side timeout so a slow CI box passes.
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let n = reader.read_line(&mut buf).expect("EOF, not an error");
    assert_eq!(n, 0, "idle connection must be closed by the server");
    assert!(server.metrics().snapshot().frontend.idle_disconnects >= 1);
}

/// A client that never drains its responses is disconnected with the
/// typed `slow_consumer` error instead of buffering without bound.
#[test]
fn slow_consumers_get_typed_disconnect() {
    let cfg = ServerConfig {
        outbox_soft_bytes: 1024,
        outbox_hard_bytes: 2048,
        ..quiet_config()
    };
    let server = Server::start(train_tiny(17), "127.0.0.1:0", cfg).expect("start");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // DUMP responses are multi-KiB; a few of them pipelined with the
    // client not reading overflow a 2 KiB outbox immediately.
    let burst = b"{\"verb\":\"DUMP\"}\n".repeat(16);
    stream.write_all(&burst).expect("write burst");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.metrics().snapshot().frontend.slow_disconnects >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slow consumer was never disconnected"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Drain what the server buffered: the stream ends with the typed
    // error line, then EOF.
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut all = String::new();
    let mut reader = BufReader::new(stream);
    reader.read_to_string(&mut all).expect("read to EOF");
    let last = all.lines().last().expect("at least the error line");
    let resp: Response = serde_json::from_str(last).expect("parse last line");
    assert_eq!(resp.code.as_deref(), Some("slow_consumer"));
}
