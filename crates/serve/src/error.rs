//! Typed serving errors.
//!
//! Every failure a request can hit — backpressure, shutdown, bad input —
//! is a [`ServeError`] variant with a stable wire code, so clients can
//! distinguish "retry later" ([`ServeError::Overloaded`]) from "fix your
//! request" ([`ServeError::BadRequest`]).

use std::fmt;

/// Everything that can go wrong while serving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The decode queue is full; the client should back off and retry.
    Overloaded,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request line was not valid protocol JSON, or a required
    /// field was missing.
    BadRequest(String),
    /// The submitted statement is not valid SQL in the `qrec` dialect.
    Sql(String),
    /// The session exists but has no queries yet, so there is no input
    /// window to decode from.
    EmptySession,
    /// The durable session store could not acknowledge a write (or a
    /// persisted record failed validation). The request must fail —
    /// acknowledging a session update the WAL did not accept would break
    /// the durability guarantee.
    Store(String),
    /// The client is not draining its socket: the per-connection outbox
    /// hit its hard cap. The server sends this once and disconnects —
    /// buffering without bound or blocking a worker are both worse.
    SlowConsumer,
    /// A transport-level failure (connection dropped, malformed reply).
    Io(String),
}

impl ServeError {
    /// Stable machine-readable code used on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Sql(_) => "sql_error",
            ServeError::EmptySession => "empty_session",
            ServeError::Store(_) => "store_error",
            ServeError::SlowConsumer => "slow_consumer",
            ServeError::Io(_) => "io_error",
        }
    }

    /// Reconstruct an error from its wire code and message (client side).
    pub fn from_wire(code: &str, message: String) -> Self {
        match code {
            "overloaded" => ServeError::Overloaded,
            "shutting_down" => ServeError::ShuttingDown,
            "bad_request" => ServeError::BadRequest(message),
            "sql_error" => ServeError::Sql(message),
            "empty_session" => ServeError::EmptySession,
            "store_error" => ServeError::Store(message),
            "slow_consumer" => ServeError::SlowConsumer,
            _ => ServeError::Io(message),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "decode queue full; retry later"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Sql(m) => write!(f, "invalid SQL: {m}"),
            ServeError::EmptySession => write!(f, "session has no queries yet"),
            ServeError::Store(m) => write!(f, "durable store error: {m}"),
            ServeError::SlowConsumer => {
                write!(f, "client not draining responses; disconnecting")
            }
            ServeError::Io(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for e in [
            ServeError::Overloaded,
            ServeError::ShuttingDown,
            ServeError::BadRequest("x".into()),
            ServeError::Sql("y".into()),
            ServeError::EmptySession,
            ServeError::Store("w".into()),
            ServeError::SlowConsumer,
            ServeError::Io("z".into()),
        ] {
            let back = ServeError::from_wire(e.code(), e.to_string());
            assert_eq!(back.code(), e.code());
        }
    }
}
