//! The original thread-per-connection front end
//! ([`crate::server::Frontend::ThreadPool`]).
//!
//! One accept thread (non-blocking poll so shutdown never hangs in
//! `accept`) feeds connections to a fixed pool of handlers over an
//! unbounded channel. Handlers read with a short timeout so they
//! observe the shutdown flag even while a client is idle.
//!
//! Kept as the baseline the event loop is benchmarked against
//! (`BENCH_serve.json`), and as the conservative fallback
//! (`qrec-serve --frontend threadpool`).

use crossbeam::channel::Sender;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

use crate::eventloop::{accept_error_action, AcceptAction, ACCEPT_BACKOFF};
use crate::metrics::Metrics;
use crate::server::Shared;

/// How long the accept thread naps when the accept queue is empty.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

pub(crate) fn accept_loop(listener: TcpListener, conn_tx: Sender<TcpStream>, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Handlers use blocking reads with a poll timeout.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                Metrics::bump(&shared.metrics.frontend.accepted);
                if conn_tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            // Transient errors share the event loop's classification:
            // an aborted connection is consumed (keep draining), fd
            // exhaustion backs off — retrying EMFILE in a tight loop
            // would peg a core without ever accepting anything.
            Err(e) => match accept_error_action(&e) {
                AcceptAction::Retry => continue,
                AcceptAction::Backoff => {
                    Metrics::bump(&shared.metrics.frontend.accept_backoffs);
                    thread::sleep(ACCEPT_BACKOFF);
                }
            },
        }
    }
}

/// Keeps the per-server open count and the `conns_open` gauge honest
/// across every exit path of [`handle_connection`].
struct OpenGuard<'a> {
    shared: &'a Shared,
}

impl<'a> OpenGuard<'a> {
    fn enter(shared: &'a Shared) -> OpenGuard<'a> {
        let open = shared.pool_open.fetch_add(1, Ordering::Relaxed) + 1;
        shared.metrics.frontend.conns_open.set(open);
        OpenGuard { shared }
    }
}

impl Drop for OpenGuard<'_> {
    fn drop(&mut self) {
        let open = self.shared.pool_open.fetch_sub(1, Ordering::Relaxed) - 1;
        self.shared.metrics.frontend.conns_open.set(open);
    }
}

pub(crate) fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _open = OpenGuard::enter(shared);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, close_after) = crate::server::dispatch(line.trim(), shared);
        let mut payload = response.to_json_line();
        payload.push('\n');
        if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if close_after {
            return;
        }
    }
}
