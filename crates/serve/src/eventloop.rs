//! The readiness-based TCP front end (DESIGN.md §16).
//!
//! One thread owns a [`polling::Poller`] and every connection. Sockets
//! are non-blocking; each connection is a small state machine holding a
//! [`FrameBuf`] for incremental JSONL reassembly, a bounded outbox for
//! buffered writes, and an ordering queue so pipelined requests answer
//! in arrival order. Request *execution* never happens here: RECOMMEND
//! jobs go to the batcher worker pool via
//! [`crate::batcher::DecodeEngine::submit_callback`] — with the durable
//! session push deferred to the worker, because a WAL fsync on the loop
//! thread would stall every connection — and completions come back
//! through a channel plus a [`polling::Waker`] that interrupts the poll.
//!
//! The backpressure ladder, outside-in:
//!
//! 1. outbox over the soft watermark (or too many queued pipelined
//!    frames) → stop reading from that client; its TCP window closes
//!    and backpressure propagates to the sender.
//! 2. outbox over the hard cap → typed [`ServeError::SlowConsumer`]
//!    disconnect; the server never buffers a client without bound.
//! 3. decode queue full → typed `Overloaded` response, exactly as the
//!    thread-pool front end.
//!
//! Idle connections cost one slab slot and one timer-wheel entry; the
//! idle timeout reclaims them. Transient accept errors (EMFILE/ENFILE)
//! park the listener's interest and re-enable it after a backoff — a
//! level-triggered listener with pending connections would otherwise
//! spin the loop at 100% CPU.

use crossbeam::channel::{unbounded, Receiver, Sender};
use polling::{Events, Interest, Poller, Token, Waker};
use qrec_obs::{flight, trace, TraceContext};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::batcher::{DecodeRequest, Recommendation};
use crate::error::ServeError;
use crate::framing::{FrameBuf, FrameError};
use crate::metrics::Metrics;
use crate::protocol::{Request, Response, DEFAULT_N};
use crate::server::{Dispatch, Shared};
use crate::timer::TimerWheel;

const TOKEN_LISTENER: Token = Token(0);
const TOKEN_WAKER: Token = Token(1);
/// Connection slab slot `i` registers as token `i + TOKEN_CONN_BASE`.
const TOKEN_CONN_BASE: usize = 2;

/// Pipelined frames a connection may queue behind an in-flight request;
/// beyond this the loop stops reading from it (ladder rung 1).
const PENDING_MAX: usize = 64;

/// How long a transient accept error parks the listener (and how long
/// the thread-pool accept thread sleeps on the same classification).
pub(crate) const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Timer-wheel granularity. Idle timeouts are second-scale; 100ms slots
/// keep the worst-case overshoot invisible.
const WHEEL_TICK: Duration = Duration::from_millis(100);
const WHEEL_SLOTS: usize = 256;

/// Per-connection limits, copied out of `ServerConfig`.
#[derive(Debug, Clone)]
pub(crate) struct LoopLimits {
    pub max_connections: usize,
    pub max_line_bytes: usize,
    pub outbox_soft_bytes: usize,
    pub outbox_hard_bytes: usize,
    pub idle_timeout: Duration,
    pub drain_timeout: Duration,
}

/// A finished request coming back from a batcher worker.
pub(crate) struct Completion {
    slot: usize,
    /// Generation of the connection that submitted the request; a
    /// mismatch means the slot was reused and the result is dropped.
    gen: u64,
    /// Serialised response line (newline included), built on the worker
    /// so the loop only copies bytes.
    payload: Vec<u8>,
}

/// What to do after a failed `accept(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptAction {
    /// The failed connection is consumed; keep accepting this tick.
    Retry,
    /// Resource pressure (or an unknown error): park the listener and
    /// re-enable after [`ACCEPT_BACKOFF`]. Never spin.
    Backoff,
}

/// Classify an `accept(2)` error. `WouldBlock` never reaches here (the
/// caller treats it as "accept queue drained").
pub(crate) fn accept_error_action(e: &std::io::Error) -> AcceptAction {
    const ENFILE: i32 = 23;
    const EMFILE: i32 = 24;
    const ECONNABORTED: i32 = 103;
    match e.raw_os_error() {
        // The connection aborted before we accepted it; nothing is
        // wrong with the listener. Keep draining the queue.
        Some(ECONNABORTED) => AcceptAction::Retry,
        // Fd exhaustion: accepting cannot succeed until something
        // closes, and a level-triggered listener with a pending backlog
        // reports readable forever. Park it; closed fds free capacity.
        Some(ENFILE) | Some(EMFILE) => AcceptAction::Backoff,
        _ if e.kind() == ErrorKind::Interrupted => AcceptAction::Retry,
        // Unknown errors: backing off is always safe; retrying might
        // spin on a persistent failure.
        _ => AcceptAction::Backoff,
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Monotonic id guarding against slab-slot reuse: completions and
    /// timers carry it and are dropped on mismatch.
    gen: u64,
    frame: FrameBuf,
    /// Buffered outgoing bytes; `out_pos` marks how much is written.
    outbox: Vec<u8>,
    out_pos: usize,
    /// Interest currently registered with the poller (cached so
    /// unchanged ticks skip the `epoll_ctl` syscall).
    interest: Interest,
    /// A request is executing on the worker pool.
    inflight: bool,
    /// Complete frames waiting their turn behind the in-flight request.
    pending: VecDeque<Vec<u8>>,
    /// Close once the outbox drains (SHUTDOWN ack, typed rejection).
    close_after_flush: bool,
    /// Peer sent EOF; finish in-flight work, flush, then close.
    peer_closed: bool,
    /// Subscribed to the telemetry stream (`WATCH`): every sealed
    /// window is enqueued as one response line. The regular outbox
    /// backpressure ladder applies, so a watcher that stops reading is
    /// disconnected as a slow consumer like anyone else.
    watching: bool,
    last_activity: Instant,
}

impl Conn {
    fn outbox_len(&self) -> usize {
        self.outbox.len() - self.out_pos
    }

    /// The interest this connection's state wants right now.
    fn desired_interest(&self, soft: usize) -> Interest {
        let throttled =
            self.outbox_len() > soft || self.pending.len() >= PENDING_MAX || self.peer_closed;
        match (!throttled, self.outbox_len() > 0) {
            (true, true) => Interest::BOTH,
            (true, false) => Interest::READABLE,
            (false, true) => Interest::WRITABLE,
            (false, false) => Interest::NONE,
        }
    }
}

/// The event loop itself; owned and driven by one thread.
pub(crate) struct EventLoop {
    poller: Poller,
    waker: Arc<Waker>,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots freed during the current tick; merged into `free` only at
    /// tick end so events already harvested can't hit a reused slot.
    freed_this_tick: Vec<usize>,
    open: usize,
    next_gen: u64,
    wheel: TimerWheel,
    completion_tx: Sender<Completion>,
    completions: Receiver<Completion>,
    shared: Arc<Shared>,
    limits: LoopLimits,
    /// Shared read buffer (one read per readiness event).
    scratch: Vec<u8>,
    /// Listener parked until this instant after a transient accept
    /// error.
    unpark_at: Option<Instant>,
    /// Set when shutdown begins: the drain deadline.
    drain_deadline: Option<Instant>,
    /// Loop-local outbox high-water mark, republished to the gauge.
    outbox_high_water: usize,
    /// Newest telemetry window already broadcast to watchers; `None`
    /// until the first broadcast considers the ring.
    watch_cursor: Option<u64>,
}

impl EventLoop {
    /// Build the loop around an already bound listener. The waker is
    /// created here (it must register with this poller) and handed back
    /// via the `Arc` for the server's shutdown path.
    pub(crate) fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        limits: LoopLimits,
    ) -> std::io::Result<(EventLoop, Arc<Waker>)> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(&listener, TOKEN_LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER)?);
        let (completion_tx, completions) = unbounded();
        // Windows sealed before the loop starts (restored history) are
        // the `HISTORY` verb's business; WATCH streams only what seals
        // from now on.
        let watch_cursor = shared.telemetry.latest_seq();
        let lp = EventLoop {
            poller,
            waker: Arc::clone(&waker),
            listener: Some(listener),
            conns: Vec::new(),
            free: Vec::new(),
            freed_this_tick: Vec::new(),
            open: 0,
            next_gen: 1,
            wheel: TimerWheel::new(WHEEL_TICK, WHEEL_SLOTS, Instant::now()),
            completion_tx,
            completions,
            shared,
            limits,
            scratch: vec![0; 64 * 1024],
            unpark_at: None,
            drain_deadline: None,
            outbox_high_water: 0,
            watch_cursor,
        };
        Ok((lp, waker))
    }

    /// Run until shutdown completes its drain.
    pub(crate) fn run(&mut self) {
        qrec_obs::prof::register_thread("event-loop");
        let mut events = Events::new();
        loop {
            if !self.tick_event_loop(&mut events) {
                return;
            }
        }
    }

    /// One loop iteration: poll, then handle readiness, completions,
    /// timers, and shutdown. Returns false when the loop is done.
    ///
    /// Everything reachable from here must be non-blocking — qrec-lint's
    /// R10 treats `tick*` functions as hot entries for exactly this
    /// invariant.
    fn tick_event_loop(&mut self, events: &mut Events) -> bool {
        let now = Instant::now();
        self.tick_unpark(now);
        let timeout = self.poll_timeout(now);
        match self.poller.wait(events, Some(timeout)) {
            Ok(n) => {
                if n > 0 {
                    Metrics::bump(&self.shared.metrics.frontend.poll_wakeups);
                }
            }
            Err(_) => return true, // transient poll failure: next tick
        }

        for ev in events.iter() {
            match ev.token {
                TOKEN_LISTENER => self.tick_accept(),
                TOKEN_WAKER => self.waker.drain(),
                Token(t) => {
                    let slot = t - TOKEN_CONN_BASE;
                    if ev.readable || ev.hangup {
                        self.tick_read(slot);
                    }
                    if ev.writable {
                        self.tick_flush(slot);
                    }
                }
            }
        }

        // Completions can arrive with or without a waker event (the
        // waker coalesces); always drain the channel.
        self.tick_completions();

        let now = Instant::now();
        self.tick_timers(now);
        self.tick_watch();

        let done = self.tick_shutdown(now);

        // Safe to reuse slots freed this tick: the event batch is spent.
        self.free.append(&mut self.freed_this_tick);
        self.shared
            .metrics
            .frontend
            .conns_open
            .set(self.open as u64);
        !done
    }

    /// How long the poller may sleep: bounded by the nearest timer, the
    /// listener unpark, and a coarse heartbeat.
    fn poll_timeout(&self, now: Instant) -> Duration {
        let mut t = Duration::from_millis(500);
        if let Some(w) = self.wheel.next_wakeup(now) {
            t = t.min(w);
        }
        if let Some(u) = self.unpark_at {
            t = t.min(u.saturating_duration_since(now));
        }
        if self.drain_deadline.is_some() {
            t = t.min(Duration::from_millis(10));
        }
        t.max(Duration::from_millis(1))
    }

    /// Re-enable a parked listener once its backoff has elapsed.
    fn tick_unpark(&mut self, now: Instant) {
        if let (Some(at), Some(listener)) = (self.unpark_at, &self.listener) {
            if now >= at {
                let _ = self
                    .poller
                    .reregister(listener, TOKEN_LISTENER, Interest::READABLE);
                self.unpark_at = None;
            }
        }
    }

    /// Drain the accept queue: admit up to the connection cap, send a
    /// typed rejection beyond it, and back off on transient errors.
    fn tick_accept(&mut self) {
        loop {
            let accepted = {
                let Some(listener) = &self.listener else {
                    return;
                };
                listener.accept()
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if self.open >= self.limits.max_connections {
                        self.reject_over_cap(stream);
                    } else {
                        self.admit(stream);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) => match accept_error_action(&e) {
                    AcceptAction::Retry => continue,
                    AcceptAction::Backoff => {
                        Metrics::bump(&self.shared.metrics.frontend.accept_backoffs);
                        if let Some(listener) = &self.listener {
                            let _ =
                                self.poller
                                    .reregister(listener, TOKEN_LISTENER, Interest::NONE);
                        }
                        self.unpark_at = Some(Instant::now() + ACCEPT_BACKOFF);
                        return;
                    }
                },
            }
        }
    }

    /// Over the cap: one best-effort typed error line, then drop. The
    /// write is non-blocking; a full socket buffer just loses the
    /// courtesy message, never stalls the loop.
    fn reject_over_cap(&mut self, stream: TcpStream) {
        Metrics::bump(&self.shared.metrics.frontend.rejected_cap);
        let _ = stream.set_nonblocking(true);
        let mut payload = Response::err(&ServeError::Overloaded)
            .to_json_line()
            .into_bytes();
        payload.push(b'\n');
        let mut s = stream;
        let _ = s.write(&payload);
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        // Clamp the kernel send buffer to the soft watermark. Left to
        // auto-tune, Linux grows it toward wmem_max (megabytes), which
        // would let a slow reader park that much memory in the kernel
        // before the outbox ladder ever engages; with the clamp, total
        // per-connection buffering stays on the order of the configured
        // caps. Best-effort: a refused option just means default tuning.
        let _ = polling::set_send_buffer_size(&stream, self.limits.outbox_soft_bytes);
        let gen = self.next_gen;
        self.next_gen += 1;
        let now = Instant::now();
        let conn = Conn {
            stream,
            gen,
            frame: FrameBuf::new(self.limits.max_line_bytes),
            outbox: Vec::new(),
            out_pos: 0,
            interest: Interest::READABLE,
            inflight: false,
            pending: VecDeque::new(),
            close_after_flush: false,
            peer_closed: false,
            watching: false,
            last_activity: now,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.conns[s] = Some(conn);
                s
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let registered = match self.conns[slot].as_ref() {
            Some(c) => self
                .poller
                .register(&c.stream, Token(slot + TOKEN_CONN_BASE), Interest::READABLE)
                .is_ok(),
            None => false,
        };
        if !registered {
            self.conns[slot] = None;
            self.free.push(slot);
            return;
        }
        self.open += 1;
        Metrics::bump(&self.shared.metrics.frontend.accepted);
        self.wheel
            .schedule(now + self.limits.idle_timeout, timer_key(slot, gen));
    }

    /// Drop a connection. The stream's fd closes with it, which
    /// deregisters it from epoll implicitly.
    fn close(&mut self, slot: usize) {
        if let Some(entry) = self.conns.get_mut(slot) {
            if entry.take().is_some() {
                self.open -= 1;
                self.freed_this_tick.push(slot);
            }
        }
    }

    /// Readable (or hangup) readiness on a connection: read once, feed
    /// the framer, dispatch what completed. Level triggering re-reports
    /// any input the single read left behind.
    fn tick_read(&mut self, slot: usize) {
        enum ReadOutcome {
            Close,
            Got,
            Eof,
            Nothing,
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
                return;
            };
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                    if !conn.inflight && conn.pending.is_empty() && conn.outbox_len() == 0 {
                        ReadOutcome::Close
                    } else {
                        ReadOutcome::Eof
                    }
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.frame.feed(&self.scratch[..n]);
                    ReadOutcome::Got
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted =>
                {
                    ReadOutcome::Nothing
                }
                Err(_) => ReadOutcome::Close,
            }
        };
        match outcome {
            ReadOutcome::Close => self.close(slot),
            ReadOutcome::Got => {
                self.tick_frames(slot);
                self.refresh_interest(slot);
            }
            ReadOutcome::Eof | ReadOutcome::Nothing => self.refresh_interest(slot),
        }
    }

    /// Pop completed frames and run them, preserving arrival order:
    /// while a request is in flight, later frames queue in `pending`.
    fn tick_frames(&mut self, slot: usize) {
        loop {
            enum FrameStep {
                Run(Vec<u8>),
                Queued,
                Paused,
                Dry,
                Oversized(usize),
                Closing,
            }
            let step = {
                let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
                    return;
                };
                if conn.close_after_flush {
                    FrameStep::Closing
                } else {
                    match conn.frame.pop_frame() {
                        Ok(Some(frame)) => {
                            if conn.inflight || !conn.pending.is_empty() {
                                if conn.pending.len() >= PENDING_MAX {
                                    // Interest math already paused reads;
                                    // the frame stays in the FrameBuf.
                                    FrameStep::Paused
                                } else {
                                    conn.pending.push_back(frame);
                                    FrameStep::Queued
                                }
                            } else {
                                FrameStep::Run(frame)
                            }
                        }
                        Ok(None) => FrameStep::Dry,
                        Err(FrameError::Oversized(cap)) => FrameStep::Oversized(cap),
                    }
                }
            };
            match step {
                FrameStep::Run(frame) => self.run_frame(slot, frame),
                FrameStep::Queued => {}
                FrameStep::Paused | FrameStep::Dry | FrameStep::Closing => return,
                FrameStep::Oversized(cap) => {
                    // The stream offset is unrecoverable after an
                    // oversized line: typed rejection, then close.
                    Metrics::bump(&self.shared.metrics.requests);
                    Metrics::bump(&self.shared.metrics.errors);
                    let resp = Response::err(&ServeError::BadRequest(format!(
                        "request line exceeds the {cap}-byte limit"
                    )));
                    self.enqueue_response(slot, &resp, true);
                    return;
                }
            }
        }
    }

    /// Execute one frame: control verbs answer inline (they only read
    /// atomics and registries); RECOMMEND goes to the worker pool.
    fn run_frame(&mut self, slot: usize, frame: Vec<u8>) {
        let line = match std::str::from_utf8(&frame) {
            Ok(l) => l.trim(),
            Err(_) => {
                Metrics::bump(&self.shared.metrics.requests);
                Metrics::bump(&self.shared.metrics.errors);
                let resp =
                    Response::err(&ServeError::BadRequest("request line is not UTF-8".into()));
                self.enqueue_response(slot, &resp, false);
                return;
            }
        };
        if line.is_empty() {
            return; // blank lines are ignored, as in the thread pool
        }
        let shared = Arc::clone(&self.shared);
        match crate::server::dispatch_parsed(line, &shared) {
            Dispatch::Done(resp, close_after) => {
                self.enqueue_response(slot, &resp, close_after);
            }
            Dispatch::Recommend(req) => self.start_recommend(slot, req),
            Dispatch::Watch => {
                if let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) {
                    conn.watching = true;
                }
                self.enqueue_response(slot, &Response::ok(), false);
            }
        }
    }

    /// Stream freshly sealed telemetry windows to every watcher: one
    /// JSON response line per window, serialised once and fanned out
    /// through the normal outbox (so the backpressure ladder and the
    /// slow-consumer disconnect apply unchanged). The poll heartbeat
    /// bounds broadcast latency at ~500ms — far inside any practical
    /// window width.
    fn tick_watch(&mut self) {
        let frames = self.shared.telemetry.frames_after(self.watch_cursor);
        let Some(last) = frames.last() else {
            return;
        };
        self.watch_cursor = Some(last.window.seq);
        let watchers: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter(|(_, s)| s.as_ref().is_some_and(|c| c.watching))
            .map(|(i, _)| i)
            .collect();
        if watchers.is_empty() {
            return;
        }
        for frame in frames {
            let mut line = Response::watch(frame).to_json_line().into_bytes();
            line.push(b'\n');
            for &slot in &watchers {
                self.enqueue_bytes(slot, &line, false);
            }
        }
    }

    /// Hand a RECOMMEND to the batcher: the worker runs the durable
    /// session push (`prepare`), decodes, serialises the response, and
    /// posts a [`Completion`] through the waker.
    fn start_recommend(&mut self, slot: usize, req: Request) {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            let resp = Response::err(&ServeError::ShuttingDown);
            self.enqueue_response(slot, &resp, false);
            return;
        }
        let (session, sql) = match (&req.session, &req.sql) {
            (Some(s), Some(q)) => (s.clone(), q.clone()),
            _ => {
                Metrics::bump(&self.shared.metrics.errors);
                let resp = Response::err(&ServeError::BadRequest(
                    "RECOMMEND needs `session` and `sql`".into(),
                ));
                self.enqueue_response(slot, &resp, false);
                return;
            }
        };
        let Some(gen) = self.conns.get(slot).and_then(|s| s.as_ref()).map(|c| c.gen) else {
            return;
        };
        let n = req.n.map(|n| n as usize).unwrap_or(DEFAULT_N);
        Metrics::bump(&self.shared.metrics.recommends);

        // Start the flight trace on the loop thread (stable request id,
        // queue depth at submission); it rides the DecodeRequest to the
        // worker, which records every stage.
        let t0 = Instant::now();
        if let Some(ctx) = TraceContext::start(qrec_obs::next_request_id()) {
            trace::install(ctx);
        }
        trace::note_queue_depth(self.shared.engine.queued() as u64);
        let trace_ctx = trace::uninstall();

        let store = Arc::clone(&self.shared.store);
        let prepare = Box::new(move || store.push_sql(&session, &sql));

        let metrics = Arc::clone(&self.shared.metrics);
        let completion_tx = self.completion_tx.clone();
        let waker = Arc::clone(&self.waker);
        let reply = Box::new(move |result: Result<Recommendation, ServeError>| {
            let response = match result {
                Ok(rec) => {
                    if let Some(ctx) = rec.trace {
                        flight::global().record(ctx, t0.elapsed());
                    }
                    Response::recommendation(rec.fragments, rec.epoch, rec.cached)
                }
                Err(e) => {
                    match e {
                        ServeError::Overloaded => Metrics::bump(&metrics.overloaded),
                        _ => Metrics::bump(&metrics.errors),
                    }
                    Response::err(&e)
                }
            };
            let mut payload = response.to_json_line().into_bytes();
            payload.push(b'\n');
            // A send after loop teardown just drops the completion; the
            // connection is gone with the loop anyway.
            let _ = completion_tx.send(Completion { slot, gen, payload });
            let _ = waker.wake();
        });

        let dreq = DecodeRequest {
            tokens: Vec::new(), // resolved by `prepare` on the worker
            n,
            trace: trace_ctx,
        };
        match self
            .shared
            .engine
            .submit_callback(dreq, Some(prepare), reply)
        {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) {
                    conn.inflight = true;
                }
            }
            Err(e) => {
                match e {
                    ServeError::Overloaded => Metrics::bump(&self.shared.metrics.overloaded),
                    _ => Metrics::bump(&self.shared.metrics.errors),
                }
                let resp = Response::err(&e);
                self.enqueue_response(slot, &resp, false);
            }
        }
    }

    /// Deliver worker results: match generation, enqueue the payload,
    /// and let the connection's queued frames proceed.
    fn tick_completions(&mut self) {
        while let Ok(c) = self.completions.try_recv() {
            {
                let Some(conn) = self.conns.get_mut(c.slot).and_then(|s| s.as_mut()) else {
                    continue; // connection closed mid-request
                };
                if conn.gen != c.gen {
                    continue; // slot reused; stale completion
                }
                conn.inflight = false;
            }
            self.enqueue_bytes(c.slot, &c.payload, false);
            self.tick_pending(c.slot);
        }
    }

    /// Run queued frames until one goes in flight (or the queue dries
    /// up), then resume popping frames the throttle left buffered.
    fn tick_pending(&mut self, slot: usize) {
        loop {
            let frame = {
                let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
                    return;
                };
                if conn.inflight || conn.close_after_flush {
                    break;
                }
                match conn.pending.pop_front() {
                    Some(f) => f,
                    None => break,
                }
            };
            self.run_frame(slot, frame);
        }
        // The pending queue drained below its cap: frames still sitting
        // in the FrameBuf (while reads were paused) can be popped now.
        self.tick_frames(slot);
        enum EofStep {
            CloseNow,
            FlushThenClose,
            Keep,
        }
        let eof = match self.conns.get(slot).and_then(|s| s.as_ref()) {
            Some(conn) if conn.peer_closed && !conn.inflight && conn.pending.is_empty() => {
                if conn.outbox_len() == 0 {
                    EofStep::CloseNow
                } else {
                    EofStep::FlushThenClose
                }
            }
            Some(_) => EofStep::Keep,
            None => return,
        };
        match eof {
            EofStep::CloseNow => {
                self.close(slot);
                return;
            }
            EofStep::FlushThenClose => {
                if let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) {
                    conn.close_after_flush = true;
                }
            }
            EofStep::Keep => {}
        }
        self.refresh_interest(slot);
    }

    /// Serialise and enqueue a response line.
    fn enqueue_response(&mut self, slot: usize, resp: &Response, close_after: bool) {
        let mut payload = resp.to_json_line().into_bytes();
        payload.push(b'\n');
        self.enqueue_bytes(slot, &payload, close_after);
    }

    /// Append bytes to a connection's outbox, enforce the hard cap, and
    /// flush opportunistically (most responses leave in this call
    /// without ever arming write interest).
    fn enqueue_bytes(&mut self, slot: usize, payload: &[u8], close_after: bool) {
        let hard = self.limits.outbox_hard_bytes;
        let depth = {
            let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
                return;
            };
            if conn.close_after_flush {
                // A terminal line (shutdown ack, slow-consumer error)
                // is already queued; anything appended after it would
                // trail the connection's final response.
                return;
            }
            if conn.outbox_len() + payload.len() > hard {
                // Ladder rung 2: the client is not draining. One typed
                // error instead of the backlog, then disconnect.
                Metrics::bump(&self.shared.metrics.frontend.slow_disconnects);
                // Bytes up to `out_pos` are already on the wire and may
                // end mid-line; terminate the partial line so the typed
                // error stays parseable as its own JSONL line.
                let mid_line =
                    conn.out_pos > 0 && conn.outbox.get(conn.out_pos - 1) != Some(&b'\n');
                conn.outbox.clear();
                conn.out_pos = 0;
                if mid_line {
                    conn.outbox.push(b'\n');
                }
                let mut line = Response::err(&ServeError::SlowConsumer)
                    .to_json_line()
                    .into_bytes();
                line.push(b'\n');
                conn.outbox.extend_from_slice(&line);
                conn.close_after_flush = true;
            } else {
                // Compact the written prefix before growing further.
                if conn.out_pos > 0 && conn.out_pos == conn.outbox.len() {
                    conn.outbox.clear();
                    conn.out_pos = 0;
                } else if conn.out_pos > 8192 {
                    conn.outbox.drain(..conn.out_pos);
                    conn.out_pos = 0;
                }
                conn.outbox.extend_from_slice(payload);
                if close_after {
                    conn.close_after_flush = true;
                }
            }
            conn.outbox_len()
        };
        if depth > self.outbox_high_water {
            self.outbox_high_water = depth;
            self.shared
                .metrics
                .frontend
                .outbox_high_water
                .set(depth as u64);
        }
        self.tick_flush(slot);
    }

    /// Write as much of the outbox as the socket takes right now.
    fn tick_flush(&mut self, slot: usize) {
        let mut should_close = false;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
                return;
            };
            while conn.out_pos < conn.outbox.len() {
                match conn.stream.write(&conn.outbox[conn.out_pos..]) {
                    Ok(0) => break,
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock
                            || e.kind() == ErrorKind::Interrupted =>
                    {
                        break;
                    }
                    Err(_) => {
                        should_close = true;
                        break;
                    }
                }
            }
            if !should_close && conn.out_pos == conn.outbox.len() {
                conn.outbox.clear();
                conn.out_pos = 0;
                if conn.close_after_flush {
                    should_close = true;
                }
            }
        }
        if should_close {
            self.close(slot);
        } else {
            self.refresh_interest(slot);
        }
    }

    /// Reconcile the connection's registered interest with what its
    /// state wants; a no-op when unchanged.
    fn refresh_interest(&mut self, slot: usize) {
        let soft = self.limits.outbox_soft_bytes;
        let Some(conn) = self.conns.get_mut(slot).and_then(|s| s.as_mut()) else {
            return;
        };
        let want = conn.desired_interest(soft);
        if want != conn.interest {
            if self
                .poller
                .reregister(&conn.stream, Token(slot + TOKEN_CONN_BASE), want)
                .is_ok()
            {
                conn.interest = want;
            } else {
                self.close(slot);
            }
        }
    }

    /// Fire idle-timeout candidates. Expiry is lazily revalidated: a
    /// connection that saw traffic since scheduling is rescheduled for
    /// its remaining window instead of dropped.
    fn tick_timers(&mut self, now: Instant) {
        let mut fired = Vec::new();
        self.wheel.advance(now, &mut fired);
        for key in fired {
            let (slot, gen_low) = split_timer_key(key);
            enum TimerStep {
                Drop,
                Close,
                Reschedule(Instant, u64),
            }
            let step = match self.conns.get(slot).and_then(|s| s.as_ref()) {
                None => TimerStep::Drop,
                Some(conn) if conn.gen as u32 != gen_low => TimerStep::Drop,
                Some(conn) => {
                    let idle_for = now.saturating_duration_since(conn.last_activity);
                    if idle_for >= self.limits.idle_timeout && !conn.inflight {
                        TimerStep::Close
                    } else {
                        let base = if conn.inflight {
                            now
                        } else {
                            conn.last_activity
                        };
                        TimerStep::Reschedule(base + self.limits.idle_timeout, conn.gen)
                    }
                }
            };
            match step {
                TimerStep::Drop => {}
                TimerStep::Close => {
                    Metrics::bump(&self.shared.metrics.frontend.idle_disconnects);
                    self.close(slot);
                }
                TimerStep::Reschedule(at, gen) => {
                    self.wheel.schedule(at, timer_key(slot, gen));
                }
            }
        }
    }

    /// Shutdown state machine: stop accepting, let in-flight requests
    /// finish and flush (as the thread pool does), close the rest.
    /// Returns true when the loop should exit.
    fn tick_shutdown(&mut self, now: Instant) -> bool {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if self.drain_deadline.is_none() {
            // Closing the listener both refuses new connections and
            // frees the port before the loop finishes draining.
            self.listener = None;
            self.unpark_at = None;
            self.drain_deadline = Some(now + self.limits.drain_timeout);
        }
        for slot in 0..self.conns.len() {
            let keep = match self.conns.get(slot).and_then(|s| s.as_ref()) {
                // In-flight requests were accepted: they get their
                // reply. Everything else closes now, like a pool
                // handler noticing the flag on its next read timeout.
                Some(conn) => conn.inflight || conn.outbox_len() > 0,
                None => true,
            };
            if !keep {
                self.close(slot);
            }
        }
        let deadline_passed = self.drain_deadline.is_some_and(|d| now >= d);
        self.open == 0 || deadline_passed
    }
}

/// Pack a slab slot and the low generation bits into a timer key.
fn timer_key(slot: usize, gen: u64) -> u64 {
    ((slot as u64) << 32) | u64::from(gen as u32)
}

fn split_timer_key(key: u64) -> (usize, u32) {
    ((key >> 32) as usize, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_errors_classify_transient_vs_backoff() {
        // ECONNABORTED: the one connection is gone, keep accepting.
        let aborted = std::io::Error::from_raw_os_error(103);
        assert_eq!(accept_error_action(&aborted), AcceptAction::Retry);
        // EMFILE / ENFILE: fd exhaustion must park, not spin.
        for code in [23, 24] {
            let e = std::io::Error::from_raw_os_error(code);
            assert_eq!(
                accept_error_action(&e),
                AcceptAction::Backoff,
                "errno {code} must back off"
            );
        }
        let eintr = std::io::Error::from(ErrorKind::Interrupted);
        assert_eq!(accept_error_action(&eintr), AcceptAction::Retry);
        // Anything unrecognised backs off — never a hot retry loop.
        let weird = std::io::Error::other("unexpected");
        assert_eq!(accept_error_action(&weird), AcceptAction::Backoff);
    }

    #[test]
    fn timer_keys_round_trip() {
        for (slot, gen) in [
            (0usize, 1u64),
            (17, 0xdead_beef),
            (usize::MAX >> 33, u64::MAX),
        ] {
            let (s, g) = split_timer_key(timer_key(slot, gen));
            assert_eq!(s, slot);
            assert_eq!(g, gen as u32);
        }
    }
}
