//! Micro-batching decode engine.
//!
//! Decode jobs flow through one bounded MPMC channel into a pool of
//! worker threads. A worker blocks for the first job, then greedily
//! drains up to `max_batch - 1` more without blocking, and serves the
//! whole batch against a *single* registry read — one `(epoch, model)`
//! snapshot per batch amortises registry traffic and keeps a batch
//! internally consistent across a concurrent hot-swap.
//!
//! Backpressure is typed: submission uses `try_send`, and a full queue
//! surfaces as [`ServeError::Overloaded`] immediately instead of
//! blocking the connection handler — the client decides whether to
//! retry.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use qrec_nn::decode::EncCache;
use qrec_nn::Strategy;
use qrec_obs::{trace, Span, TraceContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crate::cache::{CacheKey, RecCache};
use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;

/// One decode request: the session's windowed input tokens and how many
/// fragments per kind the client wants.
#[derive(Debug, Clone)]
pub struct DecodeRequest {
    /// Model input tokens (the session window).
    pub tokens: Vec<String>,
    /// Fragments to return per kind.
    pub n: usize,
    /// Flight-recorder trace riding with the request across the batcher
    /// hand-off (`None` when the obs spine is disabled).
    pub trace: Option<Box<TraceContext>>,
}

/// A served recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Top-`n` fragments per kind, ranked by aggregated probability.
    pub fragments: qrec_core::predict::PerKind<Vec<String>>,
    /// Epoch of the model that produced (or cached) the ranking.
    pub epoch: u64,
    /// True when the ranking came from the LRU cache.
    pub cached: bool,
    /// The request's trace, carried back so the connection thread can
    /// finish it with the end-to-end duration.
    pub trace: Option<Box<TraceContext>>,
}

/// Session-preparation step run on the worker just before decoding:
/// returns the model input tokens (typically from a durable
/// [`SessionStore::push_sql`](crate::session_store::SessionStore::push_sql),
/// which may block on a WAL fsync — exactly why it runs here and not on
/// the event-loop thread).
pub type PrepareFn = Box<dyn FnOnce() -> Result<Vec<String>, ServeError> + Send>;

/// Completion callback for [`DecodeEngine::submit_callback`]: invoked
/// once on a worker thread with the job's result.
pub type ReplyFn = Box<dyn FnOnce(Result<Recommendation, ServeError>) + Send>;

/// How a job's result gets back to its submitter.
enum Reply {
    /// Blocking submitters wait on a channel ([`DecodeEngine::submit`]).
    Channel(Sender<Result<Recommendation, ServeError>>),
    /// The event loop supplies a callback that posts a completion
    /// message and wakes the poller — no thread ever blocks.
    Callback(ReplyFn),
}

impl Reply {
    fn deliver(self, result: Result<Recommendation, ServeError>) {
        match self {
            // A dropped receiver (client gone) is fine; ignore the error.
            Reply::Channel(tx) => {
                let _ = tx.send(result);
            }
            Reply::Callback(f) => f(result),
        }
    }
}

struct Job {
    req: DecodeRequest,
    /// Deferred session step; `None` when the submitter already
    /// resolved the tokens (the blocking-client path).
    prepare: Option<PrepareFn>,
    reply: Reply,
    enqueued: Instant,
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Decode worker threads. `0` is allowed (jobs queue but never
    /// drain) and exists for deterministic backpressure tests.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected with
    /// [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Maximum jobs a worker drains per batch.
    pub max_batch: usize,
    /// Decoding strategy used for ranking.
    pub strategy: Strategy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_cap: 64,
            max_batch: 8,
            strategy: Strategy::Beam { width: 5 },
        }
    }
}

/// The micro-batching decode engine. Dropping it (or calling
/// [`DecodeEngine::shutdown`]) disconnects the queue and joins the
/// workers after they finish jobs already accepted.
pub struct DecodeEngine {
    tx: Option<Sender<Job>>,
    /// Kept so the queue stays connected even with zero workers;
    /// workers clone their receivers from this one.
    rx: Receiver<Job>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl DecodeEngine {
    /// Start the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the OS error when a worker thread cannot be spawned;
    /// workers already started are joined by the returned engine's drop.
    pub fn start(
        cfg: EngineConfig,
        registry: Arc<ModelRegistry>,
        cache: Arc<RecCache>,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<Self> {
        let (tx, rx) = bounded::<Job>(cfg.queue_cap.max(1));
        let max_batch = cfg.max_batch.max(1);
        let workers = (0..cfg.workers)
            .map(|i| {
                let rx = rx.clone();
                let registry = Arc::clone(&registry);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let strategy = cfg.strategy;
                thread::Builder::new()
                    .name(format!("qrec-serve-decode-{i}"))
                    .spawn(move || {
                        qrec_obs::prof::register_thread(&format!("decode-{i}"));
                        // Each worker owns its RNG and encoder cache;
                        // decodes share the model immutably via the
                        // `*_cached` entry points.
                        let mut rng = StdRng::seed_from_u64(0x5eed ^ (i as u64));
                        let mut enc_cache = EncCache::new(8);
                        worker_loop(
                            &rx,
                            max_batch,
                            strategy,
                            &registry,
                            &cache,
                            &metrics,
                            &mut rng,
                            &mut enc_cache,
                        );
                    })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(DecodeEngine {
            tx: Some(tx),
            rx,
            workers,
        })
    }

    /// Submit a job without blocking. On success the returned channel
    /// yields the result once a worker serves the job.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full;
    /// [`ServeError::ShuttingDown`] when the engine has shut down.
    pub fn submit(
        &self,
        req: DecodeRequest,
    ) -> Result<Receiver<Result<Recommendation, ServeError>>, ServeError> {
        let tx = self.tx.as_ref().ok_or(ServeError::ShuttingDown)?;
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            req,
            prepare: None,
            reply: Reply::Channel(reply_tx),
            enqueued: Instant::now(),
        };
        match tx.try_send(job) {
            Ok(()) => Ok(reply_rx),
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submit a job without blocking and without waiting: `reply` runs
    /// on a worker thread with the result. When `prepare` is given, it
    /// resolves the input tokens on the worker first (and its error, if
    /// any, is what `reply` receives) — the event loop uses this to keep
    /// durable session writes off the poll thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is full;
    /// [`ServeError::ShuttingDown`] when the engine has shut down. On
    /// error `reply` is *not* invoked — the submitter still owns the
    /// failure.
    pub fn submit_callback(
        &self,
        req: DecodeRequest,
        prepare: Option<PrepareFn>,
        reply: ReplyFn,
    ) -> Result<(), ServeError> {
        let tx = self.tx.as_ref().ok_or(ServeError::ShuttingDown)?;
        let job = Job {
            req,
            prepare,
            reply: Reply::Callback(reply),
            enqueued: Instant::now(),
        };
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(ServeError::Overloaded),
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submit and wait for the result.
    pub fn recommend(&self, req: DecodeRequest) -> Result<Recommendation, ServeError> {
        let rx = self.submit(req)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Queue depth right now (approximate under concurrency).
    pub fn queued(&self) -> usize {
        self.rx.len()
    }

    /// Disconnect the queue and join the workers. Jobs already accepted
    /// are served; new submissions fail with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&mut self) {
        self.tx = None; // drop the sender: workers drain, then exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DecodeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Static strategy label recorded into flight traces.
fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Greedy => "greedy",
        Strategy::Beam { .. } => "beam",
        Strategy::DiverseBeam { .. } => "diverse_beam",
        Strategy::Sampling { .. } => "sampling",
    }
}

/// Beam width recorded into flight traces (0 for non-beam strategies).
fn beam_width(s: Strategy) -> u64 {
    match s {
        Strategy::Beam { width } | Strategy::DiverseBeam { width, .. } => width as u64,
        Strategy::Greedy | Strategy::Sampling { .. } => 0,
    }
}

#[allow(clippy::too_many_arguments)] // worker state is deliberately thread-owned, not shared
fn worker_loop(
    rx: &Receiver<Job>,
    max_batch: usize,
    strategy: Strategy,
    registry: &ModelRegistry,
    cache: &RecCache,
    metrics: &Metrics,
    rng: &mut StdRng,
    enc_cache: &mut EncCache,
) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        Metrics::bump(&metrics.batches);
        metrics.batched_jobs.add(batch.len() as u64);
        let batch_len = batch.len() as u64;

        // One registry read per batch: every job in the batch is served
        // by the same model at the same epoch. Tagging the encoder cache
        // with the epoch drops stale entries after a hot-swap.
        let (epoch, model) = registry.current();
        enc_cache.set_generation(epoch);
        for mut job in batch {
            // Re-install the request's trace on this worker thread so the
            // spans below (and the per-step attribution inside the model)
            // land in the right flight record.
            if let Some(ctx) = job.req.trace.take() {
                trace::install(ctx);
            }
            // Deferred session step (event-loop jobs): resolve the input
            // tokens here, where blocking on a WAL fsync is allowed.
            if let Some(prepare) = job.prepare.take() {
                match Span::in_span_with("session", &metrics.stage_session, prepare) {
                    Ok(tokens) => job.req.tokens = tokens,
                    Err(e) => {
                        trace::uninstall();
                        job.reply.deliver(Err(e));
                        continue;
                    }
                }
            }
            let wait = job.enqueued.elapsed();
            metrics.stage_batch_wait.record_duration(wait);
            trace::record_stage("batch_wait", job.enqueued, wait);
            trace::note_batch(batch_len, epoch);
            trace::note_strategy(strategy_name(strategy), beam_width(strategy));
            let key = CacheKey::new(epoch, &job.req.tokens);
            let lookup = Span::in_span_with("cache", &metrics.stage_cache, || cache.get(&key));
            let (ranked, cached) = match lookup {
                Some(hit) => {
                    Metrics::bump(&metrics.cache_hits);
                    (hit, true)
                }
                None => {
                    Metrics::bump(&metrics.cache_misses);
                    let ranked = Span::in_span_with("decode", &metrics.stage_decode, || {
                        model.ranked_fragments_for_tokens_cached(
                            &job.req.tokens,
                            strategy,
                            rng,
                            enc_cache,
                        )
                    });
                    cache.put(key, ranked.clone());
                    (ranked, false)
                }
            };
            trace::note_cache_hit(cached);
            let fragments = Span::in_span_with("rank", &metrics.stage_rank, || {
                ranked.map(|_, r| r.iter().take(job.req.n).cloned().collect())
            });
            metrics.latency.record(job.enqueued.elapsed());
            job.reply.deliver(Ok(Recommendation {
                fragments,
                epoch,
                cached,
                trace: trace::uninstall(),
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With zero workers the queue never drains, so capacity + 1
    /// submissions deterministically trip the typed backpressure error.
    #[test]
    fn full_queue_is_typed_overloaded() {
        // No model needed: jobs are never served. Build the engine parts
        // that don't require a trained Recommender.
        let (tx, rx) = bounded::<Job>(2);
        let engine = DecodeEngine {
            tx: Some(tx),
            rx,
            workers: Vec::new(),
        };
        let req = DecodeRequest {
            tokens: vec!["select".into()],
            n: 3,
            trace: None,
        };
        assert!(engine.submit(req.clone()).is_ok());
        assert!(engine.submit(req.clone()).is_ok());
        assert_eq!(engine.queued(), 2);
        match engine.submit(req) {
            Err(ServeError::Overloaded) => {}
            Err(e) => panic!("expected Overloaded, got error {e}"),
            Ok(_) => panic!("expected Overloaded, got Ok"),
        }
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let (tx, rx) = bounded::<Job>(2);
        let mut engine = DecodeEngine {
            tx: Some(tx),
            rx,
            workers: Vec::new(),
        };
        engine.shutdown();
        let req = DecodeRequest {
            tokens: vec![],
            n: 1,
            trace: None,
        };
        match engine.submit(req) {
            Err(ServeError::ShuttingDown) => {}
            _ => panic!("expected ShuttingDown"),
        }
    }
}
