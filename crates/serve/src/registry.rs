//! Model registry with atomic hot-swap.
//!
//! The serving model lives behind an `Arc`; workers take a clone of
//! that `Arc` per batch, so a [`ModelRegistry::swap`] — installing a
//! freshly trained [`Recommender`] — never blocks or invalidates
//! in-flight decodes. Requests that already hold the old `Arc` finish
//! against the old weights; the next batch picks up the new model. Each
//! swap bumps a monotonically increasing *epoch* that the
//! recommendation cache keys on, so stale entries die with their model.

use parking_lot::RwLock;
use qrec_core::Recommender;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared handle to the current serving model.
pub struct ModelRegistry {
    current: RwLock<Arc<Recommender>>,
    epoch: AtomicU64,
}

impl ModelRegistry {
    /// Register the initial model at epoch 1.
    pub fn new(model: Recommender) -> Self {
        ModelRegistry::with_epoch(model, 1)
    }

    /// Register the initial model at a specific epoch — used when the
    /// model zoo restores a persisted model across a restart, so the
    /// epoch sequence (and everything keyed on it, like the
    /// recommendation cache) continues instead of resetting to 1.
    pub fn with_epoch(model: Recommender, epoch: u64) -> Self {
        ModelRegistry {
            current: RwLock::new(Arc::new(model)),
            epoch: AtomicU64::new(epoch.max(1)),
        }
    }

    /// The current epoch and a clone of the serving model's `Arc`.
    ///
    /// The pair is read under one lock so the epoch always matches the
    /// returned model — callers can cache results keyed on the epoch.
    pub fn current(&self) -> (u64, Arc<Recommender>) {
        let g = self.current.read();
        (self.epoch.load(Ordering::Acquire), Arc::clone(&g))
    }

    /// Atomically replace the serving model and return the new epoch.
    ///
    /// In-flight requests holding the previous `Arc` are unaffected; the
    /// old model is dropped once the last of them finishes.
    pub fn swap(&self, model: Recommender) -> u64 {
        let mut g = self.current.write();
        *g = Arc::new(model);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The current epoch (1 after construction, +1 per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}
