//! A minimal in-process client for the JSON-lines protocol.
//!
//! One blocking TCP connection, one request/response pair per call —
//! enough for tests, the demo binary, and embedding the server in a
//! larger process without hand-rolling the wire format.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::error::ServeError;
use crate::protocol::{HistoryReply, Request, Response, StatsReply, TraceReply};

/// A connected client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // A response should never take minutes; bound reads so a dead
        // server surfaces as Io instead of hanging the caller.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let mut line = serde_json::to_string(req)
            .map_err(|e| ServeError::BadRequest(format!("encode: {e}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        let resp: Response = serde_json::from_str(reply.trim())
            .map_err(|e| ServeError::Io(format!("bad reply: {e}")))?;
        resp.into_result()
    }

    /// Record `sql` in `session` and fetch top-`n` fragments per kind.
    pub fn recommend(
        &mut self,
        session: &str,
        sql: &str,
        n: usize,
    ) -> Result<Response, ServeError> {
        self.call(&Request::recommend(session, sql, n))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.call(&Request::bare("PING")).map(|_| ())
    }

    /// Fetch the server's statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        let resp = self.call(&Request::bare("STATS"))?;
        resp.stats
            .ok_or_else(|| ServeError::Io("STATS reply missing payload".into()))
    }

    /// Fetch the server's flight recorder: up to `n` recent request
    /// traces plus the slowest-seen reservoir.
    pub fn trace(&mut self, n: usize) -> Result<TraceReply, ServeError> {
        let req = Request {
            verb: "TRACE".into(),
            n: Some(n as u64),
            ..Request::default()
        };
        let resp = self.call(&req)?;
        resp.trace
            .ok_or_else(|| ServeError::Io("TRACE reply missing payload".into()))
    }

    /// Fetch the server's Prometheus-style metrics exposition.
    pub fn dump(&mut self) -> Result<String, ServeError> {
        let resp = self.call(&Request::bare("DUMP"))?;
        resp.dump
            .ok_or_else(|| ServeError::Io("DUMP reply missing payload".into()))
    }

    /// Fetch the newest `n` sealed telemetry windows (oldest first).
    pub fn history(&mut self, n: usize) -> Result<HistoryReply, ServeError> {
        let req = Request {
            verb: "HISTORY".into(),
            n: Some(n as u64),
            ..Request::default()
        };
        let resp = self.call(&req)?;
        resp.history
            .ok_or_else(|| ServeError::Io("HISTORY reply missing payload".into()))
    }

    /// Fetch the sampling profiler's folded-stack report, top `n`
    /// stacks.
    pub fn prof(&mut self, n: usize) -> Result<qrec_obs::ProfReport, ServeError> {
        let req = Request {
            verb: "PROF".into(),
            n: Some(n as u64),
            ..Request::default()
        };
        let resp = self.call(&req)?;
        resp.prof
            .ok_or_else(|| ServeError::Io("PROF reply missing payload".into()))
    }

    /// Subscribe to the telemetry stream: the server acknowledges, then
    /// streams one response line per sealed window. Use
    /// [`Client::next_watch_frame`] to read them.
    pub fn watch(&mut self) -> Result<(), ServeError> {
        self.call(&Request::bare("WATCH")).map(|_| ())
    }

    /// Block (up to the read timeout) for the next streamed telemetry
    /// window after [`Client::watch`].
    pub fn next_watch_frame(&mut self) -> Result<crate::telemetry::WindowFrame, ServeError> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        let resp: Response = serde_json::from_str(reply.trim())
            .map_err(|e| ServeError::Io(format!("bad reply: {e}")))?;
        let resp = resp.into_result()?;
        resp.watch
            .ok_or_else(|| ServeError::Io("WATCH stream line missing payload".into()))
    }

    /// Ask the server to shut down gracefully. The server acknowledges
    /// before it begins stopping.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        self.call(&Request::bare("SHUTDOWN")).map(|_| ())
    }
}
