//! Hashed timer wheel for the event loop's idle-timeout bookkeeping.
//!
//! The loop needs thousands of coarse timers (one idle deadline per
//! connection) with O(1) insertion and O(slots) scans — a heap would
//! pay O(log n) per reschedule on every request. A classic hashed wheel
//! fits: deadlines hash into `slots` buckets of `tick` width, entries
//! further than one revolution away carry a `rounds` countdown, and
//! [`TimerWheel::advance`] drains every bucket the clock has passed.
//!
//! Expiry is a *candidate* signal, not a verdict: the wheel never
//! cancels. A connection that saw traffic since its timer was scheduled
//! simply gets re-examined by the caller (lazy revalidation against its
//! `last_activity`) and rescheduled — cheaper than tombstone management
//! at this granularity.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct TimerEntry {
    /// Opaque caller key (the loop packs a slab slot + generation).
    key: u64,
    /// Full wheel revolutions left before this entry fires.
    rounds: u32,
}

/// A fixed-size hashed timer wheel.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    tick: Duration,
    /// Bucket the cursor points at.
    cursor: usize,
    /// Wall time of the cursor's bucket boundary.
    cursor_time: Instant,
    /// Live entries across all buckets.
    len: usize,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick` wide, starting at `now`.
    pub fn new(tick: Duration, slots: usize, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            tick: if tick.is_zero() {
                Duration::from_millis(1)
            } else {
                tick
            },
            cursor: 0,
            cursor_time: now,
            len: 0,
        }
    }

    /// Number of scheduled (not yet fired) entries.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `key` to fire no earlier than `deadline`. Deadlines in
    /// the past fire on the next [`TimerWheel::advance`].
    pub fn schedule(&mut self, deadline: Instant, key: u64) {
        let ahead = deadline.saturating_duration_since(self.cursor_time);
        // Round up and land at least one tick ahead: the cursor's own
        // bucket has already been drained for this revolution.
        let ticks = (ahead.as_nanos().div_ceil(self.tick.as_nanos().max(1)) as u64).max(1);
        let n = self.slots.len() as u64;
        let slot = (self.cursor as u64 + ticks % n) as usize % self.slots.len();
        let rounds = (ticks / n) as u32;
        self.slots[slot].push(TimerEntry { key, rounds });
        self.len += 1;
    }

    /// Advance the wheel to `now`, appending every fired key to
    /// `expired`. Keys fire in bucket order; the caller revalidates each
    /// against current state before acting.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<u64>) {
        while now.saturating_duration_since(self.cursor_time) >= self.tick {
            self.cursor_time += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            let bucket = &mut self.slots[self.cursor];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].rounds == 0 {
                    expired.push(bucket.swap_remove(i).key);
                    self.len -= 1;
                } else {
                    bucket[i].rounds -= 1;
                    i += 1;
                }
            }
        }
    }

    /// Time until the nearest bucket holding any entry fires, measured
    /// from `now`. `None` when the wheel is empty. The bound is
    /// conservative (bucket granularity): sleeping this long never
    /// overshoots a deadline by more than one tick.
    pub fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let n = self.slots.len();
        // Entries with rounds > 0 in a near bucket fire revolutions
        // later, but waking early is only a cheap no-op scan; the scan
        // finds the nearest *bucket* with anything in it.
        let ahead = (1..=n)
            .find(|d| !self.slots[(self.cursor + d) % n].is_empty())
            .unwrap_or(n) as u32;
        let fire_at = self.cursor_time + self.tick * ahead;
        Some(fire_at.saturating_duration_since(now).max(Duration::ZERO))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_after_deadline_not_before() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 16, t0);
        w.schedule(t0 + ms(35), 7);
        let mut fired = Vec::new();
        w.advance(t0 + ms(30), &mut fired);
        assert!(fired.is_empty(), "30ms < 35ms deadline");
        w.advance(t0 + ms(50), &mut fired);
        assert_eq!(fired, vec![7], "fired within one tick of the deadline");
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 16, t0);
        w.schedule(t0, 1); // already due
        let mut fired = Vec::new();
        w.advance(t0 + ms(10), &mut fired);
        assert_eq!(fired, vec![1]);
    }

    #[test]
    fn entries_beyond_one_revolution_wait_their_rounds() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 4, t0); // revolution = 40ms
        w.schedule(t0 + ms(95), 42);
        let mut fired = Vec::new();
        // Two full revolutions pass without firing it early.
        w.advance(t0 + ms(80), &mut fired);
        assert!(fired.is_empty(), "95ms deadline survives 80ms of spinning");
        w.advance(t0 + ms(100), &mut fired);
        assert_eq!(fired, vec![42]);
    }

    #[test]
    fn many_timers_fire_exactly_once_each() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(5), 8, t0);
        for k in 0..1000u64 {
            w.schedule(t0 + ms(1 + k % 200), k);
        }
        assert_eq!(w.len(), 1000);
        let mut fired = Vec::new();
        // Advance in uneven strides past every deadline.
        for step in [37u64, 91, 140, 500] {
            w.advance(t0 + ms(step), &mut fired);
        }
        fired.sort_unstable();
        assert_eq!(fired.len(), 1000, "every timer fired");
        assert!(w.is_empty());
        fired.dedup();
        assert_eq!(fired.len(), 1000, "no timer fired twice");
    }

    #[test]
    fn next_wakeup_bounds_the_sleep() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 16, t0);
        assert_eq!(w.next_wakeup(t0), None, "empty wheel needs no wakeup");
        w.schedule(t0 + ms(55), 9);
        let sleep = w.next_wakeup(t0).expect("an entry is scheduled");
        assert!(
            sleep <= ms(70),
            "sleep covers the deadline within a tick, got {sleep:?}"
        );
        assert!(sleep >= ms(40), "does not fire ticks early, got {sleep:?}");
        // After the deadline has passed the wakeup clamps to zero.
        assert_eq!(w.next_wakeup(t0 + ms(200)), Some(Duration::ZERO));
    }

    #[test]
    fn rescheduling_pattern_survives_reuse() {
        // The loop's idiom: a fired key is revalidated and rescheduled.
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(10), 8, t0);
        w.schedule(t0 + ms(20), 5);
        let mut fired = Vec::new();
        w.advance(t0 + ms(30), &mut fired);
        assert_eq!(fired, vec![5]);
        fired.clear();
        w.schedule(t0 + ms(60), 5);
        w.advance(t0 + ms(45), &mut fired);
        assert!(fired.is_empty(), "rescheduled entry respects new deadline");
        w.advance(t0 + ms(75), &mut fired);
        assert_eq!(fired, vec![5]);
    }
}
