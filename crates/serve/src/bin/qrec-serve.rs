//! `qrec-serve` — train a demo recommender and serve it over TCP.
//!
//! ```text
//! qrec-serve [--addr HOST:PORT] [--seed N] [--profile tiny|sqlshare|sdss]
//!            [--data-dir PATH] [--quant f32|int8]
//!            [--frontend eventloop|threadpool] [--max-conns N] [--profiler]
//! ```
//!
//! Generates a synthetic workload, trains a small transformer
//! recommender, and serves it with the JSON-lines protocol until a
//! client sends `{"verb":"SHUTDOWN"}`.
//!
//! With `--data-dir`, sessions and hot-swapped models persist to a
//! WAL-backed store under that directory and survive restarts; if the
//! directory already holds a model zoo, the persisted model is served
//! instead of training a fresh one.

use qrec_core::{Arch, Recommender, RecommenderConfig, SeqMode};
use qrec_serve::{Frontend, QuantMode, Server, ServerConfig};
use qrec_workload::gen::{generate, WorkloadProfile};
use qrec_workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

struct Args {
    addr: String,
    seed: u64,
    profile: String,
    data_dir: Option<std::path::PathBuf>,
    quant: QuantMode,
    frontend: Frontend,
    max_conns: usize,
    profiler: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        seed: 1,
        profile: "tiny".into(),
        data_dir: None,
        quant: QuantMode::F32,
        frontend: Frontend::EventLoop,
        max_conns: ServerConfig::default().max_connections,
        profiler: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--profile" => args.profile = value("--profile")?,
            "--data-dir" => args.data_dir = Some(value("--data-dir")?.into()),
            "--quant" => args.quant = QuantMode::parse(&value("--quant")?)?,
            "--frontend" => args.frontend = Frontend::parse(&value("--frontend")?)?,
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("bad --max-conns: {e}"))?;
            }
            "--profiler" => args.profiler = true,
            "--help" | "-h" => {
                return Err("usage: qrec-serve [--addr HOST:PORT] [--seed N] \
                     [--profile tiny|sqlshare|sdss] [--data-dir PATH] \
                     [--quant f32|int8] [--frontend eventloop|threadpool] \
                     [--max-conns N] [--profiler]"
                    .into());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn profile(name: &str) -> Result<WorkloadProfile, String> {
    match name {
        "tiny" => Ok(WorkloadProfile::tiny()),
        "sqlshare" => Ok(WorkloadProfile::sqlshare()),
        "sdss" => Ok(WorkloadProfile::sdss()),
        other => Err(format!("unknown profile {other:?}")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let prof = match profile(&args.profile) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "generating {} workload (seed {})...",
        args.profile, args.seed
    );
    let (workload, _catalog) = generate(&prof, args.seed);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let split = Split::paper(workload.pairs(), &mut rng);

    eprintln!("training recommender...");
    let cfg = RecommenderConfig::test(Arch::Transformer, SeqMode::Aware);
    let (model, report) = match Recommender::try_train(&split, &workload, cfg) {
        Ok(ok) => ok,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "trained: {} epochs, final loss {:?}",
        report.epoch_losses.len(),
        report.final_train_loss()
    );

    let server_cfg = ServerConfig {
        data_dir: args.data_dir.clone(),
        quant: args.quant,
        frontend: args.frontend,
        max_connections: args.max_conns,
        profiler: args.profiler,
        ..ServerConfig::default()
    };
    let mut server = match Server::start(model, args.addr.as_str(), server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {} failed: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("serving on {}", server.local_addr());
    if args.quant == QuantMode::Int8 {
        eprintln!("int8 weight quantization on (quantized KV cache, top-5 agreement gated)");
    }
    if args.profiler {
        eprintln!(r#"sampling profiler on; fetch folded stacks with {{"verb":"PROF"}}"#);
    }
    if let Some(dir) = &args.data_dir {
        eprintln!(
            "durable store at {} (epoch {})",
            dir.display(),
            server.model_epoch()
        );
    }
    eprintln!(
        "compute pool: {} thread(s){}",
        qrec_tensor::pool::configured_threads(),
        if std::env::var_os("QREC_THREADS").is_some() {
            " (from QREC_THREADS)"
        } else {
            " (machine default; set QREC_THREADS to override)"
        }
    );
    eprintln!(r#"send {{"verb":"SHUTDOWN"}} to stop"#);

    server.wait_for_shutdown_request(None);
    eprintln!("shutdown requested; draining...");
    server.shutdown();
    eprintln!("bye");
    ExitCode::SUCCESS
}
