//! The JSON-lines wire protocol.
//!
//! Each request and each response is one JSON object per line over a
//! plain TCP stream — trivially scriptable (`nc`, `jq`) and framed by
//! `\n`, so no length prefixes or binary codecs are needed.
//!
//! Verbs:
//!
//! | verb        | fields                 | effect                                  |
//! |-------------|------------------------|-----------------------------------------|
//! | `RECOMMEND` | `session`, `sql`, `n`  | record the query, return top-n fragments |
//! | `STATS`     | —                      | metrics + store/cache/registry snapshot |
//! | `TRACE`     | `n`                    | last-n flight records + slowest reservoir |
//! | `DUMP`      | —                      | Prometheus-style text exposition        |
//! | `HISTORY`   | `n`                    | last-n sealed telemetry windows         |
//! | `WATCH`     | —                      | ack, then stream one line per sealed window (event-loop front end) |
//! | `PROF`      | `n`                    | top-n folded profiler stacks            |
//! | `PING`      | —                      | liveness check                          |
//! | `SHUTDOWN`  | —                      | acknowledge, then stop the server       |

use qrec_core::predict::PerKind;
use qrec_obs::{FlightRecord, ProfReport};
use serde::{Deserialize, Serialize};

use crate::error::ServeError;
use crate::metrics::MetricsSnapshot;
use crate::telemetry::WindowFrame;

/// Default number of fragments per kind when a request omits `n`.
pub const DEFAULT_N: usize = 5;

/// Default number of recent flight records a `TRACE` request returns.
pub const DEFAULT_TRACE_N: usize = 16;

/// Default number of folded stacks a `PROF` request returns.
pub const DEFAULT_PROF_N: usize = 32;

/// A client request: one JSON object per line.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// `RECOMMEND`, `STATS`, `TRACE`, `DUMP`, `HISTORY`, `WATCH`,
    /// `PROF`, `PING`, or `SHUTDOWN` (case-insensitive).
    pub verb: String,
    /// Session id (`RECOMMEND` only).
    pub session: Option<String>,
    /// The SQL statement the user just ran (`RECOMMEND` only).
    pub sql: Option<String>,
    /// Fragments per kind to return (`RECOMMEND`, defaults to
    /// [`DEFAULT_N`]), recent flight records to return (`TRACE`,
    /// defaults to [`DEFAULT_TRACE_N`]), telemetry windows to return
    /// (`HISTORY`, defaults to all), or folded stacks to return
    /// (`PROF`, defaults to [`DEFAULT_PROF_N`]).
    pub n: Option<u64>,
}

impl Request {
    /// A `RECOMMEND` request.
    pub fn recommend(session: &str, sql: &str, n: usize) -> Self {
        Request {
            verb: "RECOMMEND".into(),
            session: Some(session.to_string()),
            sql: Some(sql.to_string()),
            n: Some(n as u64),
        }
    }

    /// A bare request carrying only a verb.
    pub fn bare(verb: &str) -> Self {
        Request {
            verb: verb.into(),
            ..Request::default()
        }
    }
}

/// A server response: one JSON object per line, `ok` discriminating
/// success from failure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// True on success.
    pub ok: bool,
    /// Machine-readable error code (see [`ServeError::code`]).
    pub code: Option<String>,
    /// Human-readable error message.
    pub error: Option<String>,
    /// Ranked fragments per kind (`RECOMMEND`).
    pub fragments: Option<PerKind<Vec<String>>>,
    /// Model epoch that served the recommendation (`RECOMMEND`).
    pub epoch: Option<u64>,
    /// True when the recommendation came from the cache (`RECOMMEND`).
    pub cached: Option<bool>,
    /// Serving statistics (`STATS`).
    pub stats: Option<StatsReply>,
    /// Flight-recorder traces (`TRACE`); absent in responses from older
    /// servers.
    #[serde(default)]
    pub trace: Option<TraceReply>,
    /// Prometheus-style exposition text (`DUMP`); absent in responses
    /// from older servers.
    #[serde(default)]
    pub dump: Option<String>,
    /// Sealed telemetry windows (`HISTORY`); absent in responses from
    /// older servers.
    #[serde(default)]
    pub history: Option<HistoryReply>,
    /// One streamed telemetry window (`WATCH` stream lines); absent in
    /// responses from older servers.
    #[serde(default)]
    pub watch: Option<WindowFrame>,
    /// Folded profiler report (`PROF`); absent in responses from older
    /// servers.
    #[serde(default)]
    pub prof: Option<ProfReport>,
}

impl Response {
    /// A bare success (PING, SHUTDOWN acknowledgements).
    pub fn ok() -> Self {
        Response {
            ok: true,
            ..Response::default()
        }
    }

    /// A failure carrying the error's wire code and message.
    pub fn err(e: &ServeError) -> Self {
        Response {
            ok: false,
            code: Some(e.code().to_string()),
            error: Some(e.to_string()),
            ..Response::default()
        }
    }

    /// A successful recommendation.
    pub fn recommendation(fragments: PerKind<Vec<String>>, epoch: u64, cached: bool) -> Self {
        Response {
            ok: true,
            fragments: Some(fragments),
            epoch: Some(epoch),
            cached: Some(cached),
            ..Response::default()
        }
    }

    /// A successful `TRACE` response.
    pub fn traces(recent: Vec<FlightRecord>, slowest: Vec<FlightRecord>) -> Self {
        Response {
            ok: true,
            trace: Some(TraceReply { recent, slowest }),
            ..Response::default()
        }
    }

    /// A successful `DUMP` response.
    pub fn dump(text: String) -> Self {
        Response {
            ok: true,
            dump: Some(text),
            ..Response::default()
        }
    }

    /// A successful `HISTORY` response.
    pub fn history(windows: Vec<WindowFrame>) -> Self {
        Response {
            ok: true,
            history: Some(HistoryReply { windows }),
            ..Response::default()
        }
    }

    /// One `WATCH` stream line carrying a freshly sealed window.
    pub fn watch(frame: WindowFrame) -> Self {
        Response {
            ok: true,
            watch: Some(frame),
            ..Response::default()
        }
    }

    /// A successful `PROF` response.
    pub fn prof(report: ProfReport) -> Self {
        Response {
            ok: true,
            prof: Some(report),
            ..Response::default()
        }
    }

    /// Serialise to one JSON line (no trailing newline). A `Response`
    /// always serialises; the fallback mirrors the hand-written error
    /// line the connection handlers use for the same impossibility.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self)
            .unwrap_or_else(|_| r#"{"ok":false,"code":"io_error","error":"serialize"}"#.to_string())
    }

    /// Convert a wire response back into a typed result (client side).
    pub fn into_result(self) -> Result<Response, ServeError> {
        if self.ok {
            Ok(self)
        } else {
            let code = self.code.unwrap_or_default();
            let msg = self.error.unwrap_or_default();
            Err(ServeError::from_wire(&code, msg))
        }
    }
}

/// Payload of a `STATS` response.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Counter and histogram snapshot.
    pub metrics: MetricsSnapshot,
    /// Live sessions in the store.
    pub sessions: u64,
    /// Entries in the recommendation cache.
    pub cache_entries: u64,
    /// Current model epoch.
    pub model_epoch: u64,
    /// True when the serving model carries an int8 quantization sidecar
    /// (absent in replies from older servers — defaults to false).
    #[serde(default)]
    pub model_quantized: bool,
}

/// Payload of a `TRACE` response.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReply {
    /// Most recent completed request traces, newest first.
    pub recent: Vec<FlightRecord>,
    /// Slowest requests seen since process start, slowest first.
    pub slowest: Vec<FlightRecord>,
}

/// Payload of a `HISTORY` response.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistoryReply {
    /// Sealed telemetry windows, oldest first.
    pub windows: Vec<WindowFrame>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request::recommend("alice", "SELECT a FROM t", 3);
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn omitted_fields_default_to_none() {
        let back: Request = serde_json::from_str(r#"{"verb":"PING"}"#).unwrap();
        assert_eq!(back.verb, "PING");
        assert!(back.session.is_none() && back.sql.is_none() && back.n.is_none());
    }

    #[test]
    fn error_response_converts_to_typed_error() {
        let resp = Response::err(&ServeError::Overloaded);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        match back.into_result() {
            Err(ServeError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn responses_without_trace_fields_still_parse() {
        // Responses from servers that predate TRACE/DUMP omit both
        // fields; the serde defaults keep the client compatible.
        let back: Response = serde_json::from_str(r#"{"ok":true}"#).unwrap();
        assert!(back.ok && back.trace.is_none() && back.dump.is_none());
    }

    #[test]
    fn responses_without_telemetry_fields_still_parse() {
        // Responses from servers that predate HISTORY/WATCH/PROF omit
        // all three fields; the serde defaults keep the client
        // compatible.
        let back: Response = serde_json::from_str(r#"{"ok":true}"#).unwrap();
        assert!(back.history.is_none() && back.watch.is_none() && back.prof.is_none());
    }

    #[test]
    fn history_and_watch_responses_round_trip() {
        let frame = WindowFrame::default();
        let resp = Response::history(vec![frame.clone()]);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.history.expect("history payload").windows.len(), 1);

        let resp = Response::watch(frame);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.watch.is_some());
    }

    #[test]
    fn trace_response_round_trips() {
        let rec = FlightRecord {
            request_id: 9,
            total_us: 1200,
            strategy: "beam".to_string(),
            ..FlightRecord::default()
        };
        let resp = Response::traces(vec![rec.clone()], vec![rec]);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        let reply = back.trace.expect("trace payload");
        assert_eq!(reply.recent.len(), 1);
        assert_eq!(reply.recent[0].request_id, 9);
        assert_eq!(reply.slowest[0].strategy, "beam");
    }

    #[test]
    fn recommendation_response_round_trips() {
        let fragments = PerKind {
            table: vec!["t".to_string()],
            column: vec!["a".to_string(), "b".to_string()],
            function: vec![],
            literal: vec![],
        };
        let resp = Response::recommendation(fragments.clone(), 2, true);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.fragments.as_ref(), Some(&fragments));
        assert_eq!(back.epoch, Some(2));
        assert_eq!(back.cached, Some(true));
    }
}
