//! Incremental JSONL frame reassembly for the non-blocking front end.
//!
//! A non-blocking socket delivers the wire stream in arbitrary chunks:
//! half a line, three lines and a fragment, one byte. [`FrameBuf`]
//! accumulates those chunks and yields complete newline-terminated
//! frames, enforcing a hard per-line size cap so a client that never
//! sends `\n` cannot grow the buffer without bound.
//!
//! The scan cursor makes reassembly linear: bytes already searched for
//! `\n` are never rescanned, so a frame arriving one byte at a time
//! costs O(len) total, not O(len²).

/// Frame-level protocol violations. These are connection-fatal: after
/// an oversized line the stream offset is unrecoverable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A line exceeded the configured cap before its `\n` arrived.
    /// Carries the cap for the error message.
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(cap) => {
                write!(f, "request line exceeds the {cap}-byte frame cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Reassembles newline-delimited frames from arbitrary byte chunks.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Start of un-consumed bytes in `buf`.
    start: usize,
    /// Bytes in `buf[start..]` already scanned without finding `\n`.
    scanned: usize,
    /// Hard cap on a single line, excluding the terminator.
    max_line: usize,
}

impl FrameBuf {
    /// An empty buffer enforcing `max_line` bytes per frame.
    pub fn new(max_line: usize) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
            scanned: 0,
            max_line,
        }
    }

    /// Append a chunk read from the socket.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Compact before growing: once every complete frame has been
        // popped the consumed prefix is dead weight.
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pop the next complete frame (without its `\n`, trailing `\r`
    /// stripped), or `None` when no full line has arrived yet.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] once the pending partial line exceeds
    /// the cap; the connection should send a typed error and close.
    pub fn pop_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let pending = &self.buf[self.start..];
        match pending.iter().skip(self.scanned).position(|&b| b == b'\n') {
            Some(off) => {
                let end = self.scanned + off;
                let mut line = pending[..end].to_vec();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.start += end + 1;
                self.scanned = 0;
                if line.len() > self.max_line {
                    return Err(FrameError::Oversized(self.max_line));
                }
                Ok(Some(line))
            }
            None => {
                self.scanned = pending.len();
                if self.scanned > self.max_line {
                    return Err(FrameError::Oversized(self.max_line));
                }
                Ok(None)
            }
        }
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop_str(fb: &mut FrameBuf) -> Option<String> {
        fb.pop_frame()
            .expect("no frame error")
            .map(|v| String::from_utf8(v).expect("utf8"))
    }

    #[test]
    fn whole_line_in_one_chunk() {
        let mut fb = FrameBuf::new(1024);
        fb.feed(b"{\"verb\":\"PING\"}\n");
        assert_eq!(pop_str(&mut fb).as_deref(), Some("{\"verb\":\"PING\"}"));
        assert_eq!(pop_str(&mut fb), None);
        assert_eq!(fb.pending_bytes(), 0);
    }

    /// The tentpole robustness case: a frame split at *every* byte
    /// boundary must reassemble to the identical line.
    #[test]
    fn split_at_every_byte_boundary() {
        let line = b"{\"verb\":\"RECOMMEND\",\"session\":\"alice\",\"sql\":\"SELECT a FROM t\"}\n";
        for split in 0..line.len() {
            let mut fb = FrameBuf::new(4096);
            fb.feed(&line[..split]);
            assert_eq!(
                pop_str(&mut fb),
                None,
                "no frame before the newline (split {split})"
            );
            fb.feed(&line[split..]);
            assert_eq!(
                pop_str(&mut fb).as_deref(),
                Some(std::str::from_utf8(&line[..line.len() - 1]).unwrap()),
                "frame reassembles across split {split}"
            );
            assert_eq!(pop_str(&mut fb), None);
        }
    }

    /// One-byte-at-a-time delivery (pathological slow client).
    #[test]
    fn byte_by_byte_delivery() {
        let line = b"{\"verb\":\"STATS\"}\n";
        let mut fb = FrameBuf::new(1024);
        for (i, b) in line.iter().enumerate() {
            fb.feed(std::slice::from_ref(b));
            let got = pop_str(&mut fb);
            if i + 1 == line.len() {
                assert_eq!(got.as_deref(), Some("{\"verb\":\"STATS\"}"));
            } else {
                assert_eq!(got, None, "byte {i} completes no frame");
            }
        }
    }

    /// Pipelining: several requests arriving in one read are all
    /// yielded, in order.
    #[test]
    fn pipelined_frames_in_one_chunk() {
        let mut fb = FrameBuf::new(1024);
        fb.feed(b"{\"verb\":\"PING\"}\n{\"verb\":\"STATS\"}\n{\"verb\":\"TRACE\"}\npartial");
        assert_eq!(pop_str(&mut fb).as_deref(), Some("{\"verb\":\"PING\"}"));
        assert_eq!(pop_str(&mut fb).as_deref(), Some("{\"verb\":\"STATS\"}"));
        assert_eq!(pop_str(&mut fb).as_deref(), Some("{\"verb\":\"TRACE\"}"));
        assert_eq!(pop_str(&mut fb), None, "trailing partial stays buffered");
        fb.feed(b" tail\n");
        assert_eq!(pop_str(&mut fb).as_deref(), Some("partial tail"));
    }

    #[test]
    fn crlf_terminator_is_stripped() {
        let mut fb = FrameBuf::new(1024);
        fb.feed(b"{\"verb\":\"PING\"}\r\n");
        assert_eq!(pop_str(&mut fb).as_deref(), Some("{\"verb\":\"PING\"}"));
    }

    #[test]
    fn empty_lines_pop_as_empty_frames() {
        let mut fb = FrameBuf::new(1024);
        fb.feed(b"\n\n{\"verb\":\"PING\"}\n");
        assert_eq!(pop_str(&mut fb).as_deref(), Some(""));
        assert_eq!(pop_str(&mut fb).as_deref(), Some(""));
        assert_eq!(pop_str(&mut fb).as_deref(), Some("{\"verb\":\"PING\"}"));
    }

    /// An unterminated line crossing the cap errors *before* the
    /// newline ever arrives — the buffer cannot be grown unboundedly.
    #[test]
    fn oversized_partial_line_is_rejected_early() {
        let mut fb = FrameBuf::new(64);
        fb.feed(&[b'x'; 65]);
        assert_eq!(fb.pop_frame(), Err(FrameError::Oversized(64)));
    }

    /// A terminated line over the cap is also rejected (it may arrive
    /// within one chunk, skipping the partial-line check).
    #[test]
    fn oversized_complete_line_is_rejected() {
        let mut fb = FrameBuf::new(64);
        let mut chunk = vec![b'y'; 80];
        chunk.push(b'\n');
        fb.feed(&chunk);
        assert_eq!(fb.pop_frame(), Err(FrameError::Oversized(64)));
    }

    #[test]
    fn line_exactly_at_cap_is_accepted() {
        let mut fb = FrameBuf::new(8);
        fb.feed(b"12345678\n");
        assert_eq!(pop_str(&mut fb).as_deref(), Some("12345678"));
    }

    /// The scan cursor never rescans: feeding a long partial line in
    /// many chunks stays linear. (Behavioural proxy: correctness with
    /// interleaved pops at every chunk.)
    #[test]
    fn incremental_scan_with_interleaved_pops() {
        let mut fb = FrameBuf::new(1 << 20);
        let chunk = [b'a'; 997];
        for _ in 0..64 {
            fb.feed(&chunk);
            assert_eq!(fb.pop_frame(), Ok(None));
        }
        fb.feed(b"\n");
        let line = fb.pop_frame().unwrap().unwrap();
        assert_eq!(line.len(), 64 * 997);
        assert!(line.iter().all(|&b| b == b'a'));
    }

    /// Compaction reclaims consumed prefixes so a long-lived connection
    /// does not accumulate dead bytes.
    #[test]
    fn consumed_prefix_is_reclaimed() {
        let mut fb = FrameBuf::new(1024);
        for _ in 0..1000 {
            fb.feed(b"{\"verb\":\"PING\"}\n");
            assert!(pop_str(&mut fb).is_some());
        }
        assert!(
            fb.buf.capacity() < 64 * 1024,
            "buffer stays small across 1000 frames, got {}",
            fb.buf.capacity()
        );
    }
}
