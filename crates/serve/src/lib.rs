//! # qrec-serve — online serving for the query recommender
//!
//! The paper targets *interactive* data exploration: SQL Share and SDSS
//! analysts get next-query suggestions while they work. This crate adds
//! the missing online half of the reproduction — a serving layer that
//! keeps trained [`Recommender`](qrec_core::Recommender)s hot behind a
//! small JSON-lines-over-TCP protocol:
//!
//! * [`session_store`] — sharded, RwLock-per-shard store of live
//!   [`SessionContext`](qrec_core::SessionContext)s with TTL eviction.
//! * [`batcher`] — micro-batching decode engine: a bounded queue feeds
//!   worker threads that drain up to `max_batch` jobs per tick; a full
//!   queue is typed backpressure ([`ServeError::Overloaded`]).
//! * [`cache`] — LRU cache keyed on *(model epoch, normalized input
//!   window)*, so repeated windows skip the decoder entirely.
//! * [`registry`] — atomic hot-swap of the serving model; in-flight
//!   requests finish on the model they started with.
//! * [`server`] / [`client`] / [`protocol`] — the TCP front end
//!   (`RECOMMEND` / `STATS` / `PING` / `SHUTDOWN`), graceful shutdown,
//!   and an in-process client. Two interchangeable front ends serve the
//!   same protocol: a readiness-based event loop (the default — one
//!   thread, thousands of connections; see `eventloop` and DESIGN.md
//!   §16) and the original connection thread pool (`threaded`).
//! * [`framing`] — incremental JSONL frame reassembly for non-blocking
//!   reads: partial lines accumulate across reads, oversized lines are
//!   typed errors instead of unbounded buffers.
//! * [`metrics`] — atomic counters and fixed-bucket latency histograms
//!   behind the `STATS` verb.
//! * [`telemetry`] — the time-series engine (DESIGN.md §17): sliding
//!   windows of metric deltas, a SpaceSaving sketch of query-template
//!   ids, and drift scores per sealed window, served via `HISTORY`
//!   (the in-memory ring, durable across restarts through a capped
//!   telemetry log), `WATCH` (one streamed line per sealed window on
//!   the event-loop front end), and `PROF` (sampling profiler report).
//! * [`zoo`] — versioned on-disk model persistence: each hot-swap writes
//!   a checksummed weight blob plus an atomically-updated `CURRENT`
//!   pointer, so a restarted server resumes serving the exact model (and
//!   epoch) it last swapped in. Together with the write-through durable
//!   session tier in [`session_store`] (backed by `qrec-store`'s WAL +
//!   sorted runs), a SIGKILL loses no acknowledged session write.
//!
//! ```no_run
//! use qrec_serve::{Client, Server, ServerConfig};
//! # fn model() -> qrec_core::Recommender { unimplemented!() }
//! let server = Server::start(model(), "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.recommend("alice", "SELECT name FROM star", 5).unwrap();
//! println!("suggested tables: {:?}", reply.fragments.unwrap().table);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batcher;
pub mod cache;
pub mod client;
pub mod error;
mod eventloop;
pub mod framing;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod session_store;
pub mod telemetry;
mod threaded;
mod timer;
pub mod zoo;

pub use batcher::{DecodeEngine, DecodeRequest, EngineConfig, Recommendation};
pub use cache::{CacheKey, RecCache};
pub use client::Client;
pub use error::ServeError;
pub use framing::{FrameBuf, FrameError};
pub use metrics::{ComputeSnapshot, FrontendSnapshot, Metrics, MetricsSnapshot, WindowSummary};
pub use protocol::{HistoryReply, Request, Response, StatsReply};
pub use registry::ModelRegistry;
pub use server::{Frontend, QuantMode, Server, ServerConfig};
pub use session_store::{SessionStore, SweeperHandle};
pub use telemetry::{Telemetry, WindowFrame};
pub use zoo::ModelZoo;
