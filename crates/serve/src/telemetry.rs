//! Serve-side telemetry engine: windows, sketch, drift, history.
//!
//! This module ties the qrec-obs time-series primitives to the serving
//! layer (DESIGN.md §17). One [`Telemetry`] instance per server:
//!
//! * a [`qrec_obs::WindowSet`] tracks the hot request counters and
//!   latency histograms and converts their lifetime aggregates into
//!   per-window deltas when a window seals;
//! * a [`qrec_obs::TemplateSketch`] counts query-template ids observed
//!   on the request path ([`Telemetry::note_template`] is wired into
//!   the session store, so both front ends feed it);
//! * a [`qrec_obs::DriftDetector`] scores each sealed window against
//!   its predecessor and publishes the scores as gauges.
//!
//! Sealing produces a [`WindowFrame`] — the single wire shape used by
//! the `HISTORY` verb, the `WATCH` stream, and the durable telemetry
//! log (one JSON frame per sealed window). The recording hot path never
//! touches any of this beyond the sketch's fixed-slot scan: windowing
//! is delta-sampling at seal time, not per-event bookkeeping.
//!
//! Time is injected: the ticker thread calls [`Telemetry::tick`] with
//! `Instant::now()`, while tests drive [`Telemetry::seal_at`] directly
//! with a fake clock — no sleeps needed to test drift detection.

use crate::metrics::{Metrics, WindowSummary};
use parking_lot::Mutex;
use qrec_obs::{DriftDetector, DriftScore, SketchEntry, TemplateSketch, WindowBucket, WindowSet};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Heavy-hitter slots per window; templates beyond the top ~64 per
/// window are absorbed into eviction error bounds.
pub const SKETCH_SLOTS: usize = 64;

/// One sealed telemetry window: metric deltas, the template heavy
/// hitters, and the drift scores versus the previous window. This is
/// the `HISTORY` item, the `WATCH` stream payload, and the on-disk
/// telemetry-log frame.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowFrame {
    /// Per-window counter and histogram deltas.
    pub window: WindowBucket,
    /// Template heavy hitters observed inside the window, count
    /// descending.
    pub templates: Vec<SketchEntry>,
    /// Total template observations in the window, including ones
    /// absorbed into evicted sketch slots (absent in frames from
    /// servers that predate the field).
    #[serde(default)]
    pub template_total: u64,
    /// Drift scores of this window versus its predecessor.
    #[serde(default)]
    pub drift: DriftScore,
}

/// Mutable tail state: drift detector, history ring, and the ticker
/// deadline — everything the seal path updates under one lock.
struct Scored {
    drift: DriftDetector,
    history: VecDeque<WindowFrame>,
    next_due: Instant,
}

/// The per-server telemetry engine. Cheap to share (`Arc`); all methods
/// take `&self`.
pub struct Telemetry {
    windows: WindowSet,
    sketch: TemplateSketch,
    width: Duration,
    capacity: usize,
    scored: Mutex<Scored>,
}

impl Telemetry {
    /// Build the engine over `metrics`, tracking the request-path
    /// counters and latency histograms. `width` is clamped to at least
    /// one millisecond and `buckets` to at least one window.
    pub fn new(metrics: &Metrics, width: Duration, buckets: usize) -> Telemetry {
        let width = width.max(Duration::from_millis(1));
        let capacity = buckets.max(1);
        let windows = WindowSet::new(capacity);
        for counter in [
            &metrics.requests,
            &metrics.recommends,
            &metrics.cache_hits,
            &metrics.cache_misses,
            &metrics.overloaded,
            &metrics.errors,
        ] {
            windows.track_counter(Arc::clone(counter));
        }
        windows.track_histogram(metrics.latency.handle());
        windows.track_histogram(Arc::clone(&metrics.stage_decode));
        Telemetry {
            windows,
            sketch: TemplateSketch::new(SKETCH_SLOTS),
            width,
            capacity,
            scored: Mutex::new(Scored {
                drift: DriftDetector::new(qrec_obs::global()),
                history: VecDeque::with_capacity(capacity),
                next_due: Instant::now() + width,
            }),
        }
    }

    /// Count one query-template occurrence on the request path. A
    /// fixed-slot sketch scan under a short mutex — no allocation — and
    /// a no-op when observability is globally disabled.
    pub fn note_template(&self, id: u64) {
        if qrec_obs::enabled() {
            self.sketch.observe(id);
        }
    }

    /// Seal the current window if its deadline has passed, returning
    /// the new frame. Called by the ticker thread; the deadline check
    /// keeps it idempotent at any call frequency.
    pub fn tick(&self, now: Instant) -> Option<WindowFrame> {
        {
            let mut scored = self.scored.lock();
            if now < scored.next_due {
                return None;
            }
            scored.next_due = now + self.width;
        }
        Some(self.seal_at(unix_ms_now()))
    }

    /// Seal a window at the given wall-clock stamp unconditionally:
    /// drain the sketch, convert counter aggregates to deltas, score
    /// drift, and push the frame onto the history ring. Public so tests
    /// can drive window boundaries with a fake clock.
    pub fn seal_at(&self, unix_ms: u64) -> WindowFrame {
        let (templates, template_total) = self.sketch.drain();
        let window = self.windows.seal(unix_ms);
        let deltas: Vec<(String, u64)> = window
            .counters
            .iter()
            .map(|c| (c.name.clone(), c.delta))
            .collect();
        let mut scored = self.scored.lock();
        let drift = scored.drift.advance(templates.clone(), &deltas);
        let frame = WindowFrame {
            window,
            templates,
            template_total,
            drift,
        };
        if scored.history.len() >= self.capacity {
            scored.history.pop_front();
        }
        scored.history.push_back(frame.clone());
        frame
    }

    /// The newest `n` sealed frames, oldest first.
    pub fn history(&self, n: usize) -> Vec<WindowFrame> {
        let scored = self.scored.lock();
        let skip = scored.history.len().saturating_sub(n);
        scored.history.iter().skip(skip).cloned().collect()
    }

    /// Every sealed frame with a window sequence strictly greater than
    /// `after` (`None` means all), oldest first. The event loop's
    /// `WATCH` broadcast cursors through history with this.
    pub fn frames_after(&self, after: Option<u64>) -> Vec<WindowFrame> {
        let scored = self.scored.lock();
        scored
            .history
            .iter()
            .filter(|f| after.is_none_or(|seq| f.window.seq > seq))
            .cloned()
            .collect()
    }

    /// Sequence number of the newest sealed window, if any.
    pub fn latest_seq(&self) -> Option<u64> {
        self.scored.lock().history.back().map(|f| f.window.seq)
    }

    /// Drift scores of the most recently sealed window.
    pub fn latest_drift(&self) -> DriftScore {
        self.scored.lock().drift.latest()
    }

    /// Rebuild the history ring from frames replayed out of the durable
    /// telemetry log (oldest first); undecodable frames are skipped —
    /// telemetry must never block a boot. Returns how many frames were
    /// restored.
    pub fn restore(&self, raw: &[Vec<u8>]) -> usize {
        let frames: Vec<WindowFrame> = raw
            .iter()
            .filter_map(|bytes| serde_json::from_slice(bytes).ok())
            .collect();
        if frames.is_empty() {
            return 0;
        }
        self.windows
            .restore(frames.iter().map(|f| f.window.clone()).collect());
        let mut scored = self.scored.lock();
        let restored = frames.len();
        for frame in frames {
            if scored.history.len() >= self.capacity {
                scored.history.pop_front();
            }
            scored.history.push_back(frame);
        }
        restored
    }

    /// Configured window width.
    pub fn width(&self) -> Duration {
        self.width
    }

    /// The `STATS` summary: configuration plus the newest window's
    /// identity and request delta.
    pub fn summary(&self) -> WindowSummary {
        let scored = self.scored.lock();
        let last = scored.history.back();
        WindowSummary {
            width_ms: self.width.as_millis() as u64,
            capacity: self.capacity as u64,
            sealed: scored.history.len() as u64,
            last_seq: last.map(|f| f.window.seq).unwrap_or(0),
            last_unix_ms: last.map(|f| f.window.unix_ms).unwrap_or(0),
            last_requests: last
                .and_then(|f| f.window.delta("serve.requests"))
                .unwrap_or(0),
        }
    }
}

/// Milliseconds since the Unix epoch, saturating at zero on a
/// pre-epoch clock.
fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> (Metrics, Telemetry) {
        let metrics = Metrics::new();
        let telemetry = Telemetry::new(&metrics, Duration::from_secs(10), 4);
        (metrics, telemetry)
    }

    #[test]
    fn seal_captures_deltas_and_templates() {
        let (metrics, t) = engine();
        Metrics::bump(&metrics.requests);
        Metrics::bump(&metrics.requests);
        t.note_template(7);
        t.note_template(7);
        t.note_template(9);
        let frame = t.seal_at(1_000);
        assert_eq!(frame.window.delta("serve.requests"), Some(2));
        assert_eq!(frame.template_total, 3);
        assert_eq!(frame.templates[0].key, 7);
        // The next window starts from a clean slate.
        let frame2 = t.seal_at(2_000);
        assert_eq!(frame2.window.delta("serve.requests"), Some(0));
        assert!(frame2.templates.is_empty());
        assert!(frame2.window.seq > frame.window.seq);
    }

    #[test]
    fn history_ring_is_capped_and_ordered() {
        let (_metrics, t) = engine();
        for i in 0..6u64 {
            t.seal_at(i * 1_000);
        }
        let all = t.history(usize::MAX);
        assert_eq!(all.len(), 4, "ring capped at the configured buckets");
        assert!(all.windows(2).all(|w| w[0].window.seq < w[1].window.seq));
        assert_eq!(t.history(2).len(), 2);
        assert_eq!(t.latest_seq(), Some(all[3].window.seq));
    }

    #[test]
    fn frames_after_cursors_through_history() {
        let (_metrics, t) = engine();
        let a = t.seal_at(1_000);
        let b = t.seal_at(2_000);
        assert_eq!(t.frames_after(None).len(), 2);
        let after_a = t.frames_after(Some(a.window.seq));
        assert_eq!(after_a.len(), 1);
        assert_eq!(after_a[0].window.seq, b.window.seq);
        assert!(t.frames_after(Some(b.window.seq)).is_empty());
    }

    #[test]
    fn tick_respects_the_window_deadline() {
        let metrics = Metrics::new();
        let t = Telemetry::new(&metrics, Duration::from_secs(3600), 4);
        assert!(t.tick(Instant::now()).is_none(), "deadline far away");
        let t = Telemetry::new(&metrics, Duration::from_millis(1), 4);
        let later = Instant::now() + Duration::from_millis(50);
        assert!(t.tick(later).is_some(), "past-deadline tick seals");
        assert!(t.tick(later).is_none(), "deadline advances after a seal");
    }

    #[test]
    fn restore_rebuilds_history_and_sequence() {
        let (_metrics, t) = engine();
        t.note_template(5);
        t.seal_at(1_000);
        t.seal_at(2_000);
        let raw: Vec<Vec<u8>> = t
            .history(usize::MAX)
            .iter()
            .map(|f| serde_json::to_vec(f).expect("serialise"))
            .collect();

        let (_m2, fresh) = engine();
        assert_eq!(fresh.restore(&raw), 2);
        assert_eq!(fresh.history(usize::MAX).len(), 2);
        // New windows continue after the restored sequence.
        let restored_seq = fresh.latest_seq().expect("restored");
        let next = fresh.seal_at(3_000);
        assert!(next.window.seq > restored_seq);
        // Garbage frames are skipped, not fatal.
        let (_m3, dirty) = engine();
        assert_eq!(dirty.restore(&[b"not json".to_vec()]), 0);
    }

    #[test]
    fn summary_reports_the_newest_window() {
        let (metrics, t) = engine();
        let empty = t.summary();
        assert_eq!(empty.sealed, 0);
        assert_eq!(empty.width_ms, 10_000);
        assert_eq!(empty.capacity, 4);
        Metrics::bump(&metrics.requests);
        let frame = t.seal_at(5_000);
        let s = t.summary();
        assert_eq!(s.sealed, 1);
        assert_eq!(s.last_seq, frame.window.seq);
        assert_eq!(s.last_unix_ms, 5_000);
        assert_eq!(s.last_requests, 1);
    }

    #[test]
    fn frame_round_trips_through_serde_and_tolerates_old_shapes() {
        let (_metrics, t) = engine();
        t.note_template(3);
        let frame = t.seal_at(1_234);
        let json = serde_json::to_string(&frame).expect("serialise");
        let back: WindowFrame = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, frame);
        // Frames without the newer fields still parse.
        let old =
            r#"{"window":{"seq":1,"unix_ms":9,"counters":[],"histograms":[]},"templates":[]}"#;
        let back: WindowFrame = serde_json::from_str(old).expect("old frame parses");
        assert_eq!(back.template_total, 0);
        assert_eq!(back.drift, DriftScore::default());
    }
}
