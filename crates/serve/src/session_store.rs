//! Sharded concurrent session store with TTL eviction and an optional
//! durable write-through tier.
//!
//! Live analyst sessions ([`SessionContext`]) are keyed by a client
//! supplied session id. The map is split into `N` shards, each behind
//! its own `parking_lot::RwLock`, so concurrent requests for different
//! sessions rarely contend; a session id is routed to its shard by an
//! FNV-1a hash. A background sweeper thread periodically evicts
//! sessions idle longer than the configured TTL — abandoned sessions
//! would otherwise accumulate without bound under real workloads.
//!
//! With a durable tier ([`SessionStore::with_durable`]) every push is
//! **write-through**: the session's raw SQL history is persisted to the
//! [`qrec_store::Store`] *before* the in-memory context is updated, so
//! a request is acknowledged only once its session update is WAL'd.
//! TTL eviction then becomes *tiering*: the sweeper drops the memory
//! copy but the disk record remains, and a later request for the same
//! id rehydrates the context by re-parsing the persisted statements
//! (parsing is deterministic, so the rebuilt window matches the
//! original). A `SIGKILL`ed server therefore comes back with its
//! sessions intact — the restart integration test pins this end to end.

use parking_lot::RwLock;
use qrec_core::SessionContext;
use qrec_obs::{Histogram, Span};
use qrec_store::Store;
use qrec_workload::QueryRecord;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use crate::error::ServeError;

/// Cap on persisted statements per session: enough to rebuild any
/// realistic model window (the paper serves window 1–3) while bounding
/// the per-session disk record.
const MAX_PERSISTED_QUERIES: usize = 64;

/// Sweep duration histogram, registered lazily: eviction scans hold
/// every shard's write lock in turn, so their cost is worth watching.
fn sweep_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qrec_obs::global().histogram_log2("serve.sweep_us"))
}

struct Entry {
    ctx: SessionContext,
    /// The raw statements backing `ctx`, in arrival order — the durable
    /// record (re-parsed on rehydration). Empty when no durable tier is
    /// configured.
    raws: Vec<String>,
    last_seen: Instant,
}

/// Concurrent map of live sessions.
pub struct SessionStore {
    shards: Box<[RwLock<HashMap<String, Entry>>]>,
    window: usize,
    ttl: Duration,
    evicted: AtomicU64,
    durable: Option<Arc<Store>>,
    rehydrated: AtomicU64,
    /// Observer for the template id of every successfully parsed push
    /// (the telemetry sketch in serve); set once at server start.
    template_sink: OnceLock<Box<dyn Fn(u64) + Send + Sync>>,
}

/// FNV-1a, stable across runs (unlike `DefaultHasher`'s random keys),
/// so shard routing is deterministic and testable.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SessionStore {
    /// A store with `shards` lock shards (minimum 1), per-session model
    /// input window `window`, and idle eviction after `ttl`.
    pub fn new(shards: usize, window: usize, ttl: Duration) -> Self {
        SessionStore::build(shards, window, ttl, None)
    }

    /// A store with a durable write-through tier: pushes persist before
    /// they are acknowledged, TTL eviction keeps the disk copy, and
    /// misses rehydrate from it.
    pub fn with_durable(shards: usize, window: usize, ttl: Duration, store: Arc<Store>) -> Self {
        SessionStore::build(shards, window, ttl, Some(store))
    }

    fn build(shards: usize, window: usize, ttl: Duration, durable: Option<Arc<Store>>) -> Self {
        let n = shards.max(1);
        let shards = (0..n)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SessionStore {
            shards,
            window,
            ttl,
            evicted: AtomicU64::new(0),
            durable,
            rehydrated: AtomicU64::new(0),
            template_sink: OnceLock::new(),
        }
    }

    /// Install the template observer called with the template id of
    /// every successfully parsed push. One shot: later calls are
    /// ignored, so a sink cannot be swapped out from under live
    /// request threads.
    pub fn set_template_sink(&self, sink: impl Fn(u64) + Send + Sync + 'static) {
        let _ = self.template_sink.set(Box::new(sink));
    }

    fn shard(&self, id: &str) -> &RwLock<HashMap<String, Entry>> {
        let idx = (fnv1a(id) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// The durable key of a session id.
    fn durable_key(id: &str) -> Vec<u8> {
        let mut key = Vec::with_capacity(8 + id.len());
        key.extend_from_slice(b"session/");
        key.extend_from_slice(id.as_bytes());
        key
    }

    /// True when the session is resident in memory.
    fn resident(&self, id: &str) -> bool {
        self.shard(id).read().contains_key(id)
    }

    /// Load a session's persisted statement list, if any.
    fn load_raws(&self, id: &str) -> Result<Option<Vec<String>>, ServeError> {
        let Some(store) = &self.durable else {
            return Ok(None);
        };
        let Some(bytes) = store
            .get(&SessionStore::durable_key(id))
            .map_err(|e| ServeError::Store(e.to_string()))?
        else {
            return Ok(None);
        };
        let raws: Vec<String> = serde_json::from_slice(&bytes)
            .map_err(|e| ServeError::Store(format!("persisted session record invalid: {e}")))?;
        Ok(Some(raws))
    }

    /// Rebuild a session context from its persisted statements.
    /// Statements are re-parsed; parsing is deterministic, so the
    /// rebuilt window matches what the original process served.
    fn rehydrate(&self, id: &str) -> Result<Option<(SessionContext, Vec<String>)>, ServeError> {
        let Some(raws) = self.load_raws(id)? else {
            return Ok(None);
        };
        let mut ctx = SessionContext::new(self.window);
        let mut kept = Vec::with_capacity(raws.len());
        for sql in raws {
            // Statements were valid when persisted; skip (rather than
            // fail on) any the parser no longer accepts so one stale
            // record cannot brick a session.
            if let Ok(record) = QueryRecord::new(&sql) {
                ctx.push(record);
                kept.push(sql);
            }
        }
        self.rehydrated.fetch_add(1, Ordering::Relaxed);
        Ok(Some((ctx, kept)))
    }

    /// Append a SQL statement to a session, creating the session on
    /// first use. Parsing happens *outside* the shard lock, so a slow or
    /// invalid statement never blocks other sessions on this shard.
    ///
    /// With a durable tier: an absent session is first rehydrated from
    /// disk, and the updated statement list is persisted (and WAL-
    /// acknowledged) *before* the in-memory context changes — a
    /// [`ServeError::Store`] means nothing was applied.
    ///
    /// Returns the session's windowed model-input tokens after the push.
    pub fn push_sql(&self, id: &str, sql: &str) -> Result<Vec<String>, ServeError> {
        let record = QueryRecord::new(sql).map_err(|e| ServeError::Sql(e.to_string()))?;
        if let Some(sink) = self.template_sink.get() {
            sink(record.template.id());
        }
        // Tiered miss: rebuild the context from disk before taking the
        // shard lock, so re-parsing history never blocks the shard.
        let mut resurrected = if self.durable.is_some() && !self.resident(id) {
            self.rehydrate(id)?
        } else {
            None
        };
        let mut shard = self.shard(id).write();
        let entry = match shard.entry(id.to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let (ctx, raws) = match resurrected.take() {
                    Some(pair) => pair,
                    // Evicted between the residency probe and the lock:
                    // the disk copy is authoritative, fetch it now.
                    None => self
                        .rehydrate(id)?
                        .unwrap_or_else(|| (SessionContext::new(self.window), Vec::new())),
                };
                v.insert(Entry {
                    ctx,
                    raws,
                    last_seen: Instant::now(),
                })
            }
        };
        if let Some(store) = &self.durable {
            let mut raws = entry.raws.clone();
            raws.push(sql.to_string());
            if raws.len() > MAX_PERSISTED_QUERIES {
                let excess = raws.len() - MAX_PERSISTED_QUERIES;
                raws.drain(..excess);
            }
            let bytes = serde_json::to_vec(&raws)
                .map_err(|e| ServeError::Store(format!("serialise session record: {e}")))?;
            store
                .put(&SessionStore::durable_key(id), &bytes)
                .map_err(|e| ServeError::Store(e.to_string()))?;
            entry.raws = raws;
        }
        entry.ctx.push(record);
        entry.last_seen = Instant::now();
        Ok(entry.ctx.input_tokens())
    }

    /// The windowed input tokens of a session, refreshing its TTL.
    /// `None` if the session does not exist (in memory or, with a
    /// durable tier, on disk).
    pub fn window_tokens(&self, id: &str) -> Option<Vec<String>> {
        {
            let mut shard = self.shard(id).write();
            if let Some(entry) = shard.get_mut(id) {
                entry.last_seen = Instant::now();
                return Some(entry.ctx.input_tokens());
            }
        }
        // Tiered miss: rehydrate outside the lock, insert, serve.
        let (ctx, raws) = self.rehydrate(id).ok().flatten()?;
        let mut shard = self.shard(id).write();
        let entry = shard.entry(id.to_string()).or_insert_with(|| Entry {
            ctx,
            raws,
            last_seen: Instant::now(),
        });
        entry.last_seen = Instant::now();
        Some(entry.ctx.input_tokens())
    }

    /// Number of queries recorded in a session. Resident sessions
    /// answer from memory (read lock only); with a durable tier, tiered
    /// sessions report their persisted statement count without being
    /// rehydrated.
    pub fn session_len(&self, id: &str) -> Option<usize> {
        let in_memory = { self.shard(id).read().get(id).map(|e| e.ctx.len()) };
        if in_memory.is_some() {
            return in_memory;
        }
        self.load_raws(id).ok().flatten().map(|raws| raws.len())
    }

    /// Sessions rehydrated from the durable tier so far.
    pub fn rehydrated(&self) -> u64 {
        self.rehydrated.load(Ordering::Relaxed)
    }

    /// Total live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop one session from memory *and* the durable tier; true if it
    /// existed in either.
    pub fn remove(&self, id: &str) -> bool {
        let in_memory = self.shard(id).write().remove(id).is_some();
        let on_disk = self.durable.as_ref().is_some_and(|store| {
            let key = SessionStore::durable_key(id);
            let existed = matches!(store.get(&key), Ok(Some(_)));
            let _ = store.delete(&key);
            existed
        });
        in_memory || on_disk
    }

    /// Evict every session idle longer than the TTL, as of `now`.
    /// Returns the number evicted. Called by the sweeper thread, public
    /// for deterministic tests.
    ///
    /// With a durable tier this is *tiering*, not deletion: only the
    /// memory copy is dropped; the persisted record remains and the next
    /// request for the id rehydrates it.
    pub fn sweep(&self, now: Instant) -> usize {
        let _span = Span::enter_with("sweep", sweep_hist());
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let mut g = shard.write();
            let before = g.len();
            g.retain(|_, e| now.duration_since(e.last_seen) <= self.ttl);
            evicted += before - g.len();
        }
        self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Total sessions evicted by [`SessionStore::sweep`] so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Start a background thread sweeping every `interval`. The thread
    /// wakes in short ticks so dropping the returned handle stops it
    /// promptly rather than after a full interval.
    ///
    /// # Errors
    ///
    /// Propagates the OS error when the sweeper thread cannot be
    /// spawned.
    pub fn start_sweeper(self: &Arc<Self>, interval: Duration) -> std::io::Result<SweeperHandle> {
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::clone(self);
        let handle = thread::Builder::new()
            .name("qrec-serve-sweeper".into())
            .spawn({
                let stop = Arc::clone(&stop);
                move || {
                    let tick = Duration::from_millis(25).min(interval);
                    let mut last = Instant::now();
                    while !stop.load(Ordering::Acquire) {
                        thread::sleep(tick);
                        if last.elapsed() >= interval {
                            store.sweep(Instant::now());
                            last = Instant::now();
                        }
                    }
                }
            })?;
        Ok(SweeperHandle {
            stop,
            handle: Some(handle),
        })
    }
}

/// Owns the TTL sweeper thread; stops and joins it on drop.
pub struct SweeperHandle {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl SweeperHandle {
    /// Signal the sweeper to stop and wait for it to exit.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SweeperHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(ttl_ms: u64) -> SessionStore {
        SessionStore::new(4, 1, Duration::from_millis(ttl_ms))
    }

    #[test]
    fn push_creates_and_windows() {
        let s = store(60_000);
        let toks = s.push_sql("alice", "SELECT a FROM t").unwrap();
        assert!(toks.contains(&"t".to_string()));
        assert_eq!(s.len(), 1);
        assert_eq!(s.session_len("alice"), Some(1));
        // Window 1: only the most recent query's tokens are returned.
        let toks = s.push_sql("alice", "SELECT b FROM u").unwrap();
        assert!(toks.contains(&"u".to_string()));
        assert!(!toks.contains(&"t".to_string()));
        assert_eq!(s.session_len("alice"), Some(2));
    }

    #[test]
    fn invalid_sql_is_typed_and_leaves_store_unchanged() {
        let s = store(60_000);
        let err = s.push_sql("bob", "NOT SQL AT ALL").unwrap_err();
        assert!(matches!(err, ServeError::Sql(_)));
        assert!(s.is_empty());
    }

    #[test]
    fn sweep_evicts_only_idle_sessions() {
        let s = store(0); // everything idle for >0 is evictable
        s.push_sql("old", "SELECT a FROM t").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let now = Instant::now();
        s.push_sql("fresh", "SELECT a FROM t").unwrap();
        // "fresh" was touched after `now`, so its idle time is negative
        // (clamped to zero) and it survives; "old" is past the zero TTL.
        let evicted = s.sweep(now);
        assert_eq!(evicted, 1);
        assert!(s.session_len("old").is_none());
        assert!(s.session_len("fresh").is_some());
        assert_eq!(s.evicted(), 1);
    }

    #[test]
    fn sessions_spread_across_shards() {
        let s = store(60_000);
        for i in 0..64 {
            s.push_sql(&format!("user-{i}"), "SELECT a FROM t").unwrap();
        }
        assert_eq!(s.len(), 64);
        let populated = s.shards.iter().filter(|sh| !sh.read().is_empty()).count();
        assert!(populated > 1, "FNV routing should use multiple shards");
    }

    fn durable_store(name: &str) -> (Arc<qrec_store::Store>, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("qrec-serve-sessions-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = qrec_store::StoreConfig {
            fsync: qrec_store::FsyncPolicy::Never, // unit tests skip fsync cost
            ..qrec_store::StoreConfig::default()
        };
        (Arc::new(qrec_store::Store::open(&dir, cfg).unwrap()), dir)
    }

    #[test]
    fn durable_sessions_survive_store_reopen() {
        let (disk, dir) = durable_store("reopen");
        let cfg = disk.config();
        {
            let s = SessionStore::with_durable(4, 2, Duration::from_secs(600), disk);
            s.push_sql("alice", "SELECT a FROM t").unwrap();
            s.push_sql("alice", "SELECT b FROM u").unwrap();
        }
        // A fresh SessionStore over a re-opened Store (as after a
        // restart) sees the same session.
        let disk = Arc::new(qrec_store::Store::open(&dir, cfg).unwrap());
        let s = SessionStore::with_durable(4, 2, Duration::from_secs(600), disk);
        assert_eq!(s.session_len("alice"), Some(2));
        let toks = s.window_tokens("alice").expect("rehydrated");
        assert!(toks.contains(&"u".to_string()) && toks.contains(&"t".to_string()));
        assert_eq!(s.rehydrated(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_tiers_to_disk_instead_of_deleting() {
        let (disk, dir) = durable_store("tier");
        let s = SessionStore::with_durable(4, 1, Duration::from_millis(0), disk);
        s.push_sql("bob", "SELECT a FROM t").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(s.sweep(Instant::now()), 1, "memory copy evicted");
        assert_eq!(s.len(), 0);
        // ... but the session is still there: length from disk, then a
        // push rehydrates and continues the history.
        assert_eq!(s.session_len("bob"), Some(1));
        s.push_sql("bob", "SELECT b FROM u").unwrap();
        assert_eq!(s.session_len("bob"), Some(2));
        assert_eq!(s.rehydrated(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_the_durable_record_too() {
        let (disk, dir) = durable_store("remove");
        let s = SessionStore::with_durable(4, 1, Duration::from_secs(600), disk);
        s.push_sql("carol", "SELECT a FROM t").unwrap();
        assert!(s.remove("carol"));
        assert_eq!(s.session_len("carol"), None);
        assert!(s.window_tokens("carol").is_none(), "disk copy is gone");
        assert!(!s.remove("carol"), "second remove finds nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_persisted_record_is_typed_not_a_panic() {
        let (disk, dir) = durable_store("corrupt");
        disk.put(b"session/eve", b"{{{ not json").unwrap();
        let s = SessionStore::with_durable(4, 1, Duration::from_secs(600), disk);
        let err = s.push_sql("eve", "SELECT a FROM t").unwrap_err();
        assert!(matches!(err, ServeError::Store(_)), "{err}");
        assert_eq!(s.session_len("eve"), None, "unreadable record is absent");
        assert!(s.window_tokens("eve").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweeper_thread_runs_and_stops() {
        let s = Arc::new(store(0));
        s.push_sql("x", "SELECT a FROM t").unwrap();
        let h = s.start_sweeper(Duration::from_millis(5)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while !s.is_empty() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(s.len(), 0, "sweeper should evict the idle session");
        h.stop();
    }
}
