//! Sharded concurrent session store with TTL eviction.
//!
//! Live analyst sessions ([`SessionContext`]) are keyed by a client
//! supplied session id. The map is split into `N` shards, each behind
//! its own `parking_lot::RwLock`, so concurrent requests for different
//! sessions rarely contend; a session id is routed to its shard by an
//! FNV-1a hash. A background sweeper thread periodically evicts
//! sessions idle longer than the configured TTL — abandoned sessions
//! would otherwise accumulate without bound under real workloads.

use parking_lot::RwLock;
use qrec_core::SessionContext;
use qrec_obs::{Histogram, Span};
use qrec_workload::QueryRecord;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use crate::error::ServeError;

/// Sweep duration histogram, registered lazily: eviction scans hold
/// every shard's write lock in turn, so their cost is worth watching.
fn sweep_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qrec_obs::global().histogram_log2("serve.sweep_us"))
}

struct Entry {
    ctx: SessionContext,
    last_seen: Instant,
}

/// Concurrent map of live sessions.
pub struct SessionStore {
    shards: Box<[RwLock<HashMap<String, Entry>>]>,
    window: usize,
    ttl: Duration,
    evicted: AtomicU64,
}

/// FNV-1a, stable across runs (unlike `DefaultHasher`'s random keys),
/// so shard routing is deterministic and testable.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SessionStore {
    /// A store with `shards` lock shards (minimum 1), per-session model
    /// input window `window`, and idle eviction after `ttl`.
    pub fn new(shards: usize, window: usize, ttl: Duration) -> Self {
        let n = shards.max(1);
        let shards = (0..n)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SessionStore {
            shards,
            window,
            ttl,
            evicted: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: &str) -> &RwLock<HashMap<String, Entry>> {
        let idx = (fnv1a(id) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Append a SQL statement to a session, creating the session on
    /// first use. Parsing happens *outside* the shard lock, so a slow or
    /// invalid statement never blocks other sessions on this shard.
    ///
    /// Returns the session's windowed model-input tokens after the push.
    pub fn push_sql(&self, id: &str, sql: &str) -> Result<Vec<String>, ServeError> {
        let record = QueryRecord::new(sql).map_err(|e| ServeError::Sql(e.to_string()))?;
        let mut shard = self.shard(id).write();
        let entry = shard.entry(id.to_string()).or_insert_with(|| Entry {
            ctx: SessionContext::new(self.window),
            last_seen: Instant::now(),
        });
        entry.ctx.push(record);
        entry.last_seen = Instant::now();
        Ok(entry.ctx.input_tokens())
    }

    /// The windowed input tokens of a session, refreshing its TTL.
    /// `None` if the session does not exist.
    pub fn window_tokens(&self, id: &str) -> Option<Vec<String>> {
        let mut shard = self.shard(id).write();
        let entry = shard.get_mut(id)?;
        entry.last_seen = Instant::now();
        Some(entry.ctx.input_tokens())
    }

    /// Number of queries recorded in a session (read lock only).
    pub fn session_len(&self, id: &str) -> Option<usize> {
        let shard = self.shard(id).read();
        shard.get(id).map(|e| e.ctx.len())
    }

    /// Total live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop one session; true if it existed.
    pub fn remove(&self, id: &str) -> bool {
        self.shard(id).write().remove(id).is_some()
    }

    /// Evict every session idle longer than the TTL, as of `now`.
    /// Returns the number evicted. Called by the sweeper thread, public
    /// for deterministic tests.
    pub fn sweep(&self, now: Instant) -> usize {
        let _span = Span::enter_with("sweep", sweep_hist());
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let mut g = shard.write();
            let before = g.len();
            g.retain(|_, e| now.duration_since(e.last_seen) <= self.ttl);
            evicted += before - g.len();
        }
        self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Total sessions evicted by [`SessionStore::sweep`] so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Start a background thread sweeping every `interval`. The thread
    /// wakes in short ticks so dropping the returned handle stops it
    /// promptly rather than after a full interval.
    ///
    /// # Errors
    ///
    /// Propagates the OS error when the sweeper thread cannot be
    /// spawned.
    pub fn start_sweeper(self: &Arc<Self>, interval: Duration) -> std::io::Result<SweeperHandle> {
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("qrec-serve-sweeper".into())
            .spawn(move || {
                let tick = Duration::from_millis(25).min(interval);
                let mut last = Instant::now();
                while !flag.load(Ordering::Relaxed) {
                    thread::sleep(tick);
                    if last.elapsed() >= interval {
                        store.sweep(Instant::now());
                        last = Instant::now();
                    }
                }
            })?;
        Ok(SweeperHandle {
            stop,
            handle: Some(handle),
        })
    }
}

/// Owns the TTL sweeper thread; stops and joins it on drop.
pub struct SweeperHandle {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl SweeperHandle {
    /// Signal the sweeper to stop and wait for it to exit.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SweeperHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(ttl_ms: u64) -> SessionStore {
        SessionStore::new(4, 1, Duration::from_millis(ttl_ms))
    }

    #[test]
    fn push_creates_and_windows() {
        let s = store(60_000);
        let toks = s.push_sql("alice", "SELECT a FROM t").unwrap();
        assert!(toks.contains(&"t".to_string()));
        assert_eq!(s.len(), 1);
        assert_eq!(s.session_len("alice"), Some(1));
        // Window 1: only the most recent query's tokens are returned.
        let toks = s.push_sql("alice", "SELECT b FROM u").unwrap();
        assert!(toks.contains(&"u".to_string()));
        assert!(!toks.contains(&"t".to_string()));
        assert_eq!(s.session_len("alice"), Some(2));
    }

    #[test]
    fn invalid_sql_is_typed_and_leaves_store_unchanged() {
        let s = store(60_000);
        let err = s.push_sql("bob", "NOT SQL AT ALL").unwrap_err();
        assert!(matches!(err, ServeError::Sql(_)));
        assert!(s.is_empty());
    }

    #[test]
    fn sweep_evicts_only_idle_sessions() {
        let s = store(0); // everything idle for >0 is evictable
        s.push_sql("old", "SELECT a FROM t").unwrap();
        std::thread::sleep(Duration::from_millis(5));
        let now = Instant::now();
        s.push_sql("fresh", "SELECT a FROM t").unwrap();
        // "fresh" was touched after `now`, so its idle time is negative
        // (clamped to zero) and it survives; "old" is past the zero TTL.
        let evicted = s.sweep(now);
        assert_eq!(evicted, 1);
        assert!(s.session_len("old").is_none());
        assert!(s.session_len("fresh").is_some());
        assert_eq!(s.evicted(), 1);
    }

    #[test]
    fn sessions_spread_across_shards() {
        let s = store(60_000);
        for i in 0..64 {
            s.push_sql(&format!("user-{i}"), "SELECT a FROM t").unwrap();
        }
        assert_eq!(s.len(), 64);
        let populated = s.shards.iter().filter(|sh| !sh.read().is_empty()).count();
        assert!(populated > 1, "FNV routing should use multiple shards");
    }

    #[test]
    fn sweeper_thread_runs_and_stops() {
        let s = Arc::new(store(0));
        s.push_sql("x", "SELECT a FROM t").unwrap();
        let h = s.start_sweeper(Duration::from_millis(5)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while !s.is_empty() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(s.len(), 0, "sweeper should evict the idle session");
        h.stop();
    }
}
