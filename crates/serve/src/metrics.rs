//! Serving metrics on the `qrec-obs` registry.
//!
//! Workers and connection handlers record into shared `qrec-obs`
//! counters and histograms registered under `serve.*` names in the
//! process-wide registry, so the same storage feeds the `STATS` JSON
//! snapshot, the `DUMP` exposition, and per-stage latency breakdowns.
//! Recording stays a relaxed fetch-add with no allocation on the hot
//! path, and the [`MetricsSnapshot`] wire shape is unchanged — snapshots
//! from older servers still parse.

use qrec_obs::{Counter, Gauge, Histogram};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Upper bounds (inclusive, in microseconds) of the latency buckets; a
/// final implicit overflow bucket catches everything slower.
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// A fixed-bucket histogram of request latencies, backed by a
/// registered [`qrec_obs::Histogram`].
///
/// Snapshots derive `count`/`sum_us` from the summed per-bucket copies
/// (the obs histogram keeps a per-bucket sum array), so a snapshot taken
/// during concurrent [`record`](LatencyHistogram::record) calls is
/// internally consistent — the old separate count/sum atomics could
/// disagree with the bucket totals.
#[derive(Debug)]
pub struct LatencyHistogram {
    inner: Arc<Histogram>,
}

impl LatencyHistogram {
    /// A fresh histogram registered in the global obs registry.
    pub fn new() -> Self {
        LatencyHistogram {
            inner: qrec_obs::global().histogram("serve.latency_us", &LATENCY_BOUNDS_US),
        }
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        self.inner.record_duration(latency);
    }

    /// The underlying registered histogram, for window tracking
    /// ([`qrec_obs::WindowSet::track_histogram`] wants the `Arc`).
    pub fn handle(&self) -> Arc<Histogram> {
        Arc::clone(&self.inner)
    }

    /// Internally consistent copy of the histogram state: `count` and
    /// `sum_us` are derived from the same pass over the bucket copies.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.inner.snapshot();
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        HistogramSnapshot {
            bounds_us: s.bounds,
            buckets: s.counts,
            count: s.count,
            sum_us: s.sum,
            p50_us: p50,
            p99_us: p99,
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Serialisable view of a [`LatencyHistogram`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds in microseconds (parallel to `buckets`).
    pub bounds_us: Vec<u64>,
    /// Observation counts per bucket, plus one overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies in microseconds.
    pub sum_us: u64,
    /// Median estimate (bucket upper bound).
    pub p50_us: u64,
    /// 99th percentile estimate (bucket upper bound).
    pub p99_us: u64,
}

/// All serving counters, shared across threads behind an `Arc`.
///
/// Every instrument is also registered in [`qrec_obs::global`], so the
/// `DUMP` exposition sees the same storage `STATS` reports. Snapshots
/// read this instance's own `Arc`s directly — multiple servers in one
/// process (as in tests) keep isolated `STATS` while `DUMP` aggregates.
#[derive(Debug)]
pub struct Metrics {
    /// Protocol requests of any verb.
    pub requests: Arc<Counter>,
    /// RECOMMEND requests accepted into the decode queue.
    pub recommends: Arc<Counter>,
    /// Recommendations answered from the LRU cache.
    pub cache_hits: Arc<Counter>,
    /// Recommendations that required a model decode.
    pub cache_misses: Arc<Counter>,
    /// Requests rejected with [`crate::ServeError::Overloaded`].
    pub overloaded: Arc<Counter>,
    /// Requests that failed for any other reason.
    pub errors: Arc<Counter>,
    /// Batches drained by decode workers.
    pub batches: Arc<Counter>,
    /// Jobs processed across all batches (`batched_jobs / batches` is
    /// the mean batch size).
    pub batched_jobs: Arc<Counter>,
    /// Model hot-swaps performed.
    pub swaps: Arc<Counter>,
    /// Sessions evicted by the TTL sweeper.
    pub sessions_evicted: Arc<Counter>,
    /// End-to-end RECOMMEND latency (queue wait + decode).
    pub latency: LatencyHistogram,
    /// Session lookup + push time per RECOMMEND (`"session"` span).
    pub stage_session: Arc<Histogram>,
    /// Time jobs spend queued before a worker drains them
    /// (`"batch_wait"` span).
    pub stage_batch_wait: Arc<Histogram>,
    /// Recommendation-cache lookup time (`"cache"` span).
    pub stage_cache: Arc<Histogram>,
    /// Model decode time per job (`"decode"` span).
    pub stage_decode: Arc<Histogram>,
    /// Ranked-fragment truncation time (`"rank"` span).
    pub stage_rank: Arc<Histogram>,
    /// TCP front-end instruments (event loop or thread pool).
    pub frontend: FrontendMetrics,
}

/// Instruments for the TCP front end, registered under `serve.front.*`.
///
/// The event loop owns most of them single-threadedly; `conns_open` and
/// `outbox_high_water` are gauges the loop re-publishes each tick.
#[derive(Debug)]
pub struct FrontendMetrics {
    /// Connections currently open (accepted, not yet closed).
    pub conns_open: Arc<Gauge>,
    /// Connections accepted since start.
    pub accepted: Arc<Counter>,
    /// Connections refused because the connection cap was reached.
    pub rejected_cap: Arc<Counter>,
    /// Times the poller returned with at least one event.
    pub poll_wakeups: Arc<Counter>,
    /// Largest per-connection outbox observed, in bytes.
    pub outbox_high_water: Arc<Gauge>,
    /// Connections dropped by the idle timeout.
    pub idle_disconnects: Arc<Counter>,
    /// Connections dropped for not draining their responses
    /// ([`crate::ServeError::SlowConsumer`]).
    pub slow_disconnects: Arc<Counter>,
    /// Accept backoffs taken after transient accept errors
    /// (EMFILE/ENFILE/ECONNABORTED).
    pub accept_backoffs: Arc<Counter>,
}

impl FrontendMetrics {
    /// Fresh zeroed instruments, registered in the global obs registry.
    pub fn new() -> Self {
        let reg = qrec_obs::global();
        FrontendMetrics {
            conns_open: reg.gauge("serve.front.conns_open"),
            accepted: reg.counter("serve.front.accepted"),
            rejected_cap: reg.counter("serve.front.rejected_cap"),
            poll_wakeups: reg.counter("serve.front.poll_wakeups"),
            outbox_high_water: reg.gauge("serve.front.outbox_high_water_bytes"),
            idle_disconnects: reg.counter("serve.front.idle_disconnects"),
            slow_disconnects: reg.counter("serve.front.slow_disconnects"),
            accept_backoffs: reg.counter("serve.front.accept_backoffs"),
        }
    }

    /// Copy every instrument into a serialisable snapshot.
    pub fn snapshot(&self) -> FrontendSnapshot {
        FrontendSnapshot {
            conns_open: self.conns_open.get(),
            accepted: self.accepted.get(),
            rejected_cap: self.rejected_cap.get(),
            poll_wakeups: self.poll_wakeups.get(),
            outbox_high_water: self.outbox_high_water.get(),
            idle_disconnects: self.idle_disconnects.get(),
            slow_disconnects: self.slow_disconnects.get(),
            accept_backoffs: self.accept_backoffs.get(),
        }
    }
}

impl Default for FrontendMetrics {
    fn default() -> Self {
        FrontendMetrics::new()
    }
}

/// Serialisable view of [`FrontendMetrics`], nested in
/// [`MetricsSnapshot::frontend`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrontendSnapshot {
    /// See [`FrontendMetrics::conns_open`].
    pub conns_open: u64,
    /// See [`FrontendMetrics::accepted`].
    pub accepted: u64,
    /// See [`FrontendMetrics::rejected_cap`].
    pub rejected_cap: u64,
    /// See [`FrontendMetrics::poll_wakeups`].
    pub poll_wakeups: u64,
    /// See [`FrontendMetrics::outbox_high_water`].
    pub outbox_high_water: u64,
    /// See [`FrontendMetrics::idle_disconnects`].
    pub idle_disconnects: u64,
    /// See [`FrontendMetrics::slow_disconnects`].
    pub slow_disconnects: u64,
    /// See [`FrontendMetrics::accept_backoffs`].
    pub accept_backoffs: u64,
}

impl Metrics {
    /// Fresh zeroed metrics, registered in the global obs registry.
    pub fn new() -> Self {
        let reg = qrec_obs::global();
        Metrics {
            requests: reg.counter("serve.requests"),
            recommends: reg.counter("serve.recommends"),
            cache_hits: reg.counter("serve.cache_hits"),
            cache_misses: reg.counter("serve.cache_misses"),
            overloaded: reg.counter("serve.overloaded"),
            errors: reg.counter("serve.errors"),
            batches: reg.counter("serve.batches"),
            batched_jobs: reg.counter("serve.batched_jobs"),
            swaps: reg.counter("serve.swaps"),
            sessions_evicted: reg.counter("serve.sessions_evicted"),
            latency: LatencyHistogram::new(),
            stage_session: reg.histogram_log2("serve.stage.session_us"),
            stage_batch_wait: reg.histogram_log2("serve.stage.batch_wait_us"),
            stage_cache: reg.histogram_log2("serve.stage.cache_us"),
            stage_decode: reg.histogram_log2("serve.stage.decode_us"),
            stage_rank: reg.histogram_log2("serve.stage.rank_us"),
            frontend: FrontendMetrics::new(),
        }
    }

    /// Increment a counter by one (relaxed).
    pub fn bump(counter: &Counter) {
        counter.inc();
    }

    /// Copy every counter into a serialisable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.get(),
            recommends: self.recommends.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            overloaded: self.overloaded.get(),
            errors: self.errors.get(),
            batches: self.batches.get(),
            batched_jobs: self.batched_jobs.get(),
            swaps: self.swaps.get(),
            sessions_evicted: self.sessions_evicted.get(),
            latency: self.latency.snapshot(),
            compute: ComputeSnapshot::current(),
            decode: DecodeSnapshot::current(),
            store: qrec_store::StoreStats::default(),
            quant: QuantSnapshot::current(),
            frontend: self.frontend.snapshot(),
            window: WindowSummary::default(),
            drift: qrec_obs::DriftScore::default(),
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

/// Snapshot of the tensor compute pool: how many workers `QREC_THREADS`
/// (or the machine) configured, and how many GEMM dispatches took the
/// serial versus the pool-parallel path since process start.
///
/// [`ComputeSnapshot::current`] never spawns the pool — it reports the
/// configured size even when every request so far stayed serial.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ComputeSnapshot {
    /// Effective compute-pool size (`QREC_THREADS`, else the machine's
    /// available parallelism).
    pub pool_threads: u64,
    /// GEMM calls dispatched to a serial kernel (naive or blocked).
    pub gemm_serial: u64,
    /// GEMM calls fanned out across the compute pool.
    pub gemm_parallel: u64,
}

impl ComputeSnapshot {
    /// Read the current pool configuration and kernel dispatch counters.
    pub fn current() -> Self {
        let counters = qrec_tensor::kernel::counters();
        ComputeSnapshot {
            pool_threads: qrec_tensor::pool::configured_threads() as u64,
            gemm_serial: counters.serial,
            gemm_parallel: counters.parallel,
        }
    }
}

/// Snapshot of the incremental decode engine: batched step forwards and
/// encoder-output cache traffic since process start (see
/// `qrec_nn::decode::counters`). A healthy interleaved workload shows
/// `enc_cache_hits` climbing with repeat sources, and `steps` growing
/// linearly — not quadratically — with emitted tokens.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecodeSnapshot {
    /// Batched decode-step forwards (one per step across all live
    /// hypotheses).
    pub steps: u64,
    /// Encoder-output cache hits across all decode workers.
    pub enc_cache_hits: u64,
    /// Encoder-output cache misses (each paid a full encoder pass).
    pub enc_cache_misses: u64,
}

impl DecodeSnapshot {
    /// Read the current process-wide decode counters.
    pub fn current() -> Self {
        let c = qrec_nn::decode::counters();
        DecodeSnapshot {
            steps: c.steps,
            enc_cache_hits: c.enc_cache_hits,
            enc_cache_misses: c.enc_cache_misses,
        }
    }
}

/// Snapshot of the int8 quantized-GEMM dispatch counters: how many
/// projection GEMMs ran on the quantized serial (1×d decode) versus
/// blocked (batched) kernels since process start (see
/// `qrec_tensor::qi8::counters`). Both zero when the serving model
/// carries no int8 sidecar — the f32 path never touches them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantSnapshot {
    /// Quantized GEMM calls on the serial per-row kernel.
    pub qi8_serial: u64,
    /// Quantized GEMM calls on the blocked register-tiled kernel.
    pub qi8_blocked: u64,
}

impl QuantSnapshot {
    /// Read the current process-wide quantized dispatch counters.
    pub fn current() -> Self {
        let c = qrec_tensor::qi8::counters();
        QuantSnapshot {
            qi8_serial: c.serial,
            qi8_blocked: c.blocked,
        }
    }
}

/// Serialisable view of [`Metrics`], returned by the `STATS` verb.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::recommends`].
    pub recommends: u64,
    /// See [`Metrics::cache_hits`].
    pub cache_hits: u64,
    /// See [`Metrics::cache_misses`].
    pub cache_misses: u64,
    /// See [`Metrics::overloaded`].
    pub overloaded: u64,
    /// See [`Metrics::errors`].
    pub errors: u64,
    /// See [`Metrics::batches`].
    pub batches: u64,
    /// See [`Metrics::batched_jobs`].
    pub batched_jobs: u64,
    /// See [`Metrics::swaps`].
    pub swaps: u64,
    /// See [`Metrics::sessions_evicted`].
    pub sessions_evicted: u64,
    /// See [`Metrics::latency`].
    pub latency: HistogramSnapshot,
    /// Compute-pool configuration and GEMM kernel dispatch counters
    /// (absent in snapshots from older servers).
    #[serde(default)]
    pub compute: ComputeSnapshot,
    /// Incremental-decode step and encoder-cache counters (absent in
    /// snapshots from older servers).
    #[serde(default)]
    pub decode: DecodeSnapshot,
    /// Durable-store traffic: WAL appends and latency percentiles,
    /// flush/run/bloom counters, and the last recovery time. All-zero
    /// when the server runs without a data directory; absent in
    /// snapshots from older servers (the serde default fills it in).
    #[serde(default)]
    pub store: qrec_store::StoreStats,
    /// Int8 quantized-GEMM dispatch counters (absent in snapshots from
    /// servers that predate weight quantization).
    #[serde(default)]
    pub quant: QuantSnapshot,
    /// TCP front-end counters and gauges (absent in snapshots from
    /// servers that predate the event-loop front end).
    #[serde(default)]
    pub frontend: FrontendSnapshot,
    /// Sliding-window telemetry summary (absent in snapshots from
    /// servers that predate windowed metrics).
    #[serde(default)]
    pub window: WindowSummary,
    /// Workload-drift scores for the most recently sealed window
    /// (absent in snapshots from servers that predate drift detection).
    #[serde(default)]
    pub drift: qrec_obs::DriftScore,
}

/// Summary of the telemetry window ring nested in
/// [`MetricsSnapshot::window`]: configuration plus the newest sealed
/// bucket's identity and request delta. The full per-window series is
/// behind the `HISTORY` verb; `STATS` only carries enough to see the
/// engine is alive and ticking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Configured window width in milliseconds.
    pub width_ms: u64,
    /// Ring capacity (how many sealed windows are retained).
    pub capacity: u64,
    /// Sealed windows currently held in the ring.
    pub sealed: u64,
    /// Monotonic sequence number of the newest sealed window.
    pub last_seq: u64,
    /// Wall-clock seal time of the newest window (ms since the epoch).
    pub last_unix_ms: u64,
    /// `serve.requests` delta inside the newest window.
    pub last_requests: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::new();
        for us in [40u64, 60, 300, 2_000, 900_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets.len(), LATENCY_BOUNDS_US.len() + 1);
        assert_eq!(s.buckets[0], 1); // 40us <= 50us
        assert_eq!(s.buckets[1], 1); // 60us <= 100us
        assert_eq!(*s.buckets.last().unwrap(), 1); // overflow
        assert!(s.p50_us <= s.p99_us);
        assert_eq!(s.sum_us, 40 + 60 + 300 + 2_000 + 900_000);
    }

    /// The torn-read fix: a snapshot taken during concurrent recording
    /// must have `count` equal to its own bucket totals and a `sum_us`
    /// that accounts for every counted observation.
    #[test]
    fn concurrent_snapshots_are_internally_consistent() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        h.record(Duration::from_micros(100));
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let s = h.snapshot();
            assert_eq!(
                s.count,
                s.buckets.iter().sum::<u64>(),
                "count must equal the summed buckets of the same snapshot"
            );
            assert_eq!(s.sum_us % 100, 0, "every observation is exactly 100us");
            assert!(
                s.sum_us >= s.count * 100,
                "sum may run ahead of count, never behind"
            );
        }
        for w in writers {
            w.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.sum_us, 40_000 * 100);
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::new();
        Metrics::bump(&m.requests);
        Metrics::bump(&m.requests);
        Metrics::bump(&m.cache_hits);
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.overloaded, 0);
    }

    #[test]
    fn separate_metrics_instances_stay_isolated() {
        let a = Metrics::new();
        let b = Metrics::new();
        Metrics::bump(&a.requests);
        assert_eq!(a.snapshot().requests, 1);
        assert_eq!(b.snapshot().requests, 0);
        // ... while the shared registry aggregates both instances.
        let agg = qrec_obs::global().snapshot();
        assert!(agg.counter("serve.requests").is_some_and(|v| v >= 1));
    }

    #[test]
    fn compute_snapshot_reports_pool_and_dispatch_counters() {
        let before = Metrics::new().snapshot().compute;
        assert!(before.pool_threads >= 1);
        // A small matmul stays on the serial path and bumps the counter.
        let a = qrec_tensor::Tensor::from_vec(1, 4, vec![1.0; 4]);
        let b = qrec_tensor::Tensor::from_vec(4, 2, vec![1.0; 8]);
        let _ = a.matmul(&b);
        let after = ComputeSnapshot::current();
        assert!(after.gemm_serial > before.gemm_serial);
        assert_eq!(after.pool_threads, before.pool_threads);
    }

    #[test]
    fn snapshot_without_compute_field_deserialises_with_default() {
        // Snapshots from servers that predate the `compute` field must
        // stay parseable; the serde default fills it in.
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "compute")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.compute, ComputeSnapshot::default());
    }

    #[test]
    fn snapshot_without_decode_field_deserialises_with_default() {
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "decode")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.decode, DecodeSnapshot::default());
    }

    #[test]
    fn snapshot_without_store_field_deserialises_with_default() {
        // Pre-durability snapshots (PR ≤ 5 servers) have no `store`
        // section; they must keep parsing with an all-zero default.
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "store")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.store, qrec_store::StoreStats::default());
    }

    #[test]
    fn snapshot_without_quant_field_deserialises_with_default() {
        // Pre-quantization snapshots have no `quant` section; they must
        // keep parsing with an all-zero default.
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "quant")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.quant, QuantSnapshot::default());
    }

    #[test]
    fn snapshot_without_frontend_field_deserialises_with_default() {
        // Pre-event-loop snapshots have no `frontend` section; they must
        // keep parsing with an all-zero default.
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "frontend")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.frontend, FrontendSnapshot::default());
    }

    #[test]
    fn snapshot_without_window_field_deserialises_with_default() {
        // Pre-windowing snapshots have no `window` section; they must
        // keep parsing with an all-zero default.
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "window")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.window, WindowSummary::default());
    }

    #[test]
    fn snapshot_without_drift_field_deserialises_with_default() {
        // Pre-drift snapshots have no `drift` section; they must keep
        // parsing with an all-zero default.
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "drift")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.drift, qrec_obs::DriftScore::default());
    }

    #[test]
    fn frontend_metrics_snapshot_copies_instruments() {
        let f = FrontendMetrics::new();
        f.conns_open.set(12);
        f.accepted.inc();
        f.accepted.inc();
        f.rejected_cap.inc();
        f.outbox_high_water.set(4096);
        let s = f.snapshot();
        assert_eq!(s.conns_open, 12);
        assert_eq!(s.accepted, 2);
        assert_eq!(s.rejected_cap, 1);
        assert_eq!(s.outbox_high_water, 4096);
        assert_eq!(s.idle_disconnects, 0);
    }

    #[test]
    fn quant_snapshot_tracks_qi8_dispatch() {
        let before = QuantSnapshot::current();
        // A 1-row quantized GEMM takes the serial kernel.
        let qb = qrec_tensor::qi8::QPackedB::from_f32(&[0.5f32; 8], 4, 2);
        let _ = qrec_tensor::qi8::qgemm(&[1.0, 2.0, 3.0, 4.0], &qb, 1);
        let after = QuantSnapshot::current();
        assert!(after.qi8_serial > before.qi8_serial);
    }

    #[test]
    fn decode_snapshot_tracks_enc_cache_traffic() {
        let before = DecodeSnapshot::current();
        let mut cache = qrec_nn::decode::EncCache::new(2);
        assert!(cache.lookup(&[3, 1, 4]).is_none());
        let after = DecodeSnapshot::current();
        assert!(after.enc_cache_misses > before.enc_cache_misses);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.count, 0);
    }
}
