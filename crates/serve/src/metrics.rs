//! Serving metrics: lock-free counters and fixed-bucket latency
//! histograms.
//!
//! Workers and connection handlers record into shared atomics; the
//! `STATS` protocol verb serialises a [`MetricsSnapshot`] taken with
//! [`Metrics::snapshot`]. Buckets are fixed at compile time so recording
//! is a single relaxed fetch-add with no allocation on the hot path.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds (inclusive, in microseconds) of the latency buckets; a
/// final implicit overflow bucket catches everything slower.
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// A fixed-bucket histogram of request latencies.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LATENCY_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the histogram state (relaxed loads; the
    /// snapshot may straddle concurrent records but never tears a value).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum_us = self.sum_us.load(Ordering::Relaxed);
        let p50 = percentile(&buckets, count, 0.50);
        let p99 = percentile(&buckets, count, 0.99);
        HistogramSnapshot {
            bounds_us: LATENCY_BOUNDS_US.to_vec(),
            buckets,
            count,
            sum_us,
            p50_us: p50,
            p99_us: p99,
        }
    }
}

/// Estimate a percentile as the upper bound of the bucket containing it
/// (the overflow bucket reports the largest finite bound).
fn percentile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q * count as f64).ceil() as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return LATENCY_BOUNDS_US
                .get(i)
                .copied()
                .unwrap_or(LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1]);
        }
    }
    LATENCY_BOUNDS_US[LATENCY_BOUNDS_US.len() - 1]
}

/// Serialisable view of a [`LatencyHistogram`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds in microseconds (parallel to `buckets`).
    pub bounds_us: Vec<u64>,
    /// Observation counts per bucket, plus one overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies in microseconds.
    pub sum_us: u64,
    /// Median estimate (bucket upper bound).
    pub p50_us: u64,
    /// 99th percentile estimate (bucket upper bound).
    pub p99_us: u64,
}

/// All serving counters, shared across threads behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Protocol requests of any verb.
    pub requests: AtomicU64,
    /// RECOMMEND requests accepted into the decode queue.
    pub recommends: AtomicU64,
    /// Recommendations answered from the LRU cache.
    pub cache_hits: AtomicU64,
    /// Recommendations that required a model decode.
    pub cache_misses: AtomicU64,
    /// Requests rejected with [`crate::ServeError::Overloaded`].
    pub overloaded: AtomicU64,
    /// Requests that failed for any other reason.
    pub errors: AtomicU64,
    /// Batches drained by decode workers.
    pub batches: AtomicU64,
    /// Jobs processed across all batches (`batched_jobs / batches` is
    /// the mean batch size).
    pub batched_jobs: AtomicU64,
    /// Model hot-swaps performed.
    pub swaps: AtomicU64,
    /// Sessions evicted by the TTL sweeper.
    pub sessions_evicted: AtomicU64,
    /// End-to-end RECOMMEND latency (queue wait + decode).
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increment a counter by one (relaxed).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy every counter into a serialisable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            requests: load(&self.requests),
            recommends: load(&self.recommends),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            overloaded: load(&self.overloaded),
            errors: load(&self.errors),
            batches: load(&self.batches),
            batched_jobs: load(&self.batched_jobs),
            swaps: load(&self.swaps),
            sessions_evicted: load(&self.sessions_evicted),
            latency: self.latency.snapshot(),
            compute: ComputeSnapshot::current(),
            decode: DecodeSnapshot::current(),
        }
    }
}

/// Snapshot of the tensor compute pool: how many workers `QREC_THREADS`
/// (or the machine) configured, and how many GEMM dispatches took the
/// serial versus the pool-parallel path since process start.
///
/// [`ComputeSnapshot::current`] never spawns the pool — it reports the
/// configured size even when every request so far stayed serial.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ComputeSnapshot {
    /// Effective compute-pool size (`QREC_THREADS`, else the machine's
    /// available parallelism).
    pub pool_threads: u64,
    /// GEMM calls dispatched to a serial kernel (naive or blocked).
    pub gemm_serial: u64,
    /// GEMM calls fanned out across the compute pool.
    pub gemm_parallel: u64,
}

impl ComputeSnapshot {
    /// Read the current pool configuration and kernel dispatch counters.
    pub fn current() -> Self {
        let counters = qrec_tensor::kernel::counters();
        ComputeSnapshot {
            pool_threads: qrec_tensor::pool::configured_threads() as u64,
            gemm_serial: counters.serial,
            gemm_parallel: counters.parallel,
        }
    }
}

/// Snapshot of the incremental decode engine: batched step forwards and
/// encoder-output cache traffic since process start (see
/// `qrec_nn::decode::counters`). A healthy interleaved workload shows
/// `enc_cache_hits` climbing with repeat sources, and `steps` growing
/// linearly — not quadratically — with emitted tokens.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecodeSnapshot {
    /// Batched decode-step forwards (one per step across all live
    /// hypotheses).
    pub steps: u64,
    /// Encoder-output cache hits across all decode workers.
    pub enc_cache_hits: u64,
    /// Encoder-output cache misses (each paid a full encoder pass).
    pub enc_cache_misses: u64,
}

impl DecodeSnapshot {
    /// Read the current process-wide decode counters.
    pub fn current() -> Self {
        let c = qrec_nn::decode::counters();
        DecodeSnapshot {
            steps: c.steps,
            enc_cache_hits: c.enc_cache_hits,
            enc_cache_misses: c.enc_cache_misses,
        }
    }
}

/// Serialisable view of [`Metrics`], returned by the `STATS` verb.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::recommends`].
    pub recommends: u64,
    /// See [`Metrics::cache_hits`].
    pub cache_hits: u64,
    /// See [`Metrics::cache_misses`].
    pub cache_misses: u64,
    /// See [`Metrics::overloaded`].
    pub overloaded: u64,
    /// See [`Metrics::errors`].
    pub errors: u64,
    /// See [`Metrics::batches`].
    pub batches: u64,
    /// See [`Metrics::batched_jobs`].
    pub batched_jobs: u64,
    /// See [`Metrics::swaps`].
    pub swaps: u64,
    /// See [`Metrics::sessions_evicted`].
    pub sessions_evicted: u64,
    /// See [`Metrics::latency`].
    pub latency: HistogramSnapshot,
    /// Compute-pool configuration and GEMM kernel dispatch counters
    /// (absent in snapshots from older servers).
    #[serde(default)]
    pub compute: ComputeSnapshot,
    /// Incremental-decode step and encoder-cache counters (absent in
    /// snapshots from older servers).
    #[serde(default)]
    pub decode: DecodeSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        for us in [40u64, 60, 300, 2_000, 900_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets.len(), LATENCY_BOUNDS_US.len() + 1);
        assert_eq!(s.buckets[0], 1); // 40us <= 50us
        assert_eq!(s.buckets[1], 1); // 60us <= 100us
        assert_eq!(*s.buckets.last().unwrap(), 1); // overflow
        assert!(s.p50_us <= s.p99_us);
        assert_eq!(s.sum_us, 40 + 60 + 300 + 2_000 + 900_000);
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = Metrics::new();
        Metrics::bump(&m.requests);
        Metrics::bump(&m.requests);
        Metrics::bump(&m.cache_hits);
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.overloaded, 0);
    }

    #[test]
    fn compute_snapshot_reports_pool_and_dispatch_counters() {
        let before = Metrics::new().snapshot().compute;
        assert!(before.pool_threads >= 1);
        // A small matmul stays on the serial path and bumps the counter.
        let a = qrec_tensor::Tensor::from_vec(1, 4, vec![1.0; 4]);
        let b = qrec_tensor::Tensor::from_vec(4, 2, vec![1.0; 8]);
        let _ = a.matmul(&b);
        let after = ComputeSnapshot::current();
        assert!(after.gemm_serial > before.gemm_serial);
        assert_eq!(after.pool_threads, before.pool_threads);
    }

    #[test]
    fn snapshot_without_compute_field_deserialises_with_default() {
        // Snapshots from servers that predate the `compute` field must
        // stay parseable; the serde default fills it in.
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "compute")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.compute, ComputeSnapshot::default());
    }

    #[test]
    fn snapshot_without_decode_field_deserialises_with_default() {
        let v = MetricsSnapshot::default().to_value();
        let stripped = serde::Value::Object(
            v.as_object()
                .unwrap()
                .iter()
                .filter(|(k, _)| k.as_str() != "decode")
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let back = MetricsSnapshot::from_value(&stripped).unwrap();
        assert_eq!(back.decode, DecodeSnapshot::default());
    }

    #[test]
    fn decode_snapshot_tracks_enc_cache_traffic() {
        let before = DecodeSnapshot::current();
        let mut cache = qrec_nn::decode::EncCache::new(2);
        assert!(cache.lookup(&[3, 1, 4]).is_none());
        let after = DecodeSnapshot::current();
        assert!(after.enc_cache_misses > before.enc_cache_misses);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.count, 0);
    }
}
