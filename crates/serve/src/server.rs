//! Server lifecycle, configuration, and request dispatch.
//!
//! Two TCP front ends share everything below the socket layer:
//!
//! * [`Frontend::EventLoop`] (the default) — one thread multiplexes
//!   every connection over readiness polling; see [`crate::eventloop`].
//! * [`Frontend::ThreadPool`] — the original blocking design: an accept
//!   thread feeds a fixed pool of connection handlers; see
//!   [`crate::threaded`].
//!
//! Both speak the JSON-lines protocol of [`crate::protocol`] through
//! the same [`dispatch_parsed`] routing, record into the same
//! [`Metrics`], and execute RECOMMENDs on the same batcher, so `STATS`,
//! `TRACE`, and `DUMP` are byte-compatible across front ends.
//!
//! Shutdown is graceful and race-free in both modes: the flag stops
//! accepting, every request accepted before the flag flipped still gets
//! its response, and only then is the decode engine disconnected.

use crossbeam::channel::unbounded;
use qrec_core::Recommender;
use qrec_obs::{flight, trace, Span, TraceContext};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::batcher::{DecodeEngine, DecodeRequest, EngineConfig};
use crate::cache::RecCache;
use crate::error::ServeError;
use crate::eventloop::{EventLoop, LoopLimits};
use crate::metrics::Metrics;
use crate::protocol::{Request, Response, StatsReply, DEFAULT_N, DEFAULT_PROF_N, DEFAULT_TRACE_N};
use crate::registry::ModelRegistry;
use crate::session_store::{SessionStore, SweeperHandle};
use crate::telemetry::Telemetry;
use crate::zoo::ModelZoo;
use qrec_store::{Store, TelemetryLog};

/// Numeric mode for the serving model's decode hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QuantMode {
    /// Full-precision weights and KV caches: the bitwise-deterministic
    /// reference path.
    #[default]
    F32,
    /// Int8 weight-quantized projections and quantized KV caches
    /// (DESIGN.md §15): ~4× smaller resident model + cache, ≥2× decode
    /// throughput, top-5 agreement ≥ 0.98 against [`QuantMode::F32`].
    Int8,
}

impl QuantMode {
    /// Parse a CLI value (`"f32"` or `"int8"`).
    ///
    /// # Errors
    ///
    /// A descriptive message for any other spelling.
    pub fn parse(s: &str) -> Result<QuantMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Ok(QuantMode::F32),
            "int8" => Ok(QuantMode::Int8),
            other => Err(format!("unknown quant mode {other:?} (use f32 or int8)")),
        }
    }
}

/// Which TCP front end serves connections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Frontend {
    /// One thread multiplexes every connection over readiness polling
    /// (DESIGN.md §16). Connection count is bounded by
    /// [`ServerConfig::max_connections`], not by threads.
    #[default]
    EventLoop,
    /// The original blocking design: [`ServerConfig::conn_threads`]
    /// handler threads, each serving one connection at a time.
    ThreadPool,
}

impl Frontend {
    /// Parse a CLI value (`"eventloop"` or `"threadpool"`).
    ///
    /// # Errors
    ///
    /// A descriptive message for any other spelling.
    pub fn parse(s: &str) -> Result<Frontend, String> {
        match s.to_ascii_lowercase().as_str() {
            "eventloop" | "event-loop" => Ok(Frontend::EventLoop),
            "threadpool" | "thread-pool" => Ok(Frontend::ThreadPool),
            other => Err(format!(
                "unknown frontend {other:?} (use eventloop or threadpool)"
            )),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which TCP front end serves connections.
    pub frontend: Frontend,
    /// Connection handler threads ([`Frontend::ThreadPool`] only; each
    /// serves one connection at a time).
    pub conn_threads: usize,
    /// Open-connection cap ([`Frontend::EventLoop`] only). Connections
    /// beyond it get a best-effort `overloaded` line and are dropped.
    pub max_connections: usize,
    /// Longest accepted request line in bytes ([`Frontend::EventLoop`]
    /// only); longer lines get a typed `bad_request` and a disconnect.
    pub max_line_bytes: usize,
    /// Outbox size above which the loop stops reading from a connection
    /// ([`Frontend::EventLoop`] only): backpressure rung 1.
    pub outbox_soft_bytes: usize,
    /// Outbox size at which a client is disconnected with
    /// [`ServeError::SlowConsumer`] ([`Frontend::EventLoop`] only):
    /// backpressure rung 2.
    pub outbox_hard_bytes: usize,
    /// Idle time after which a connection is closed
    /// ([`Frontend::EventLoop`] only).
    pub idle_timeout: Duration,
    /// How long shutdown waits for in-flight requests to finish and
    /// flush ([`Frontend::EventLoop`] only).
    pub drain_timeout: Duration,
    /// Decode engine settings.
    pub engine: EngineConfig,
    /// Queries of context fed to the model per session (1 = paper's
    /// configuration: only the latest query).
    pub session_window: usize,
    /// Lock shards in the session store.
    pub session_shards: usize,
    /// Idle time after which a session is evicted.
    pub session_ttl: Duration,
    /// How often the sweeper scans for idle sessions.
    pub sweep_interval: Duration,
    /// Capacity of the recommendation LRU cache.
    pub cache_capacity: usize,
    /// Durable data directory. `Some(dir)` turns on persistence:
    /// sessions are write-through to a WAL-backed store under
    /// `dir/sessions`, models persist to a zoo under `dir/zoo`, and
    /// startup recovers both (preferring the zoo's model over the one
    /// passed to [`Server::start`]). `None` (the default) serves
    /// entirely in memory, as before.
    pub data_dir: Option<std::path::PathBuf>,
    /// Tuning for the durable store (fsync policy, memtable budget).
    /// Ignored without `data_dir`.
    pub store: qrec_store::StoreConfig,
    /// Numeric mode for decoding. [`QuantMode::Int8`] quantizes the
    /// boot model and every hot-swapped model at install time; the
    /// sidecar also persists to the zoo, so a restart serves int8
    /// without re-calibrating.
    pub quant: QuantMode,
    /// Width of one telemetry window (DESIGN.md §17). Clamped to at
    /// least one millisecond.
    pub window_width: Duration,
    /// Sealed telemetry windows retained in memory (the `HISTORY` ring).
    pub window_buckets: usize,
    /// Byte cap on the durable telemetry log under `data_dir`
    /// (`telemetry.log`); oldest frames are dropped past it. 0 means
    /// the store default. Ignored without `data_dir`.
    pub telemetry_log_bytes: u64,
    /// Start the sampling wall-clock profiler with the server (the
    /// `PROF` verb reports whatever has been collected; the profiler
    /// can also be toggled per-process via `qrec_obs::prof`).
    pub profiler: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            frontend: Frontend::EventLoop,
            conn_threads: 4,
            max_connections: 8192,
            max_line_bytes: 256 * 1024,
            outbox_soft_bytes: 64 * 1024,
            outbox_hard_bytes: 1024 * 1024,
            idle_timeout: Duration::from_secs(15 * 60),
            drain_timeout: Duration::from_secs(5),
            engine: EngineConfig::default(),
            session_window: 1,
            session_shards: 8,
            session_ttl: Duration::from_secs(30 * 60),
            sweep_interval: Duration::from_secs(30),
            cache_capacity: 1024,
            data_dir: None,
            store: qrec_store::StoreConfig::default(),
            quant: QuantMode::F32,
            window_width: Duration::from_secs(10),
            window_buckets: 60,
            telemetry_log_bytes: 0,
            profiler: false,
        }
    }
}

/// Mutex pairing with [`std::sync::Condvar`] for shutdown signalling.
/// The rest of the crate standardizes on `parking_lot`, but the shim
/// has no `Condvar`, so this one flag stays on std's primitives.
// qrec-lint: allow(shim-surface-drift) -- parking_lot shim has no Condvar; std Mutex+Condvar is the only wait/notify pair available offline
type ShutdownMutex = std::sync::Mutex<bool>;

/// State shared by every connection handler (pool thread or event
/// loop).
pub(crate) struct Shared {
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) store: Arc<SessionStore>,
    pub(crate) cache: Arc<RecCache>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) engine: Arc<DecodeEngine>,
    /// Windowed telemetry engine (windows + sketch + drift + history).
    pub(crate) telemetry: Arc<Telemetry>,
    /// Durable tier behind the session store, when configured.
    durable: Option<Arc<Store>>,
    /// Persistent model zoo, when configured.
    zoo: Option<ModelZoo>,
    /// Numeric mode applied to every installed model.
    quant: QuantMode,
    pub(crate) shutdown: AtomicBool,
    /// Open connections in the thread-pool front end (the event loop
    /// tracks its own slab count); feeds the `conns_open` gauge.
    pub(crate) pool_open: std::sync::atomic::AtomicU64,
    /// Signalled when a client issues the SHUTDOWN verb; see
    /// [`ShutdownMutex`].
    shutdown_requested: ShutdownMutex,
    shutdown_cv: std::sync::Condvar,
}

impl Shared {
    fn lock_requested(&self) -> std::sync::MutexGuard<'_, bool> {
        self.shutdown_requested
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn request_shutdown(&self) {
        let mut g = self.lock_requested();
        *g = true;
        self.shutdown_cv.notify_all();
    }
}

/// A running recommendation server.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Thread-pool front end: accept thread + handler pool.
    accept_handle: Option<thread::JoinHandle<()>>,
    conn_handles: Vec<thread::JoinHandle<()>>,
    /// Event-loop front end: the loop thread and its wakeup handle.
    loop_handle: Option<thread::JoinHandle<()>>,
    loop_waker: Option<Arc<polling::Waker>>,
    sweeper: Option<SweeperHandle>,
    engine: Option<Arc<DecodeEngine>>,
    /// Telemetry ticker thread: seals windows and appends them to the
    /// durable log off the request path.
    ticker_stop: Arc<AtomicBool>,
    ticker_handle: Option<thread::JoinHandle<()>>,
    /// True when this server started the sampling profiler (and so owns
    /// stopping it).
    profiler_started: bool,
}

impl Server {
    /// Train-free start: serve an already trained model on `addr`
    /// (use port 0 for an ephemeral port; read it back with
    /// [`Server::local_addr`]).
    ///
    /// With [`ServerConfig::data_dir`] set, startup first recovers the
    /// durable state: the session store replays its WAL (healing a torn
    /// tail), and the model zoo's `CURRENT` model — when one was
    /// persisted — replaces `model`, with the registry resuming at the
    /// persisted epoch. A corrupt zoo blob or manifest is a hard boot
    /// error: the server refuses to serve garbage weights.
    pub fn start(
        model: Recommender,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let store_err = |e: qrec_store::StoreError| std::io::Error::other(e.to_string());
        let mut durable: Option<Arc<Store>> = None;
        let mut zoo: Option<ModelZoo> = None;
        let mut boot_model = model;
        let mut boot_epoch = 1u64;
        // The config's quant mode is authoritative over whatever state
        // the caller's or the zoo's model arrives in: Int8 installs the
        // sidecar (idempotent if a v2 blob already carried one), F32
        // strips it so the bitwise reference path serves.
        apply_quant_mode(&mut boot_model, cfg.quant);
        if let Some(dir) = &cfg.data_dir {
            let sessions = Store::open(&dir.join("sessions"), cfg.store).map_err(store_err)?;
            durable = Some(Arc::new(sessions));
            let z = ModelZoo::open(&dir.join("zoo")).map_err(store_err)?;
            match z.load_current().map_err(store_err)? {
                Some((epoch, recovered)) => {
                    // The zoo's model is the newest the previous process
                    // served; it outranks the caller's boot model.
                    boot_model = recovered;
                    boot_epoch = epoch;
                    apply_quant_mode(&mut boot_model, cfg.quant);
                }
                None => {
                    // First boot with persistence: seed the zoo so a
                    // crash before the first swap still recovers (with
                    // its int8 sections when quantization is on).
                    z.save(boot_epoch, &boot_model).map_err(store_err)?;
                }
            }
            zoo = Some(z);
        }

        let registry = Arc::new(ModelRegistry::with_epoch(boot_model, boot_epoch));
        let store = Arc::new(match &durable {
            Some(d) => SessionStore::with_durable(
                cfg.session_shards,
                cfg.session_window,
                cfg.session_ttl,
                Arc::clone(d),
            ),
            None => SessionStore::new(cfg.session_shards, cfg.session_window, cfg.session_ttl),
        });
        let cache = Arc::new(RecCache::new(cfg.cache_capacity));
        let metrics = Arc::new(Metrics::new());
        let engine = Arc::new(DecodeEngine::start(
            cfg.engine.clone(),
            Arc::clone(&registry),
            Arc::clone(&cache),
            Arc::clone(&metrics),
        )?);
        let sweeper = store.start_sweeper(cfg.sweep_interval)?;

        // Telemetry: windowed deltas + template sketch + drift, with an
        // optional durable frame log rebuilt before serving starts.
        let telemetry = Arc::new(Telemetry::new(
            &metrics,
            cfg.window_width,
            cfg.window_buckets,
        ));
        let mut tlog: Option<TelemetryLog> = None;
        if let Some(dir) = &cfg.data_dir {
            let (log, frames) = TelemetryLog::open(
                &dir.join("telemetry.log"),
                cfg.telemetry_log_bytes,
                qrec_store::FsyncPolicy::Never,
            )
            .map_err(store_err)?;
            telemetry.restore(&frames);
            tlog = Some(log);
        }
        {
            // Every parsed query feeds the template sketch, whichever
            // front end carried it.
            let telemetry = Arc::clone(&telemetry);
            store.set_template_sink(move |id| telemetry.note_template(id));
        }
        let profiler_started = cfg.profiler && qrec_obs::prof::start();
        let ticker_stop = Arc::new(AtomicBool::new(false));
        let ticker_handle = {
            let telemetry = Arc::clone(&telemetry);
            let ticker_stop = Arc::clone(&ticker_stop);
            // Poll well inside the window width so seals land close to
            // their deadline even for sub-second test configurations.
            let poll =
                (cfg.window_width / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
            Some(
                thread::Builder::new()
                    .name("qrec-serve-telemetry".into())
                    .spawn(move || {
                        qrec_obs::prof::register_thread("telemetry");
                        while !ticker_stop.load(Ordering::Acquire) {
                            thread::sleep(poll);
                            if let Some(frame) = telemetry.tick(Instant::now()) {
                                if let Some(log) = tlog.as_mut() {
                                    if let Ok(bytes) = serde_json::to_vec(&frame) {
                                        // Telemetry persistence is best
                                        // effort: a full disk must not
                                        // take serving down.
                                        let _ = log.append_frame(&bytes);
                                    }
                                }
                            }
                        }
                        if let Some(log) = tlog.as_mut() {
                            let _ = log.sync();
                        }
                    })?,
            )
        };

        let shared = Arc::new(Shared {
            registry,
            store,
            cache,
            metrics,
            engine: Arc::clone(&engine),
            telemetry,
            durable,
            zoo,
            quant: cfg.quant,
            shutdown: AtomicBool::new(false),
            pool_open: std::sync::atomic::AtomicU64::new(0),
            shutdown_requested: ShutdownMutex::new(false),
            shutdown_cv: std::sync::Condvar::new(),
        });

        let mut accept_handle = None;
        let mut conn_handles = Vec::new();
        let mut loop_handle = None;
        let mut loop_waker = None;
        match cfg.frontend {
            Frontend::EventLoop => {
                let limits = LoopLimits {
                    max_connections: cfg.max_connections.max(1),
                    max_line_bytes: cfg.max_line_bytes.max(1024),
                    outbox_soft_bytes: cfg.outbox_soft_bytes.max(1024),
                    outbox_hard_bytes: cfg.outbox_hard_bytes.max(cfg.outbox_soft_bytes.max(1024)),
                    idle_timeout: cfg.idle_timeout,
                    drain_timeout: cfg.drain_timeout,
                };
                let (mut lp, waker) = EventLoop::new(listener, Arc::clone(&shared), limits)?;
                loop_waker = Some(waker);
                loop_handle = Some(
                    thread::Builder::new()
                        .name("qrec-serve-loop".into())
                        .spawn(move || lp.run())?,
                );
            }
            Frontend::ThreadPool => {
                let (conn_tx, conn_rx) = unbounded::<TcpStream>();
                conn_handles = (0..cfg.conn_threads.max(1))
                    .map(|i| {
                        let rx = conn_rx.clone();
                        let shared = Arc::clone(&shared);
                        thread::Builder::new()
                            .name(format!("qrec-serve-conn-{i}"))
                            .spawn(move || {
                                qrec_obs::prof::register_thread(&format!("conn-{i}"));
                                while let Ok(stream) = rx.recv() {
                                    crate::threaded::handle_connection(stream, &shared);
                                }
                            })
                    })
                    .collect::<std::io::Result<Vec<_>>>()?;

                accept_handle = {
                    let shared = Arc::clone(&shared);
                    Some(
                        thread::Builder::new()
                            .name("qrec-serve-accept".into())
                            .spawn(move || {
                                crate::threaded::accept_loop(listener, conn_tx, &shared)
                            })?,
                    )
                };
            }
        }

        Ok(Server {
            addr: local,
            shared,
            accept_handle,
            conn_handles,
            loop_handle,
            loop_waker,
            sweeper: Some(sweeper),
            engine: Some(engine),
            ticker_stop,
            ticker_handle,
            profiler_started,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model registry, for hot-swapping from the owning process.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Serving metrics.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The session store.
    pub fn sessions(&self) -> &Arc<SessionStore> {
        &self.shared.store
    }

    /// The telemetry engine (windows, sketch, drift, history). Tests
    /// drive window boundaries through it with a fake clock.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// The current model epoch (continues across restarts when a model
    /// zoo is configured).
    pub fn model_epoch(&self) -> u64 {
        self.shared.registry.epoch()
    }

    /// Hot-swap the serving model; returns the new epoch. In-flight
    /// requests finish on the old model. With persistence configured, a
    /// failed zoo save is recorded in the error counter but the
    /// in-memory swap stands — use [`Server::try_swap_model`] when the
    /// caller must know the new model is durable.
    pub fn swap_model(&self, model: Recommender) -> u64 {
        match self.try_swap_model(model) {
            Ok(epoch) => epoch,
            Err(_) => {
                Metrics::bump(&self.shared.metrics.errors);
                self.shared.registry.epoch()
            }
        }
    }

    /// Hot-swap the serving model and, when persistence is configured,
    /// persist it to the model zoo before returning. On
    /// [`ServeError::Store`] the swap has already taken effect in
    /// memory but is *not* durable — a restart would recover the
    /// previously persisted model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the zoo write fails.
    pub fn try_swap_model(&self, mut model: Recommender) -> Result<u64, ServeError> {
        apply_quant_mode(&mut model, self.shared.quant);
        let epoch = self.shared.registry.swap(model);
        Metrics::bump(&self.shared.metrics.swaps);
        if let Some(zoo) = &self.shared.zoo {
            // Persist whatever is current *now*: if another swap raced
            // in between, saving the newer model is still correct.
            let (cur_epoch, cur_model) = self.shared.registry.current();
            zoo.save(cur_epoch, &cur_model)
                .map_err(|e| ServeError::Store(e.to_string()))?;
        }
        Ok(epoch)
    }

    /// Block until a client sends the `SHUTDOWN` verb (or the timeout
    /// elapses). Returns true when shutdown was requested.
    pub fn wait_for_shutdown_request(&self, timeout: Option<Duration>) -> bool {
        let mut g = self.shared.lock_requested();
        match timeout {
            None => {
                while !*g {
                    g = self
                        .shared
                        .shutdown_cv
                        .wait(g)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                true
            }
            Some(t) => {
                let deadline = std::time::Instant::now() + t;
                while !*g {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    g = self
                        .shared
                        .shutdown_cv
                        .wait_timeout(g, deadline.saturating_duration_since(now))
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0;
                }
                true
            }
        }
    }

    /// Gracefully stop: finish accepted work, join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.request_shutdown();
        // Event loop: the waker interrupts the poll so the loop sees the
        // flag now rather than on its next timeout; it then drains
        // in-flight requests and exits.
        if let Some(w) = &self.loop_waker {
            let _ = w.wake();
        }
        if let Some(h) = self.loop_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // The accept thread owned the stream sender; with it gone the
        // pool drains remaining connections and exits.
        for h in self.conn_handles.drain(..) {
            let _ = h.join();
        }
        if let Some(s) = self.sweeper.take() {
            s.stop();
        }
        // Telemetry ticker: stop sealing, flush the durable log.
        self.ticker_stop.store(true, Ordering::Release);
        if let Some(h) = self.ticker_handle.take() {
            let _ = h.join();
        }
        if self.profiler_started {
            self.profiler_started = false;
            qrec_obs::prof::stop();
        }
        // Last engine Arc: dropping it disconnects the queue and joins
        // the decode workers.
        self.engine.take();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Make a model match the server's configured numeric mode.
fn apply_quant_mode(model: &mut Recommender, mode: QuantMode) {
    match mode {
        QuantMode::Int8 => model.quantize(),
        QuantMode::F32 => model.dequantize(),
    }
}

/// Where a parsed request line goes next.
///
/// Control verbs resolve inline (they only read atomics, registries,
/// and snapshots), so both front ends answer them on the spot.
/// RECOMMEND is the one verb that runs a model: the thread pool blocks
/// its handler thread on it, the event loop hands it to the batcher and
/// keeps polling.
pub(crate) enum Dispatch {
    /// The response is ready (boxed: a STATS snapshot dwarfs a
    /// `Request`); the bool asks the caller to close the connection
    /// after flushing it (SHUTDOWN acknowledgement).
    Done(Box<Response>, bool),
    /// A well-formed RECOMMEND for the caller to execute its own way.
    Recommend(Request),
    /// A `WATCH` subscription: the event loop marks the connection as a
    /// watcher and streams one line per sealed window; the thread-pool
    /// front end (one blocking thread per connection, no broadcast
    /// point) rejects it with a typed error.
    Watch,
}

/// Parse and route one request line. Every verb but RECOMMEND is fully
/// handled here.
pub(crate) fn dispatch_parsed(line: &str, shared: &Shared) -> Dispatch {
    Metrics::bump(&shared.metrics.requests);
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            Metrics::bump(&shared.metrics.errors);
            return Dispatch::Done(
                Box::new(Response::err(&ServeError::BadRequest(format!(
                    "invalid JSON: {e}"
                )))),
                false,
            );
        }
    };
    match req.verb.to_ascii_uppercase().as_str() {
        "PING" => Dispatch::Done(Box::new(Response::ok()), false),
        "RECOMMEND" => Dispatch::Recommend(req),
        "STATS" => Dispatch::Done(Box::new(stats(shared)), false),
        "TRACE" => Dispatch::Done(Box::new(traces(&req)), false),
        "DUMP" => Dispatch::Done(Box::new(dump()), false),
        "HISTORY" => Dispatch::Done(Box::new(history(&req, shared)), false),
        "WATCH" => Dispatch::Watch,
        "PROF" => Dispatch::Done(Box::new(prof(&req)), false),
        "SHUTDOWN" => {
            shared.request_shutdown();
            Dispatch::Done(Box::new(Response::ok()), true)
        }
        other => {
            Metrics::bump(&shared.metrics.errors);
            Dispatch::Done(
                Box::new(Response::err(&ServeError::BadRequest(format!(
                    "unknown verb {other:?}"
                )))),
                false,
            )
        }
    }
}

/// Handle one request line synchronously (thread-pool front end);
/// returns the response and whether the connection should close
/// afterwards.
pub(crate) fn dispatch(line: &str, shared: &Shared) -> (Response, bool) {
    match dispatch_parsed(line, shared) {
        Dispatch::Done(resp, close_after) => (*resp, close_after),
        Dispatch::Recommend(req) => (recommend(&req, shared), false),
        Dispatch::Watch => {
            Metrics::bump(&shared.metrics.errors);
            (
                Response::err(&ServeError::BadRequest(
                    "WATCH requires the event-loop front end".into(),
                )),
                false,
            )
        }
    }
}

fn recommend(req: &Request, shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::err(&ServeError::ShuttingDown);
    }
    let (session, sql) = match (&req.session, &req.sql) {
        (Some(s), Some(q)) => (s, q),
        _ => {
            Metrics::bump(&shared.metrics.errors);
            return Response::err(&ServeError::BadRequest(
                "RECOMMEND needs `session` and `sql`".into(),
            ));
        }
    };
    // Start the flight trace once the request is known to be well
    // formed; it rides the DecodeRequest across the batcher hand-off
    // and comes back on the Recommendation for flight recording.
    let t0 = Instant::now();
    if let Some(ctx) = TraceContext::start(qrec_obs::next_request_id()) {
        trace::install(ctx);
    }
    let tokens = match Span::in_span_with("session", &shared.metrics.stage_session, || {
        shared.store.push_sql(session, sql)
    }) {
        Ok(t) => t,
        Err(e) => {
            trace::uninstall();
            Metrics::bump(&shared.metrics.errors);
            return Response::err(&e);
        }
    };
    let n = req.n.map(|n| n as usize).unwrap_or(DEFAULT_N);
    Metrics::bump(&shared.metrics.recommends);
    trace::note_queue_depth(shared.engine.queued() as u64);
    let trace_ctx = trace::uninstall();
    match shared.engine.recommend(DecodeRequest {
        tokens,
        n,
        trace: trace_ctx,
    }) {
        Ok(rec) => {
            // Only completed requests land in the flight recorder; the
            // total covers queue wait, decode, and the reply hand-off.
            if let Some(ctx) = rec.trace {
                flight::global().record(ctx, t0.elapsed());
            }
            Response::recommendation(rec.fragments, rec.epoch, rec.cached)
        }
        Err(e) => {
            match e {
                ServeError::Overloaded => Metrics::bump(&shared.metrics.overloaded),
                _ => Metrics::bump(&shared.metrics.errors),
            }
            Response::err(&e)
        }
    }
}

/// `TRACE`: recent flight records (client-bounded by `n`) plus the
/// slowest-seen reservoir.
fn traces(req: &Request) -> Response {
    let n = req.n.map(|n| n as usize).unwrap_or(DEFAULT_TRACE_N);
    let recorder = flight::global();
    Response::traces(recorder.recent(n), recorder.slowest())
}

/// `HISTORY`: the newest `n` sealed telemetry windows (all of the ring
/// when `n` is omitted), oldest first.
fn history(req: &Request, shared: &Shared) -> Response {
    let n = req.n.map(|n| n as usize).unwrap_or(usize::MAX);
    Response::history(shared.telemetry.history(n))
}

/// `PROF`: the sampling profiler's folded-stack report, top `n` stacks.
fn prof(req: &Request) -> Response {
    let n = req.n.map(|n| n as usize).unwrap_or(DEFAULT_PROF_N);
    Response::prof(qrec_obs::prof::report(n))
}

/// `DUMP`: Prometheus-style exposition of the global registry, with the
/// nn/tensor process-wide static counters appended (they predate the
/// registry and remain the source of truth for their subsystems).
fn dump() -> Response {
    use std::fmt::Write as _;
    let mut text = qrec_obs::expo::render(qrec_obs::global());
    let d = qrec_nn::decode::counters();
    let k = qrec_tensor::kernel::counters();
    let _ = writeln!(text, "# HELP qrec_nn_decode_steps incremental decode steps");
    let _ = writeln!(text, "# TYPE qrec_nn_decode_steps counter");
    let _ = writeln!(text, "qrec_nn_decode_steps {}", d.steps);
    let _ = writeln!(text, "# HELP qrec_nn_enc_cache_hits encoder cache hits");
    let _ = writeln!(text, "# TYPE qrec_nn_enc_cache_hits counter");
    let _ = writeln!(text, "qrec_nn_enc_cache_hits {}", d.enc_cache_hits);
    let _ = writeln!(text, "# HELP qrec_nn_enc_cache_misses encoder cache misses");
    let _ = writeln!(text, "# TYPE qrec_nn_enc_cache_misses counter");
    let _ = writeln!(text, "qrec_nn_enc_cache_misses {}", d.enc_cache_misses);
    let _ = writeln!(
        text,
        "# HELP qrec_tensor_gemm_serial GEMMs on the serial kernel"
    );
    let _ = writeln!(text, "# TYPE qrec_tensor_gemm_serial counter");
    let _ = writeln!(text, "qrec_tensor_gemm_serial {}", k.serial);
    let _ = writeln!(
        text,
        "# HELP qrec_tensor_gemm_parallel GEMMs on the pool-parallel kernel"
    );
    let _ = writeln!(text, "# TYPE qrec_tensor_gemm_parallel counter");
    let _ = writeln!(text, "qrec_tensor_gemm_parallel {}", k.parallel);
    let q = qrec_tensor::qi8::counters();
    let _ = writeln!(
        text,
        "# HELP qrec_tensor_gemm_qi8_serial int8 GEMMs on the serial kernel"
    );
    let _ = writeln!(text, "# TYPE qrec_tensor_gemm_qi8_serial counter");
    let _ = writeln!(text, "qrec_tensor_gemm_qi8_serial {}", q.serial);
    let _ = writeln!(
        text,
        "# HELP qrec_tensor_gemm_qi8_blocked int8 GEMMs on the blocked kernel"
    );
    let _ = writeln!(text, "# TYPE qrec_tensor_gemm_qi8_blocked counter");
    let _ = writeln!(text, "qrec_tensor_gemm_qi8_blocked {}", q.blocked);
    let _ = writeln!(
        text,
        "# HELP qrec_tensor_pool_threads configured compute-pool size"
    );
    let _ = writeln!(text, "# TYPE qrec_tensor_pool_threads gauge");
    let _ = writeln!(
        text,
        "qrec_tensor_pool_threads {}",
        qrec_tensor::pool::configured_threads()
    );
    Response::dump(text)
}

fn stats(shared: &Shared) -> Response {
    let mut snapshot = shared.metrics.snapshot();
    // The store tracks its own eviction count (the sweeper has no
    // metrics handle); fold it into the snapshot here.
    snapshot.sessions_evicted = shared.store.evicted();
    // Same for the durable tier: its stats live on the Store handle.
    if let Some(durable) = &shared.durable {
        snapshot.store = durable.stats();
    }
    // And for the telemetry engine: windows seal outside Metrics.
    snapshot.window = shared.telemetry.summary();
    snapshot.drift = shared.telemetry.latest_drift();
    Response {
        ok: true,
        stats: Some(StatsReply {
            metrics: snapshot,
            sessions: shared.store.len() as u64,
            cache_entries: shared.cache.len() as u64,
            model_epoch: shared.registry.epoch(),
            model_quantized: shared.registry.current().1.is_quantized(),
        }),
        ..Response::default()
    }
}
