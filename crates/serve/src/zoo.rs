//! The model zoo: versioned on-disk persistence for serving models.
//!
//! Each epoch's [`Recommender`] is written as a [`qrec_store::blob`]
//! container (`model-<epoch>.qmz`): the JSON header carries the
//! architecture config, the model structure, the vocabulary, the
//! fragment lexicon, and per-tensor metadata; one binary section per
//! parameter tensor holds its `f32` values in little-endian byte order.
//! Weights therefore round-trip **bitwise** — the restored model decodes
//! identically to the one that was saved — and every section has its own
//! CRC, so a flipped bit in any weight blob is a typed
//! [`StoreError::Corrupt`], never silently different recommendations.
//!
//! Format v2 adds optional **int8 sections**: when the saved model
//! carries a quantization sidecar (DESIGN.md §15), the header's `quant`
//! list names one extra section per quantized weight holding its raw
//! int8 values, with the per-tensor scale in the header. The f32
//! sections are always written — the bitwise round-trip guarantee is
//! unconditional — and loading rebuilds the sidecar from the int8
//! sections instead of re-calibrating. v1 blobs (no `quant` field)
//! still load; a blob from a *future* format version is refused with a
//! typed [`StoreError::Corrupt`], never a panic or a misparse.
//!
//! A `CURRENT` pointer file (JSON, installed by atomic rename) names the
//! live epoch; [`ModelZoo::load_current`] follows it on boot. Blobs and
//! pointer are each atomic, and the blob is written before the pointer,
//! so a crash anywhere leaves the previous model loadable.

use qrec_core::{AnyModel, FragmentLexicon, Recommender, RecommenderConfig};
use qrec_nn::Params;
use qrec_store::{blob, StoreError};
use qrec_tensor::Tensor;
use qrec_workload::Vocab;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Zoo format version (the blob container has its own version too).
/// v1: f32 sections only. v2: optional int8 sections after the f32
/// sections, described by the header's `quant` list.
pub const ZOO_VERSION: u32 = 2;

/// Name of the pointer file naming the live model.
pub const CURRENT_FILE: &str = "CURRENT";

/// Shape and name of one persisted parameter tensor; section `i` of the
/// blob holds the `f32` LE bytes of tensor `i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TensorMeta {
    name: String,
    rows: usize,
    cols: usize,
}

/// One quantized parameter: section `tensors.len() + i` of the blob
/// holds the raw int8 values (row-major) of parameter `param`. GEMM
/// weights carry one per-tensor scale; embedding tables carry one scale
/// per row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuantMeta {
    param: usize,
    rows: usize,
    cols: usize,
    scales: Vec<f32>,
}

/// The blob's JSON header.
#[derive(Debug, Serialize, Deserialize)]
struct ZooHeader {
    format_version: u32,
    epoch: u64,
    cfg: RecommenderConfig,
    model: AnyModel,
    vocab: Vocab,
    lexicon: FragmentLexicon,
    tensors: Vec<TensorMeta>,
    /// Int8 sections (v2+); empty/absent in v1 blobs.
    #[serde(default)]
    quant: Vec<QuantMeta>,
}

/// The `CURRENT` pointer contents.
#[derive(Debug, Serialize, Deserialize)]
struct CurrentPointer {
    epoch: u64,
    file: String,
}

/// A directory of persisted models with a `CURRENT` pointer.
#[derive(Debug)]
pub struct ModelZoo {
    dir: PathBuf,
}

impl ModelZoo {
    /// Open (creating if needed) the zoo directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> Result<ModelZoo, StoreError> {
        std::fs::create_dir_all(dir)?;
        Ok(ModelZoo {
            dir: dir.to_path_buf(),
        })
    }

    /// The blob file name for an epoch.
    pub fn blob_name(epoch: u64) -> String {
        format!("model-{epoch}.qmz")
    }

    /// Persist `model` as the live model for `epoch`: blob first, then
    /// the `CURRENT` pointer, each atomically.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and filesystem errors; on error the
    /// previously persisted model remains current.
    pub fn save(&self, epoch: u64, model: &Recommender) -> Result<(), StoreError> {
        let params = model.params();
        let mut tensors = Vec::with_capacity(params.len());
        let mut sections: Vec<Vec<u8>> = Vec::with_capacity(params.len());
        for (name, value) in params.named_tensors() {
            tensors.push(TensorMeta {
                name: name.to_string(),
                rows: value.rows(),
                cols: value.cols(),
            });
            let mut bytes = Vec::with_capacity(value.len() * 4);
            for v in value.data() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            sections.push(bytes);
        }
        // Int8 sections ride after the f32 sections when the model
        // carries a sidecar; the f32 sections stay authoritative.
        let mut quant = Vec::new();
        if let Some(sidecar) = params.quant() {
            for (param, rows, cols, scales, values) in sidecar.export() {
                quant.push(QuantMeta {
                    param,
                    rows,
                    cols,
                    scales,
                });
                sections.push(values.iter().map(|&v| v as u8).collect());
            }
        }
        let header = ZooHeader {
            format_version: ZOO_VERSION,
            epoch,
            cfg: *model.config(),
            model: model.model().clone(),
            vocab: model.vocab().clone(),
            lexicon: model.lexicon().clone(),
            tensors,
            quant,
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| StoreError::Io(format!("zoo header serialise: {e}")))?;
        let file = ModelZoo::blob_name(epoch);
        let blob_path = self.dir.join(&file);
        let refs: Vec<&[u8]> = sections.iter().map(Vec::as_slice).collect();
        blob::write_blob(&blob_path, &header_json, &refs)?;

        let pointer = serde_json::to_string(&CurrentPointer { epoch, file })
            .map_err(|e| StoreError::Io(format!("zoo pointer serialise: {e}")))?;
        qrec_store::atomic_write(&self.dir.join(CURRENT_FILE), pointer.as_bytes())?;
        Ok(())
    }

    /// Load the model the `CURRENT` pointer names, fully validating the
    /// blob. `Ok(None)` when the zoo has never saved a model.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the pointer, header, or any weight
    /// section fails validation — a damaged zoo refuses to load rather
    /// than serving garbage weights.
    pub fn load_current(&self) -> Result<Option<(u64, Recommender)>, StoreError> {
        let pointer_path = self.dir.join(CURRENT_FILE);
        let pointer_bytes = match std::fs::read(&pointer_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let pointer_text = String::from_utf8(pointer_bytes)
            .map_err(|_| StoreError::corrupt(&pointer_path, 0, "pointer is not UTF-8"))?;
        let pointer: CurrentPointer = serde_json::from_str(&pointer_text)
            .map_err(|e| StoreError::corrupt(&pointer_path, 0, format!("pointer parse: {e}")))?;

        let blob_path = self.dir.join(&pointer.file);
        let b = blob::read_blob(&blob_path)?;
        let header: ZooHeader = serde_json::from_str(&b.header)
            .map_err(|e| StoreError::corrupt(&blob_path, 0, format!("header parse: {e}")))?;
        // v1 (f32-only) and v2 (int8 sections) both load; version 0 and
        // anything from a future writer are refused with a typed error
        // rather than misparsing sections.
        if header.format_version == 0 || header.format_version > ZOO_VERSION {
            return Err(StoreError::corrupt(
                &blob_path,
                0,
                format!("unsupported zoo format version {}", header.format_version),
            ));
        }
        if header.epoch != pointer.epoch {
            return Err(StoreError::corrupt(
                &blob_path,
                0,
                format!(
                    "pointer names epoch {} but blob holds epoch {}",
                    pointer.epoch, header.epoch
                ),
            ));
        }
        let want_sections = header.tensors.len() + header.quant.len();
        if want_sections != b.sections.len() {
            return Err(StoreError::corrupt(
                &blob_path,
                0,
                format!(
                    "header lists {} tensor + {} int8 sections but blob has {}",
                    header.tensors.len(),
                    header.quant.len(),
                    b.sections.len()
                ),
            ));
        }

        let mut named = Vec::with_capacity(header.tensors.len());
        for (meta, section) in header.tensors.iter().zip(&b.sections) {
            let want = meta
                .rows
                .checked_mul(meta.cols)
                .and_then(|n| n.checked_mul(4));
            if want != Some(section.len()) {
                return Err(StoreError::corrupt(
                    &blob_path,
                    0,
                    format!(
                        "tensor {:?} declares {}x{} but its section holds {} bytes",
                        meta.name,
                        meta.rows,
                        meta.cols,
                        section.len()
                    ),
                ));
            }
            let mut data = Vec::with_capacity(section.len() / 4);
            for chunk in section.chunks_exact(4) {
                let mut b4 = [0u8; 4];
                b4.copy_from_slice(chunk);
                data.push(f32::from_le_bytes(b4));
            }
            named.push((
                meta.name.clone(),
                Tensor::from_vec(meta.rows, meta.cols, data),
            ));
        }
        let mut params = Params::from_named_tensors(named);

        // Rebuild the int8 sidecar from the persisted sections: the
        // packed panels come straight from the saved values, so a
        // quantized model round-trips without re-calibrating.
        if !header.quant.is_empty() {
            let mut entries = Vec::with_capacity(header.quant.len());
            for (i, meta) in header.quant.iter().enumerate() {
                let section = &b.sections[header.tensors.len() + i];
                let want = meta.rows.checked_mul(meta.cols);
                if want != Some(section.len()) {
                    return Err(StoreError::corrupt(
                        &blob_path,
                        0,
                        format!(
                            "int8 weight for param {} declares {}x{} but its section holds {} bytes",
                            meta.param,
                            meta.rows,
                            meta.cols,
                            section.len()
                        ),
                    ));
                }
                if meta.scales.is_empty() || meta.scales.iter().any(|s| !s.is_finite() || *s < 0.0)
                {
                    return Err(StoreError::corrupt(
                        &blob_path,
                        0,
                        format!("int8 weight for param {} has bad scales", meta.param),
                    ));
                }
                let values: Vec<i8> = section.iter().map(|&v| v as i8).collect();
                entries.push((
                    meta.param,
                    meta.rows,
                    meta.cols,
                    meta.scales.clone(),
                    values,
                ));
            }
            let sidecar = qrec_nn::QuantParams::import(&params, entries);
            params.set_quant(sidecar);
        }

        let rec = Recommender::from_parts(
            header.cfg,
            header.model,
            params,
            header.vocab,
            header.lexicon,
        );
        Ok(Some((header.epoch, rec)))
    }

    /// The zoo's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
