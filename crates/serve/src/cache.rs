//! LRU recommendation cache.
//!
//! Decoding is by far the most expensive step of serving, and analysts
//! re-issue near-identical queries constantly, so repeated input windows
//! are the common case. The cache maps *(model epoch, normalized input
//! window)* to the full ranked fragment lists; keying on the epoch means
//! a hot-swap ([`crate::registry::ModelRegistry::swap`]) implicitly
//! invalidates every entry of the old model without a flush.
//!
//! The window is already normalized by construction: `qrec-sql` parsing
//! resolves aliases, case-folds keywords, and collapses literals, so the
//! token sequence of a [`SessionContext`](qrec_core::SessionContext)
//! window is canonical. The key joins those tokens with an
//! out-of-vocabulary separator byte.

use parking_lot::Mutex;
use qrec_core::predict::PerKind;
use qrec_obs::Counter;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

/// Process-wide count of LRU evictions, registered lazily so the `DUMP`
/// exposition can distinguish capacity pressure from epoch turnover.
fn evictions() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qrec_obs::global().counter("serve.cache.evictions"))
}

/// Cache key: model epoch plus the canonical window text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Registry epoch of the model the entry was computed with.
    pub epoch: u64,
    /// Normalized input window (parser tokens joined with `\x1f`).
    pub window: String,
}

impl CacheKey {
    /// Build a key from a model epoch and the window's parser tokens.
    pub fn new(epoch: u64, tokens: &[String]) -> Self {
        CacheKey {
            epoch,
            window: tokens.join("\u{1f}"),
        }
    }
}

/// The cached value: every ranked fragment list (callers slice to the
/// requested `n`, so one entry serves all request sizes).
pub type CachedRanking = PerKind<Vec<String>>;

struct Inner {
    map: HashMap<CacheKey, (CachedRanking, u64)>,
    /// Recency index: logical tick -> key. The smallest tick is the
    /// least recently used entry.
    order: BTreeMap<u64, CacheKey>,
    tick: u64,
}

/// A bounded LRU cache of ranked recommendations.
///
/// `get` refreshes recency; `put` evicts the least recently used entry
/// once `capacity` is exceeded. Both are `O(log n)` under a single
/// mutex, which is negligible next to a model decode.
pub struct RecCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl RecCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RecCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Look up a key, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedRanking> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        let old = match g.map.get_mut(key) {
            Some((value, entry_tick)) => {
                let prev = *entry_tick;
                *entry_tick = tick;
                Some((value.clone(), prev))
            }
            None => None,
        };
        let (value, prev) = old?;
        g.order.remove(&prev);
        g.order.insert(tick, key.clone());
        Some(value)
    }

    /// Insert or refresh an entry, evicting the LRU entry if full.
    pub fn put(&self, key: CacheKey, value: CachedRanking) {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        if let Some((_, prev)) = g.map.insert(key.clone(), (value, tick)) {
            g.order.remove(&prev);
        }
        g.order.insert(tick, key);
        while g.map.len() > self.capacity {
            let Some((_, evicted)) = g.order.pop_first() else {
                break;
            };
            g.map.remove(&evicted);
            evictions().inc();
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(tag: &str) -> CachedRanking {
        PerKind {
            table: vec![tag.to_string()],
            column: vec![],
            function: vec![],
            literal: vec![],
        }
    }

    fn key(epoch: u64, s: &str) -> CacheKey {
        CacheKey::new(epoch, &[s.to_string()])
    }

    #[test]
    fn hit_and_miss() {
        let c = RecCache::new(4);
        assert!(c.get(&key(1, "a")).is_none());
        c.put(key(1, "a"), ranking("t"));
        assert_eq!(c.get(&key(1, "a")).unwrap().table, vec!["t"]);
        // A different epoch is a different key: stale models never hit.
        assert!(c.get(&key(2, "a")).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = RecCache::new(2);
        c.put(key(1, "a"), ranking("a"));
        c.put(key(1, "b"), ranking("b"));
        // Touch "a" so "b" is now the LRU entry.
        assert!(c.get(&key(1, "a")).is_some());
        c.put(key(1, "c"), ranking("c"));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(1, "a")).is_some());
        assert!(c.get(&key(1, "b")).is_none());
        assert!(c.get(&key(1, "c")).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let c = RecCache::new(2);
        c.put(key(1, "a"), ranking("a1"));
        c.put(key(1, "a"), ranking("a2"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1, "a")).unwrap().table, vec!["a2"]);
    }

    #[test]
    fn distinct_windows_distinct_keys() {
        let a = CacheKey::new(1, &["x".into(), "y".into()]);
        let b = CacheKey::new(1, &["xy".into()]);
        assert_ne!(a, b, "separator must prevent join collisions");
    }
}
