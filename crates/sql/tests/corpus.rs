//! A corpus of realistic SDSS- and SQLShare-style statements (drawn from
//! the query shapes in the paper's figures and the public SkyServer
//! sample-query page styles). Every statement must parse, round-trip
//! through the printer, and produce a sane template.

use qrec_sql::{extract_fragments, parse, template};

const CORPUS: &[&str] = &[
    // Figure 1 (SQLShare genomics session)
    "SELECT COUNT(DISTINCT type) FROM [experiments.csv]",
    "SELECT gene, type FROM [experiments.csv]",
    "SELECT type, COUNT(DISTINCT gene) AS genes FROM [experiments.csv] GROUP BY type \
     HAVING COUNT(DISTINCT gene) > 5",
    // Figure 2 (nested top-k SDSS queries)
    "SELECT TOP 10 ra, [dec] FROM SpecObj WHERE z BETWEEN 0.3 AND 0.4 AND zConf > 0.9",
    "SELECT TOP 10 s.ra, s.z FROM SpecObj s WHERE s.specClass IN (1, 3) ORDER BY s.z DESC",
    // Figure 4 (Jobs/Status/Servers)
    "SELECT j.target, CAST(j.estimate AS VARCHAR) AS estimate FROM Jobs j, Status s \
     WHERE j.queue = 'FULL' AND j.outputtype LIKE '%QUERY%'",
    // SkyServer-style sample queries
    "SELECT objID, ra, [dec], u, g, r, i, z FROM PhotoObj WHERE ra BETWEEN 179.5 AND 182.3 \
     AND [dec] BETWEEN -1.0 AND 1.8",
    "SELECT TOP 100 p.objID, p.r, s.z FROM PhotoObj p JOIN SpecObj s ON p.objID = s.bestObjID \
     WHERE s.z > 0.3 AND p.r < 17.77 ORDER BY s.z DESC",
    "SELECT COUNT(*) FROM PhotoObjAll WHERE type = 6 AND mode = 1",
    "SELECT run, camcol, field, COUNT(*) AS nObj FROM PhotoObj GROUP BY run, camcol, field \
     HAVING COUNT(*) > 1000 ORDER BY nObj DESC",
    "SELECT p.objID FROM PhotoObj p WHERE p.objID IN \
     (SELECT objID FROM SpecPhoto WHERE sciencePrimary = 1)",
    "SELECT s.plate, s.mjd, s.fiberID, AVG(s.sn1_0 + s.sn1_1) FROM SpecObjAll s \
     WHERE s.zWarning = 0 GROUP BY s.plate, s.mjd, s.fiberID",
    "SELECT name FROM Columns WHERE tableName = 'PhotoObj' ORDER BY name",
    "SELECT TOP 50 g.objID, g.petroR90_r / g.petroR50_r AS concentration FROM Galaxy g \
     WHERE g.petroR50_r > 0 ORDER BY concentration DESC",
    // Set operations and EXISTS
    "SELECT objID FROM Star WHERE g - r > 1.4 UNION SELECT objID FROM Galaxy WHERE g - r > 1.8",
    "SELECT f.field FROM Field f WHERE EXISTS (SELECT 1 FROM PhotoObj p WHERE p.field = f.field \
     AND p.type = 3)",
    // CASE and arithmetic
    "SELECT objID, CASE WHEN z < 0.1 THEN 'near' WHEN z < 0.5 THEN 'mid' ELSE 'far' END AS bin \
     FROM SpecObj",
    "SELECT (u - g) AS ug, (g - r) AS gr FROM Star WHERE clean = 1 AND (u - g) BETWEEN -0.5 AND 3.5",
    // SQLShare-style file tables and quoting
    "SELECT [sample id], [reading] FROM [ocean_temps_2019.csv] WHERE [reading] IS NOT NULL",
    "SELECT t1.site, AVG(t1.temp) FROM [sensors.csv] t1 GROUP BY t1.site",
    // CTE (rarer, supported)
    "WITH bright AS (SELECT objID FROM PhotoObj WHERE r < 16) \
     SELECT COUNT(*) FROM bright",
    // Deep nesting
    "SELECT x FROM (SELECT objID AS x FROM (SELECT objID FROM PhotoObj WHERE r < 20) inner1) outer1",
    // NOT variants
    "SELECT objID FROM PhotoObj WHERE type NOT IN (3, 6) AND name NOT LIKE 'bad%' \
     AND flags IS NOT NULL",
];

#[test]
fn corpus_parses() {
    for sql in CORPUS {
        parse(sql).unwrap_or_else(|e| panic!("corpus statement failed to parse: {sql}\n  {e}"));
    }
}

#[test]
fn corpus_roundtrips() {
    for sql in CORPUS {
        let q1 = parse(sql).unwrap();
        let printed = q1.to_string();
        let q2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to re-parse: {printed}\n  {e}"));
        assert_eq!(q1, q2, "round-trip mismatch for {sql}");
    }
}

#[test]
fn corpus_templates_are_stable_and_fragmentful() {
    for sql in CORPUS {
        let q = parse(sql).unwrap();
        let t = template(&q);
        // Templates re-parse and are idempotent.
        let qt = parse(t.statement())
            .unwrap_or_else(|e| panic!("template failed to parse: {}\n  {e}", t.statement()));
        assert_eq!(template(&qt), t, "template not idempotent for {sql}");
        // Every corpus query references at least one table and the
        // fragment extractor finds it.
        let f = extract_fragments(&q);
        assert!(!f.tables.is_empty(), "no tables extracted from {sql}");
    }
}

#[test]
fn corpus_templates_merge_structural_twins() {
    // The two Figure 2 style top-k queries share structure only when the
    // predicate shapes match; verify templates distinguish them.
    let a = template(&parse(CORPUS[3]).unwrap());
    let b = template(&parse(CORPUS[4]).unwrap());
    assert_ne!(a, b);
}
