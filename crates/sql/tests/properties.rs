//! Property-based tests for the SQL substrate.
//!
//! Two families: (1) robustness — the lexer/parser never panic on arbitrary
//! byte soup; (2) semantic invariants on a generator of *valid* queries —
//! print/parse fixed points, template invariance under fragment renaming,
//! tokenisation canonicality.

use proptest::prelude::*;
use qrec_sql::ast::Query;
use qrec_sql::{extract_fragments, parse, query_tokens, template};

// ---------------------------------------------------------------------
// Robustness on arbitrary input
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_and_parser_never_panic(input in ".{0,200}") {
        // Any outcome is fine as long as it is a Result, not a panic.
        let _ = qrec_sql::lexer::lex(&input);
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_sqlish_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("GROUP".to_string()),
                Just("BY".to_string()),
                Just("JOIN".to_string()),
                Just("ON".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("*".to_string()),
                Just("=".to_string()),
                Just("AND".to_string()),
                Just("NOT".to_string()),
                Just("IN".to_string()),
                Just("'s'".to_string()),
                Just("42".to_string()),
                "[a-z]{1,6}",
            ],
            0..24,
        )
    ) {
        let sql = words.join(" ");
        let _ = parse(&sql);
    }
}

// ---------------------------------------------------------------------
// A strategy for valid queries
// ---------------------------------------------------------------------

/// Table/column/function pools used by the query strategy; renaming maps
/// pool A to pool B for the template-invariance property.
const TABLES_A: [&str; 4] = ["SpecObj", "PhotoObj", "Jobs", "Neighbors"];
const TABLES_B: [&str; 4] = ["Galaxy", "Star", "Status", "Frame"];
const COLS_A: [&str; 5] = ["objid", "ra", "z", "queue", "target"];
const COLS_B: [&str; 5] = ["petror", "g", "zconf", "kind", "estimate"];
const FNS_A: [&str; 3] = ["COUNT", "AVG", "MIN"];
const FNS_B: [&str; 3] = ["SUM", "MAX", "ABS"];

#[derive(Debug, Clone)]
struct QSpec {
    table: usize,
    extra_table: Option<usize>,
    cols: Vec<usize>,
    agg: Option<(usize, usize)>,
    pred: Option<(usize, u8, u32)>,
    like: Option<usize>,
    distinct: bool,
    group_by: Option<usize>,
    order_by: Option<usize>,
    top: Option<u32>,
}

fn qspec() -> impl Strategy<Value = QSpec> {
    (
        0..4usize,
        proptest::option::of(0..4usize),
        proptest::collection::vec(0..5usize, 1..4),
        proptest::option::of((0..3usize, 0..5usize)),
        proptest::option::of((0..5usize, 0..3u8, 0..1000u32)),
        proptest::option::of(0..5usize),
        any::<bool>(),
        proptest::option::of(0..5usize),
        proptest::option::of(0..5usize),
        proptest::option::of(1..50u32),
    )
        .prop_map(
            |(table, extra_table, cols, agg, pred, like, distinct, group_by, order_by, top)| {
                QSpec {
                    table,
                    extra_table,
                    cols,
                    agg,
                    pred,
                    like,
                    distinct,
                    group_by,
                    order_by,
                    top,
                }
            },
        )
}

fn render(spec: &QSpec, tables: &[&str], cols: &[&str], fns: &[&str]) -> String {
    let mut proj: Vec<String> = spec.cols.iter().map(|&c| cols[c].to_string()).collect();
    if let Some((f, c)) = spec.agg {
        proj.push(format!("{}({})", fns[f], cols[c]));
    }
    let mut sql = String::from("SELECT ");
    if spec.distinct {
        sql.push_str("DISTINCT ");
    }
    if let Some(n) = spec.top {
        sql.push_str(&format!("TOP {n} "));
    }
    sql.push_str(&proj.join(", "));
    sql.push_str(&format!(" FROM {}", tables[spec.table]));
    if let Some(t2) = spec.extra_table {
        if t2 != spec.table {
            sql.push_str(&format!(
                " JOIN {} ON {}.{} = {}.{}",
                tables[t2], tables[spec.table], cols[0], tables[t2], cols[0]
            ));
        }
    }
    let mut preds: Vec<String> = Vec::new();
    if let Some((c, op, v)) = spec.pred {
        let op = match op {
            0 => "=",
            1 => ">",
            _ => "<",
        };
        preds.push(format!("{} {} {}", cols[c], op, v));
    }
    if let Some(c) = spec.like {
        preds.push(format!("{} LIKE '%x%'", cols[c]));
    }
    if !preds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&preds.join(" AND "));
    }
    if let Some(g) = spec.group_by {
        sql.push_str(&format!(" GROUP BY {}", cols[g]));
    }
    if let Some(o) = spec.order_by {
        sql.push_str(&format!(" ORDER BY {} DESC", cols[o]));
    }
    sql
}

fn parse_ok(sql: &str) -> Query {
    parse(sql).unwrap_or_else(|e| panic!("generated SQL must parse: {sql:?}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse → print → parse is a fixed point on valid queries.
    #[test]
    fn print_parse_fixed_point(spec in qspec()) {
        let sql = render(&spec, &TABLES_A, &COLS_A, &FNS_A);
        let q1 = parse_ok(&sql);
        let printed = q1.to_string();
        let q2 = parse_ok(&printed);
        prop_assert_eq!(&q1, &q2);
        // And printing is idempotent.
        prop_assert_eq!(printed, q2.to_string());
    }

    /// Templates are invariant under renaming of tables/columns/functions
    /// and changing literal values.
    #[test]
    fn template_invariant_under_renaming(spec in qspec()) {
        let qa = parse_ok(&render(&spec, &TABLES_A, &COLS_A, &FNS_A));
        let qb = parse_ok(&render(&spec, &TABLES_B, &COLS_B, &FNS_B));
        prop_assert_eq!(template(&qa), template(&qb));
    }

    /// Tokenisation is whitespace/case-of-keyword canonical: tokens of the
    /// parsed query equal tokens of its printed form.
    #[test]
    fn tokens_canonical(spec in qspec()) {
        let q = parse_ok(&render(&spec, &TABLES_A, &COLS_A, &FNS_A));
        let printed = q.to_string();
        let q2 = parse_ok(&printed);
        prop_assert_eq!(query_tokens(&q), query_tokens(&q2));
    }

    /// Fragment extraction only reports names that occur in the statement,
    /// and every projected column is reported.
    #[test]
    fn fragments_sound_and_complete(spec in qspec()) {
        let sql = render(&spec, &TABLES_A, &COLS_A, &FNS_A);
        let q = parse_ok(&sql);
        let f = extract_fragments(&q);
        for t in &f.tables {
            prop_assert!(sql.contains(t.as_str()), "table {t} not in {sql}");
        }
        for c in &f.columns {
            prop_assert!(sql.contains(c.as_str()), "column {c} not in {sql}");
        }
        for &ci in &spec.cols {
            prop_assert!(f.columns.contains(COLS_A[ci]));
        }
        prop_assert!(f.tables.contains(TABLES_A[spec.table]));
    }

    /// Alias resolution never changes a query's template.
    #[test]
    fn alias_resolution_preserves_template(spec in qspec()) {
        let q = parse_ok(&render(&spec, &TABLES_A, &COLS_A, &FNS_A));
        let r = qrec_sql::normalize::resolve_aliases(&q);
        prop_assert_eq!(template(&q), template(&r));
    }

    /// Templating is idempotent: template(parse(template(q))) == template(q).
    #[test]
    fn template_idempotent(spec in qspec()) {
        let q = parse_ok(&render(&spec, &TABLES_A, &COLS_A, &FNS_A));
        let t1 = template(&q);
        let qt = parse_ok(t1.statement());
        let t2 = template(&qt);
        prop_assert_eq!(t1, t2);
    }
}
