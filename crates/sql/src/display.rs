//! Canonical SQL rendering of the AST.
//!
//! [`Query`] (and every sub-node) implements [`std::fmt::Display`]. The
//! output is a single-line, canonically spaced statement. Parsing the
//! printed form yields the same AST (`parse ∘ print = id`), which the
//! property tests in this crate verify.

use crate::ast::*;
use std::fmt::{self, Write};

/// True if the identifier can be printed bare (no quoting needed).
fn is_bare_ident(s: &str) -> bool {
    s.as_bytes()
        .first()
        .is_some_and(|b| b.is_ascii_alphabetic())
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b == b'#')
        && crate::token::Keyword::from_word(s).is_none()
}

fn write_ident(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    if is_bare_ident(s) {
        f.write_str(s)
    } else {
        write!(f, "[{s}]")
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.table {
            write_ident(f, t)?;
            f.write_char('.')?;
        }
        write_ident(f, &self.column)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => f.write_str(n),
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Boolean(true) => f.write_str("TRUE"),
            Literal::Boolean(false) => f.write_str("FALSE"),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Wildcard => f.write_str("*"),
            Expr::Binary { left, op, right } => {
                write!(f, "{left} {} {right}", op.as_str())
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT {expr}"),
                UnaryOp::Neg => write!(f, "-{expr}"),
                UnaryOp::Pos => write!(f, "+{expr}"),
            },
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                f.write_str(name)?;
                f.write_char('(')?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_char(')')
            }
            Expr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            Expr::Case {
                operand,
                arms,
                else_result,
            } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in arms {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => {
                write!(
                    f,
                    "{expr} {}BETWEEN {low} AND {high}",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::InList {
                expr,
                negated,
                list,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_char(')')
            }
            Expr::InSubquery {
                expr,
                negated,
                subquery,
            } => write!(
                f,
                "{expr} {}IN ({subquery})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Exists { negated, subquery } => write!(
                f,
                "{}EXISTS ({subquery})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::Like {
                expr,
                negated,
                pattern,
            } => write!(
                f,
                "{expr} {}LIKE {pattern}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Nested(e) => write!(f, "({e})"),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(t) => {
                write_ident(f, t)?;
                f.write_str(".*")
            }
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    f.write_str(" AS ")?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                for (i, part) in name.iter().enumerate() {
                    if i > 0 {
                        f.write_char('.')?;
                    }
                    write_ident(f, part)?;
                }
                if let Some(a) = alias {
                    f.write_str(" AS ")?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
            TableRef::Derived { subquery, alias } => {
                write!(f, "({subquery})")?;
                if let Some(a) = alias {
                    f.write_str(" AS ")?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
            TableRef::Join {
                left,
                kind,
                right,
                on,
            } => {
                write!(f, "{left} {} {right}", kind.as_str())?;
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        if let Some(top) = &self.top {
            write!(f, "TOP {top} ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::SetOp { left, op, right } => {
                write!(f, "{left} {} {right}", op.as_str())
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.with.is_empty() {
            f.write_str("WITH ")?;
            for (i, cte) in self.with.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_ident(f, &cte.name)?;
                write!(f, " AS ({})", cte.query)?;
            }
            f.write_char(' ')?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", o.expr)?;
                match o.ascending {
                    Some(true) => f.write_str(" ASC")?,
                    Some(false) => f.write_str(" DESC")?,
                    None => {}
                }
            }
        }
        if let Some(l) = &self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = &self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    /// parse → print → parse must be a fixed point.
    fn roundtrip(sql: &str) {
        let q1 = parse(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let printed = q1.to_string();
        let q2 = parse(&printed).unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        assert_eq!(q1, q2, "roundtrip mismatch for {sql:?} -> {printed:?}");
    }

    #[test]
    fn roundtrip_corpus() {
        for sql in [
            "SELECT * FROM PhotoTag",
            "SELECT 1",
            "SELECT DISTINCT type FROM Experiments",
            "SELECT TOP 10 ra, [dec] FROM SpecObj WHERE z BETWEEN 0.3 AND 0.4",
            "SELECT a AS x, b AS y FROM t WHERE x = 1 OR y = 2 AND z = 3",
            "SELECT COUNT(*), COUNT(DISTINCT g), AVG(r + 1) FROM t GROUP BY g HAVING COUNT(*) > 2",
            "SELECT s.ra FROM SpecObj AS s INNER JOIN PhotoObj AS p ON s.objid = p.objid",
            "SELECT * FROM a LEFT JOIN b ON a.x = b.x RIGHT JOIN c ON b.y = c.y",
            "SELECT * FROM a CROSS JOIN b",
            "SELECT x FROM (SELECT DISTINCT gene AS x FROM e) AS d",
            "SELECT * FROM t WHERE id IN (SELECT id FROM u) AND EXISTS (SELECT 1 FROM v)",
            "SELECT * FROM t WHERE c NOT LIKE '%x%' AND d IS NOT NULL AND e NOT IN (1, 2)",
            "SELECT a FROM t UNION SELECT b FROM u UNION ALL SELECT c FROM v",
            "SELECT a FROM t EXCEPT SELECT a FROM u INTERSECT SELECT a FROM v",
            "SELECT CASE WHEN z > 1 THEN 'far' ELSE 'near' END FROM t",
            "SELECT CASE k WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM t",
            "SELECT CAST(x AS VARCHAR), CAST(y AS DECIMAL(10,2)) FROM t",
            "SELECT name FROM t WHERE n > (SELECT AVG(n) FROM t)",
            "SELECT type, COUNT(*) AS c FROM e GROUP BY type ORDER BY c DESC, type LIMIT 10 OFFSET 20",
            "SELECT -x, +y, NOT z FROM t",
            "SELECT a || '-' || b FROM t",
            "SELECT t.* FROM t",
            "SELECT * FROM BestDR7.dbo.PhotoObjAll AS p",
            "SELECT 'o''brien'",
            "SELECT [weird col] FROM [my table.csv]",
            "SELECT a FROM t WHERE (a + 1) * 2 = 4",
            "SELECT x FROM t WHERE y IS NULL ORDER BY x",
            "WITH hot AS (SELECT objid FROM SpecObj WHERE z > 1) SELECT COUNT(*) FROM hot",
            "WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM a, b",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn print_is_canonical_single_line() {
        let q = parse("SELECT   a ,\n\tb FROM    t\nWHERE a=1").unwrap();
        assert_eq!(q.to_string(), "SELECT a, b FROM t WHERE a = 1");
    }

    #[test]
    fn quoting_only_when_needed() {
        let q = parse("SELECT [plain], [has space] FROM t").unwrap();
        assert_eq!(q.to_string(), "SELECT plain, [has space] FROM t");
    }

    #[test]
    fn keyword_shaped_ident_stays_quoted() {
        // [dec] is a keyword-free but commonly bracketed SDSS column; [top]
        // would collide with the TOP keyword and must stay quoted.
        let q = parse("SELECT [top] FROM t").unwrap();
        assert_eq!(q.to_string(), "SELECT [top] FROM t");
    }
}
