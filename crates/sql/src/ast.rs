//! Abstract syntax tree for the `qrec` SQL dialect.
//!
//! The AST is deliberately close to the grammar the SDSS / SQLShare
//! workloads exercise: single `SELECT` statements with joins, derived
//! tables, scalar and `IN`/`EXISTS` subqueries, set operations, grouping,
//! `TOP`/`LIMIT`, `CASE`, and `CAST`. Templates (Definition 5 of the paper)
//! are derived from this tree by [`mod@crate::template`].

use serde::{Deserialize, Serialize};

/// A reference to a column, optionally qualified: `t.x` or `x`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Optional table-or-alias qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A qualified column reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Numeric literal, verbatim text (`3`, `0.17`, `1e9`).
    Number(String),
    /// String literal (quotes stripped).
    String(String),
    /// `TRUE` / `FALSE`.
    Boolean(bool),
    /// `NULL`.
    Null,
}

/// Binary operators, including comparisons and logical connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Mul,
    Div,
    Mod,
    Concat,
    And,
    Or,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }

    /// True for `AND` / `OR`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,
    Neg,
    Pos,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// `*` inside `COUNT(*)`.
    Wildcard,
    /// `left op right`.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `op expr`.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call `name(args)`, optionally `name(DISTINCT arg)`.
    Function {
        /// Function name as written (case preserved).
        name: String,
        /// Argument expressions. `COUNT(*)` has a single [`Expr::Wildcard`].
        args: Vec<Expr>,
        /// Whether `DISTINCT` appears before the arguments.
        distinct: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Expression being cast.
        expr: Box<Expr>,
        /// Target type name, e.g. `VARCHAR`, `FLOAT`.
        data_type: String,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Optional operand for the simple-CASE form.
        operand: Option<Box<Expr>>,
        /// `(when, then)` arms.
        arms: Vec<(Expr, Expr)>,
        /// Optional `ELSE` result.
        else_result: Option<Box<Expr>>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (list…)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `NOT IN`.
        negated: bool,
        /// The list of candidate expressions.
        list: Vec<Expr>,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `NOT IN`.
        negated: bool,
        /// The subquery.
        subquery: Box<Query>,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// True for `NOT EXISTS`.
        negated: bool,
        /// The subquery.
        subquery: Box<Query>,
    },
    /// A scalar subquery `(SELECT …)` used as an expression.
    Subquery(Box<Query>),
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
        /// Pattern expression (usually a string literal).
        pattern: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Explicit parentheses, preserved so printing round-trips.
    Nested(Box<Expr>),
}

/// One item of the `SELECT` projection list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// Bare `*`.
    Wildcard,
    /// `t.*`.
    QualifiedWildcard(String),
    /// `expr [AS alias]`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

impl JoinKind {
    /// SQL spelling, e.g. `LEFT JOIN`.
    pub fn as_str(&self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Full => "FULL JOIN",
            JoinKind::Cross => "CROSS JOIN",
        }
    }
}

/// A table expression in the `FROM` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableRef {
    /// A named table, optionally `db.schema.table`-qualified and aliased.
    Named {
        /// Dotted name parts; last element is the table name.
        name: Vec<String>,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A parenthesised subquery with an optional alias.
    Derived {
        /// The subquery.
        subquery: Box<Query>,
        /// Optional alias.
        alias: Option<String>,
    },
    /// `left <kind> JOIN right [ON predicate]`.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// Right input.
        right: Box<TableRef>,
        /// `ON` predicate; `None` for `CROSS JOIN`.
        on: Option<Expr>,
    },
}

impl TableRef {
    /// The alias if set, else the table name for [`TableRef::Named`].
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Named { name, alias } => {
                alias.as_deref().or_else(|| name.last().map(|s| s.as_str()))
            }
            TableRef::Derived { alias, .. } => alias.as_deref(),
            TableRef::Join { .. } => None,
        }
    }
}

/// An `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderByItem {
    /// The sort expression.
    pub expr: Expr,
    /// `None` (unspecified), `Some(true)` for `ASC`, `Some(false)` for `DESC`.
    pub ascending: Option<bool>,
}

/// The core `SELECT … FROM … WHERE … GROUP BY … HAVING …` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// `TOP n` (SQL Server style), if present.
    pub top: Option<Expr>,
    /// Projection list; never empty after parsing.
    pub projection: Vec<SelectItem>,
    /// `FROM` items (comma-separated); empty for `SELECT 1`-style queries.
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// Set operations combining two query bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SetOp {
    Union,
    UnionAll,
    Except,
    Intersect,
}

impl SetOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::UnionAll => "UNION ALL",
            SetOp::Except => "EXCEPT",
            SetOp::Intersect => "INTERSECT",
        }
    }
}

/// A query body: either a plain `SELECT` or a set operation over two bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SetExpr {
    /// Plain select block.
    Select(Box<Select>),
    /// `left OP right`.
    SetOp {
        /// Left body.
        left: Box<SetExpr>,
        /// Which set operation.
        op: SetOp,
        /// Right body.
        right: Box<SetExpr>,
    },
}

/// A common table expression: `name AS (query)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cte {
    /// The binding name.
    pub name: String,
    /// The defining query.
    pub query: Query,
}

/// A complete query: optional CTEs, body, `ORDER BY` / `LIMIT` / `OFFSET`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// `WITH` common table expressions, in declaration order.
    #[serde(default)]
    pub with: Vec<Cte>,
    /// The body.
    pub body: SetExpr,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT n`.
    pub limit: Option<Expr>,
    /// `OFFSET n`.
    pub offset: Option<Expr>,
}

impl Query {
    /// Wrap a [`Select`] into a bare query.
    pub fn from_select(select: Select) -> Self {
        Query {
            with: Vec::new(),
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// The outermost `SELECT` block of the left-most branch of the body.
    pub fn leftmost_select(&self) -> &Select {
        let mut body = &self.body;
        loop {
            match body {
                SetExpr::Select(s) => return s,
                SetExpr::SetOp { left, .. } => body = left,
            }
        }
    }
}

/// Visitor-style traversal helpers used by fragment and template extraction.
impl Expr {
    /// Call `f` on this expression and every sub-expression (pre-order).
    /// Subqueries are *not* entered; callers that need to recurse into
    /// queries handle [`Expr::Subquery`] and friends themselves.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Nested(expr)
            | Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case {
                operand,
                arms,
                else_result,
            } => {
                if let Some(op) = operand {
                    op.walk(f);
                }
                for (w, t) in arms {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_result {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
            Expr::Exists { .. } | Expr::Subquery(_) => {}
        }
    }

    /// Every embedded subquery directly inside this expression tree.
    pub fn subqueries(&self) -> Vec<&Query> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            Expr::InSubquery { subquery, .. } => out.push(subquery.as_ref()),
            Expr::Exists { subquery, .. } => out.push(subquery.as_ref()),
            Expr::Subquery(q) => out.push(q.as_ref()),
            _ => {}
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_constructors() {
        assert_eq!(
            ColumnRef::bare("x"),
            ColumnRef {
                table: None,
                column: "x".into()
            }
        );
        assert_eq!(
            ColumnRef::qualified("t", "x"),
            ColumnRef {
                table: Some("t".into()),
                column: "x".into()
            }
        );
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef::Named {
            name: vec!["dbo".into(), "Jobs".into()],
            alias: Some("j".into()),
        };
        assert_eq!(t.binding_name(), Some("j"));
        let t = TableRef::Named {
            name: vec!["Jobs".into()],
            alias: None,
        };
        assert_eq!(t.binding_name(), Some("Jobs"));
    }

    #[test]
    fn walk_visits_all_nodes() {
        // (a + 1) AND b LIKE 'x%'
        let e = Expr::Binary {
            left: Box::new(Expr::Nested(Box::new(Expr::Binary {
                left: Box::new(Expr::Column(ColumnRef::bare("a"))),
                op: BinaryOp::Plus,
                right: Box::new(Expr::Literal(Literal::Number("1".into()))),
            }))),
            op: BinaryOp::And,
            right: Box::new(Expr::Like {
                expr: Box::new(Expr::Column(ColumnRef::bare("b"))),
                negated: false,
                pattern: Box::new(Expr::Literal(Literal::String("x%".into()))),
            }),
        };
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 8);
    }

    #[test]
    fn subqueries_collects_all_kinds() {
        let sub = Query::from_select(Select {
            distinct: false,
            top: None,
            projection: vec![SelectItem::Wildcard],
            from: vec![],
            selection: None,
            group_by: vec![],
            having: None,
        });
        let e = Expr::Binary {
            left: Box::new(Expr::InSubquery {
                expr: Box::new(Expr::Column(ColumnRef::bare("x"))),
                negated: false,
                subquery: Box::new(sub.clone()),
            }),
            op: BinaryOp::And,
            right: Box::new(Expr::Exists {
                negated: true,
                subquery: Box::new(sub),
            }),
        };
        assert_eq!(e.subqueries().len(), 2);
    }

    #[test]
    fn leftmost_select_descends_set_ops() {
        let mk = |d| {
            SetExpr::Select(Box::new(Select {
                distinct: d,
                top: None,
                projection: vec![SelectItem::Wildcard],
                from: vec![],
                selection: None,
                group_by: vec![],
                having: None,
            }))
        };
        let q = Query {
            with: vec![],
            body: SetExpr::SetOp {
                left: Box::new(SetExpr::SetOp {
                    left: Box::new(mk(true)),
                    op: SetOp::Union,
                    right: Box::new(mk(false)),
                }),
                op: SetOp::Except,
                right: Box::new(mk(false)),
            },
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert!(q.leftmost_select().distinct);
    }
}
