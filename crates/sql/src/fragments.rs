//! Query fragment extraction (Definition 4 of the paper).
//!
//! A *fragment* is a table, column, function, or literal appearing in a
//! query. [`FragmentSet`] holds the four sets; [`extract`] walks the whole
//! query including subqueries, joins, set operations, and derived tables.
//!
//! Numeric literals are normalised to the `<NUM>` token, mirroring the
//! paper's pre-processing (Section 5.4.1), so the literal vocabulary is
//! dominated by meaningful strings rather than unbounded numbers.

use crate::ast::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Placeholder used for all numeric literals.
pub const NUM_TOKEN: &str = "<NUM>";

/// Which of the four fragment kinds a fragment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FragmentKind {
    /// Table names.
    Table,
    /// Column names.
    Column,
    /// Function names (including `CAST`).
    Function,
    /// Literal values (numbers collapsed to `<NUM>`).
    Literal,
}

impl FragmentKind {
    /// All four kinds, in canonical order.
    pub const ALL: [FragmentKind; 4] = [
        FragmentKind::Table,
        FragmentKind::Column,
        FragmentKind::Function,
        FragmentKind::Literal,
    ];

    /// Lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            FragmentKind::Table => "table",
            FragmentKind::Column => "column",
            FragmentKind::Function => "function",
            FragmentKind::Literal => "literal",
        }
    }
}

/// The four fragment sets of a query. Sets are ordered (`BTreeSet`) so all
/// downstream iteration is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentSet {
    /// `tables(Q)`.
    pub tables: BTreeSet<String>,
    /// `columns(Q)`.
    pub columns: BTreeSet<String>,
    /// `functions(Q)`.
    pub functions: BTreeSet<String>,
    /// `literals(Q)`.
    pub literals: BTreeSet<String>,
}

impl FragmentSet {
    /// The set for one fragment kind.
    pub fn of(&self, kind: FragmentKind) -> &BTreeSet<String> {
        match kind {
            FragmentKind::Table => &self.tables,
            FragmentKind::Column => &self.columns,
            FragmentKind::Function => &self.functions,
            FragmentKind::Literal => &self.literals,
        }
    }

    /// Mutable access to the set for one fragment kind.
    pub fn of_mut(&mut self, kind: FragmentKind) -> &mut BTreeSet<String> {
        match kind {
            FragmentKind::Table => &mut self.tables,
            FragmentKind::Column => &mut self.columns,
            FragmentKind::Function => &mut self.functions,
            FragmentKind::Literal => &mut self.literals,
        }
    }

    /// Total number of fragments across all kinds.
    pub fn len(&self) -> usize {
        self.tables.len() + self.columns.len() + self.functions.len() + self.literals.len()
    }

    /// True if all four sets are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Union in another fragment set.
    pub fn extend(&mut self, other: &FragmentSet) {
        for kind in FragmentKind::ALL {
            let dst = self.of_mut(kind);
            for v in other.of(kind) {
                dst.insert(v.clone());
            }
        }
    }

    /// Iterate `(kind, fragment)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (FragmentKind, &str)> {
        FragmentKind::ALL
            .into_iter()
            .flat_map(move |k| self.of(k).iter().map(move |s| (k, s.as_str())))
    }
}

/// Extract the fragment sets of a query (recursing into every subquery).
///
/// Aliases are *not* fragments: a column qualifier that matches a known
/// table alias contributes the underlying table name instead (callers
/// usually run [`crate::normalize::resolve_aliases`] first, which makes
/// this moot, but extraction is robust either way).
pub fn extract(query: &Query) -> FragmentSet {
    let mut out = FragmentSet::default();
    collect_query(query, &mut out);
    out
}

fn collect_query(query: &Query, out: &mut FragmentSet) {
    for cte in &query.with {
        collect_query(&cte.query, out);
    }
    collect_set_expr(&query.body, out);
    // A CTE binding is an alias for its defining query, not a base
    // table: remove it if the body referenced it as a table name.
    for cte in &query.with {
        out.tables.remove(&cte.name);
    }
    for o in &query.order_by {
        collect_expr(&o.expr, out);
    }
    if let Some(l) = &query.limit {
        collect_expr(l, out);
    }
    if let Some(o) = &query.offset {
        collect_expr(o, out);
    }
}

fn collect_set_expr(body: &SetExpr, out: &mut FragmentSet) {
    match body {
        SetExpr::Select(s) => collect_select(s, out),
        SetExpr::SetOp { left, right, .. } => {
            collect_set_expr(left, out);
            collect_set_expr(right, out);
        }
    }
}

fn collect_select(select: &Select, out: &mut FragmentSet) {
    if let Some(top) = &select.top {
        collect_expr(top, out);
    }
    for item in &select.projection {
        match item {
            SelectItem::Wildcard => {}
            SelectItem::QualifiedWildcard(_) => {}
            SelectItem::Expr { expr, .. } => collect_expr(expr, out),
        }
    }
    for t in &select.from {
        collect_table_ref(t, out);
    }
    if let Some(w) = &select.selection {
        collect_expr(w, out);
    }
    for g in &select.group_by {
        collect_expr(g, out);
    }
    if let Some(h) = &select.having {
        collect_expr(h, out);
    }
}

fn collect_table_ref(t: &TableRef, out: &mut FragmentSet) {
    match t {
        TableRef::Named { name, .. } => {
            if let Some(table) = name.last() {
                out.tables.insert(table.clone());
            }
        }
        TableRef::Derived { subquery, .. } => collect_query(subquery, out),
        TableRef::Join {
            left, right, on, ..
        } => {
            collect_table_ref(left, out);
            collect_table_ref(right, out);
            if let Some(on) = on {
                collect_expr(on, out);
            }
        }
    }
}

fn collect_expr(expr: &Expr, out: &mut FragmentSet) {
    expr.walk(&mut |e| match e {
        Expr::Column(c) => {
            out.columns.insert(c.column.clone());
        }
        Expr::Literal(l) => {
            out.literals.insert(literal_token(l));
        }
        Expr::Function { name, .. } => {
            out.functions.insert(name.clone());
        }
        Expr::Cast { .. } => {
            // The paper counts CAST among a query's functions (Example 6).
            out.functions.insert("CAST".to_string());
        }
        Expr::IsNull { .. } => {
            // The paper counts the NULL of `IS NULL` as a literal
            // (Example 6: literals(Q) = {null}).
            out.literals.insert("NULL".to_string());
        }
        Expr::InSubquery { subquery, .. } | Expr::Exists { subquery, .. } => {
            collect_query(subquery, out);
        }
        Expr::Subquery(q) => collect_query(q, out),
        _ => {}
    });
}

/// The canonical fragment token of a literal: numbers collapse to
/// [`NUM_TOKEN`], strings keep their value, booleans and `NULL` keep their
/// SQL spelling.
pub fn literal_token(l: &Literal) -> String {
    match l {
        Literal::Number(_) => NUM_TOKEN.to_string(),
        Literal::String(s) => s.clone(),
        Literal::Boolean(true) => "TRUE".to_string(),
        Literal::Boolean(false) => "FALSE".to_string(),
        Literal::Null => "NULL".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn frags(sql: &str) -> FragmentSet {
        extract(&parse(sql).unwrap())
    }

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_example_6() {
        // Figure 4 of the paper (MIN folded in for the full Example 6 sets).
        let f = frags(
            "SELECT j.target, CAST(j.estimate AS VARCHAR) AS estimate \
             FROM Jobs j, Status s \
             WHERE j.queue IN (SELECT MIN(queue) FROM Servers) \
             AND j.outputtype LIKE '%QUERY%' AND s.status IS NULL",
        );
        assert_eq!(f.tables, set(&["Jobs", "Status", "Servers"]));
        assert_eq!(
            f.columns,
            set(&["target", "estimate", "queue", "outputtype", "status"])
        );
        assert_eq!(f.functions, set(&["CAST", "MIN"]));
        assert_eq!(f.literals, set(&["%QUERY%", "NULL"]));
    }

    #[test]
    fn numbers_collapse_to_num_token() {
        let f = frags("SELECT * FROM t WHERE a > 5 AND b < 7.5");
        assert_eq!(f.literals, set(&[NUM_TOKEN]));
    }

    #[test]
    fn subqueries_are_recursed() {
        let f = frags(
            "SELECT x FROM (SELECT gene AS x FROM Experiments) d \
             WHERE x IN (SELECT g FROM Other) AND EXISTS (SELECT 1 FROM Third)",
        );
        assert_eq!(f.tables, set(&["Experiments", "Other", "Third"]));
        assert!(f.columns.contains("gene"));
        assert!(f.columns.contains("g"));
    }

    #[test]
    fn set_ops_and_order_by_covered() {
        let f = frags("SELECT a FROM t UNION SELECT b FROM u ORDER BY c LIMIT 3");
        assert_eq!(f.tables, set(&["t", "u"]));
        assert_eq!(f.columns, set(&["a", "b", "c"]));
        assert_eq!(f.literals, set(&[NUM_TOKEN]));
    }

    #[test]
    fn dotted_names_use_last_segment() {
        let f = frags("SELECT * FROM BestDR7.dbo.PhotoObjAll");
        assert_eq!(f.tables, set(&["PhotoObjAll"]));
    }

    #[test]
    fn wildcards_are_not_columns() {
        let f = frags("SELECT *, t.* , COUNT(*) FROM t");
        assert!(f.columns.is_empty());
        assert_eq!(f.functions, set(&["COUNT"]));
    }

    #[test]
    fn join_on_predicates_covered() {
        let f = frags("SELECT 1 FROM a JOIN b ON a.x = b.y");
        assert_eq!(f.tables, set(&["a", "b"]));
        assert_eq!(f.columns, set(&["x", "y"]));
    }

    #[test]
    fn fragment_set_len_and_iter() {
        let f = frags("SELECT COUNT(x) FROM t WHERE s = 'v'");
        assert_eq!(f.len(), 5); // t; x, s; COUNT; 'v'
        assert!(!f.is_empty());
        let kinds: Vec<_> = f.iter().map(|(k, _)| k).collect();
        assert_eq!(
            kinds,
            vec![
                FragmentKind::Table,
                FragmentKind::Column,
                FragmentKind::Column,
                FragmentKind::Function,
                FragmentKind::Literal
            ]
        );
    }

    #[test]
    fn extend_unions() {
        let mut a = frags("SELECT x FROM t");
        let b = frags("SELECT y FROM u");
        a.extend(&b);
        assert_eq!(a.tables, set(&["t", "u"]));
        assert_eq!(a.columns, set(&["x", "y"]));
    }

    #[test]
    fn cte_names_are_not_table_fragments() {
        let f = frags(
            "WITH hot AS (SELECT objid FROM SpecObj WHERE z > 1)              SELECT COUNT(*) FROM hot",
        );
        assert_eq!(f.tables, set(&["SpecObj"]));
        assert!(f.columns.contains("objid") && f.columns.contains("z"));
    }

    #[test]
    fn top_expression_counts_as_literal() {
        let f = frags("SELECT TOP 10 x FROM t");
        assert_eq!(f.literals, set(&[NUM_TOKEN]));
    }
}
