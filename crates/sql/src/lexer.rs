//! A hand-written SQL lexer.
//!
//! Produces a flat [`SpannedToken`] stream. Supports `--` line comments,
//! `/* … */` block comments, single-quoted strings with `''` escapes,
//! double-quoted and `[bracketed]` identifiers (the SDSS workload is SQL
//! Server flavoured), integer / decimal / scientific numbers, and the full
//! operator set of [`crate::token::Token`].

use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Keyword, Span, SpannedToken, Token};

/// Lex `input` into a token stream.
///
/// # Errors
///
/// Returns [`ParseError`] on unterminated strings/comments/quoted
/// identifiers or on characters outside the dialect.
pub fn lex(input: &str) -> Result<Vec<SpannedToken>, ParseError> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<SpannedToken>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            // A token every ~5 bytes is typical for SQL.
            out: Vec::with_capacity(src.len() / 5 + 4),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn push(&mut self, token: Token, start: usize) {
        self.out.push(SpannedToken {
            token,
            span: Span::new(start, self.pos),
        });
    }

    fn error(&self, kind: ParseErrorKind, at: usize) -> ParseError {
        ParseError::new(kind, Span::point(at))
    }

    fn run(mut self) -> Result<Vec<SpannedToken>, ParseError> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'-' if self.peek2() == Some(b'-') => self.line_comment(),
                b'/' if self.peek2() == Some(b'*') => self.block_comment(start)?,
                b'\'' => self.string_lit(start)?,
                b'"' => self.quoted_ident(start, b'"')?,
                b'[' => self.quoted_ident(start, b']')?,
                b'0'..=b'9' => self.number(start),
                b'.' if matches!(self.peek2(), Some(b'0'..=b'9')) => self.number(start),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.word(start),
                _ => self.operator(b, start)?,
            }
        }
        Ok(self.out)
    }

    fn line_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn block_comment(&mut self, start: usize) -> Result<(), ParseError> {
        self.pos += 2; // consume "/*"
        loop {
            match self.peek() {
                Some(b'*') if self.peek2() == Some(b'/') => {
                    self.pos += 2;
                    return Ok(());
                }
                Some(_) => self.pos += 1,
                None => return Err(self.error(ParseErrorKind::UnterminatedComment, start)),
            }
        }
    }

    fn string_lit(&mut self, start: usize) -> Result<(), ParseError> {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        value.push('\'');
                        self.pos += 1;
                    } else {
                        self.push(Token::StringLit(value), start);
                        return Ok(());
                    }
                }
                Some(_) => {
                    // Re-slice to keep UTF-8 intact: find the char at
                    // pos-1. `bump` saw a byte there, so a char always
                    // starts there; degrade to the unterminated error
                    // rather than panic if that invariant ever breaks.
                    let ch_start = self.pos - 1;
                    let Some(ch) = self.src[ch_start..].chars().next() else {
                        return Err(self.error(ParseErrorKind::UnterminatedString, start));
                    };
                    value.push(ch);
                    self.pos = ch_start + ch.len_utf8();
                }
                None => return Err(self.error(ParseErrorKind::UnterminatedString, start)),
            }
        }
    }

    fn quoted_ident(&mut self, start: usize, close: u8) -> Result<(), ParseError> {
        self.pos += 1; // opening quote/bracket
        let body_start = self.pos;
        while let Some(b) = self.peek() {
            if b == close {
                let value = self.src[body_start..self.pos].to_string();
                self.pos += 1;
                self.push(Token::QuotedIdent(value), start);
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.error(ParseErrorKind::UnterminatedQuotedIdent, start))
    }

    fn number(&mut self, start: usize) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        } else if self.peek() == Some(b'.') && start != self.pos {
            // trailing dot as in "1." — consume it as part of the number
            // only when followed by a non-ident char; otherwise leave for Dot.
            if !matches!(
                self.peek2(),
                Some(b'A'..=b'Z' | b'a'..=b'z' | b'_' | b'"' | b'[')
            ) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut ahead = self.pos + 1;
            if matches!(self.bytes.get(ahead), Some(b'+' | b'-')) {
                ahead += 1;
            }
            if matches!(self.bytes.get(ahead), Some(b'0'..=b'9')) {
                self.pos = ahead;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
        let text = self.src[start..self.pos].to_string();
        self.push(Token::Number(text), start);
    }

    fn word(&mut self, start: usize) {
        while matches!(
            self.peek(),
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'$' | b'#')
        ) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let token = match Keyword::from_word(text) {
            Some(kw) => Token::Keyword(kw),
            None => Token::Ident(text.to_string()),
        };
        self.push(token, start);
    }

    /// Lex a one- or two-byte operator. `b` is the byte at `start`,
    /// already peeked by the caller; consuming it here keeps this
    /// method panic-free.
    fn operator(&mut self, b: u8, start: usize) -> Result<(), ParseError> {
        self.pos += 1;
        let token = match b {
            b'=' => Token::Eq,
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    Token::LtEq
                }
                Some(b'>') => {
                    self.pos += 1;
                    Token::Neq
                }
                _ => Token::Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::GtEq
                } else {
                    Token::Gt
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::Neq
                } else {
                    return Err(self.error(ParseErrorKind::UnexpectedChar('!'), start));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    Token::Concat
                } else {
                    return Err(self.error(ParseErrorKind::UnexpectedChar('|'), start));
                }
            }
            b'+' => Token::Plus,
            b'-' => Token::Minus,
            b'*' => Token::Star,
            b'/' => Token::Slash,
            b'%' => Token::Percent,
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b',' => Token::Comma,
            b'.' => Token::Dot,
            b';' => Token::Semicolon,
            other => {
                let ch = if other.is_ascii() {
                    other as char
                } else {
                    // Report the full UTF-8 char, not a lone byte.
                    self.src[start..].chars().next().unwrap_or('?')
                };
                return Err(self.error(ParseErrorKind::UnexpectedChar(ch), start));
            }
        };
        self.push(token, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as Kw;

    fn toks(sql: &str) -> Vec<Token> {
        lex(sql).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lex_simple_select() {
        assert_eq!(
            toks("SELECT * FROM PhotoTag"),
            vec![
                Token::Keyword(Kw::Select),
                Token::Star,
                Token::Keyword(Kw::From),
                Token::Ident("PhotoTag".into()),
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select distinct"),
            vec![Token::Keyword(Kw::Select), Token::Keyword(Kw::Distinct)]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            toks("= <> != < <= > >= + - * / % ||"),
            vec![
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Concat,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            toks("1 3.14 0.5 1e9 2.5E-3 .75"),
            vec![
                Token::Number("1".into()),
                Token::Number("3.14".into()),
                Token::Number("0.5".into()),
                Token::Number("1e9".into()),
                Token::Number("2.5E-3".into()),
                Token::Number(".75".into()),
            ]
        );
    }

    #[test]
    fn number_dot_ident_is_projection() {
        // "t1.x" must not swallow the dot into a number when the table name
        // ends in a digit.
        assert_eq!(
            toks("t1.x"),
            vec![
                Token::Ident("t1".into()),
                Token::Dot,
                Token::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(
            toks("'hello' 'o''brien' '%QUERY%'"),
            vec![
                Token::StringLit("hello".into()),
                Token::StringLit("o'brien".into()),
                Token::StringLit("%QUERY%".into()),
            ]
        );
    }

    #[test]
    fn lex_quoted_identifiers() {
        assert_eq!(
            toks("\"my col\" [dbo table]"),
            vec![
                Token::QuotedIdent("my col".into()),
                Token::QuotedIdent("dbo table".into()),
            ]
        );
    }

    #[test]
    fn lex_comments() {
        assert_eq!(
            toks("SELECT -- trailing\n1 /* block\n comment */ + 2"),
            vec![
                Token::Keyword(Kw::Select),
                Token::Number("1".into()),
                Token::Plus,
                Token::Number("2".into()),
            ]
        );
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(lex("'abc").is_err());
        assert!(lex("\"abc").is_err());
        assert!(lex("[abc").is_err());
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn lex_rejects_stray_chars() {
        assert!(lex("SELECT ? FROM t").is_err());
        assert!(lex("SELECT ! FROM t").is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let tokens = lex("SELECT x").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 6));
        assert_eq!(tokens[1].span, Span::new(7, 8));
    }

    #[test]
    fn lex_unicode_in_strings() {
        assert_eq!(toks("'héllo ∑'"), vec![Token::StringLit("héllo ∑".into())]);
    }

    #[test]
    fn lex_idents_with_dollar_and_hash() {
        assert_eq!(
            toks("tmp#1 col$x"),
            vec![Token::Ident("tmp#1".into()), Token::Ident("col$x".into())]
        );
    }
}
