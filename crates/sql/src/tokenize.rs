//! Word-token sequences for the sequence models.
//!
//! The paper models query statements as sequences of word tokens
//! (Definition 1). [`query_tokens`] produces the canonical token sequence
//! of a query: keywords and operators in canonical spelling, identifiers
//! verbatim, numeric literals collapsed to `<NUM>` (Section 5.4.1), and
//! string literals kept as single quoted tokens (they are literal
//! fragments the models must predict).

use crate::ast::Query;
use crate::error::ParseError;
use crate::fragments::NUM_TOKEN;
use crate::lexer::lex;
use crate::token::Token;

/// Tokenise a query AST into the model vocabulary.
///
/// Operates on the canonical printed form so structurally equal queries
/// yield identical sequences regardless of input whitespace or quoting.
pub fn query_tokens(query: &Query) -> Vec<String> {
    // Canonical print then lex: the printer is the single source of
    // canonical spelling, so we never have two token spellings for one AST.
    let printed = query.to_string();
    // qrec-lint: allow(no-panic-in-hot-path) -- print-then-lex roundtrip is property-tested (parse ∘ print = id); a failure here is a printer bug
    sql_tokens(&printed).expect("canonical print always lexes")
}

/// Tokenise raw SQL text into the model vocabulary.
///
/// # Errors
///
/// Returns [`ParseError`] if the text does not lex.
pub fn sql_tokens(sql: &str) -> Result<Vec<String>, ParseError> {
    let tokens = lex(sql)?;
    let mut out = Vec::with_capacity(tokens.len());
    for t in tokens {
        out.push(model_token(&t.token));
    }
    Ok(out)
}

/// The model spelling of one lexical token.
fn model_token(t: &Token) -> String {
    match t {
        Token::Number(_) => NUM_TOKEN.to_string(),
        Token::StringLit(s) => format!("'{s}'"),
        Token::QuotedIdent(s) => s.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn toks(sql: &str) -> Vec<String> {
        query_tokens(&parse(sql).unwrap())
    }

    #[test]
    fn definition_1_example() {
        assert_eq!(
            toks("SELECT * FROM PhotoTag"),
            ["SELECT", "*", "FROM", "PhotoTag"]
        );
    }

    #[test]
    fn numbers_collapse() {
        assert_eq!(
            toks("SELECT a FROM t WHERE a > 17"),
            ["SELECT", "a", "FROM", "t", "WHERE", "a", ">", "<NUM>"]
        );
    }

    #[test]
    fn strings_stay_single_tokens() {
        let t = toks("SELECT a FROM t WHERE b LIKE '%QUERY%'");
        assert!(t.contains(&"'%QUERY%'".to_string()));
    }

    #[test]
    fn whitespace_invariance() {
        assert_eq!(toks("SELECT a FROM t"), toks("select   a\n\tFROM t"));
    }

    #[test]
    fn keywords_canonicalised_upper() {
        let t = toks("select distinct a from t order by a desc");
        assert_eq!(t[0], "SELECT");
        assert_eq!(t[1], "DISTINCT");
        assert!(t.contains(&"ORDER".to_string()) && t.contains(&"DESC".to_string()));
    }

    #[test]
    fn punctuation_tokens_present() {
        let t = toks("SELECT COUNT(*), b FROM t");
        assert_eq!(t, ["SELECT", "COUNT", "(", "*", ")", ",", "b", "FROM", "t"]);
    }

    #[test]
    fn quoted_idents_lose_quotes() {
        let t = toks("SELECT [my col] FROM [tbl.csv]");
        assert!(t.contains(&"my col".to_string()));
        assert!(t.contains(&"tbl.csv".to_string()));
    }

    #[test]
    fn sql_tokens_propagates_lex_errors() {
        assert!(sql_tokens("SELECT 'unterminated").is_err());
    }
}
