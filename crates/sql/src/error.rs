//! Error types for lexing and parsing.

use crate::token::{Span, Token};
use std::fmt;

/// What went wrong while lexing or parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A character the dialect does not use.
    UnexpectedChar(char),
    /// `'…` with no closing quote.
    UnterminatedString,
    /// `"…` or `[…` with no closing delimiter.
    UnterminatedQuotedIdent,
    /// `/* …` with no closing `*/`.
    UnterminatedComment,
    /// Token stream ended while the parser needed more input.
    UnexpectedEof {
        /// Human-readable description of what was expected.
        expected: String,
    },
    /// Parser found `got` where it expected `expected`.
    UnexpectedToken {
        /// Human-readable description of what was expected.
        expected: String,
        /// The offending token.
        got: Token,
    },
    /// Input contained trailing tokens after a complete statement.
    TrailingTokens {
        /// The first trailing token.
        got: Token,
    },
    /// The statement was syntactically valid but empty (e.g. only comments).
    EmptyInput,
}

/// A lexer/parser error with source location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Classification of the failure.
    pub kind: ParseErrorKind,
    /// Where in the input it happened (byte offsets).
    pub span: Span,
}

impl ParseError {
    /// Construct an error at the given span.
    pub fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character {c:?} at byte {}", self.span.start)
            }
            ParseErrorKind::UnterminatedString => {
                write!(f, "unterminated string literal at byte {}", self.span.start)
            }
            ParseErrorKind::UnterminatedQuotedIdent => write!(
                f,
                "unterminated quoted identifier at byte {}",
                self.span.start
            ),
            ParseErrorKind::UnterminatedComment => {
                write!(f, "unterminated block comment at byte {}", self.span.start)
            }
            ParseErrorKind::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseErrorKind::UnexpectedToken { expected, got } => write!(
                f,
                "expected {expected} but found {got} at byte {}",
                self.span.start
            ),
            ParseErrorKind::TrailingTokens { got } => write!(
                f,
                "trailing input starting with {got} at byte {}",
                self.span.start
            ),
            ParseErrorKind::EmptyInput => write!(f, "empty input"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_location() {
        let e = ParseError::new(ParseErrorKind::UnexpectedChar('?'), Span::point(7));
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn display_mentions_expectation() {
        let e = ParseError::new(
            ParseErrorKind::UnexpectedToken {
                expected: "FROM".into(),
                got: Token::Comma,
            },
            Span::point(3),
        );
        let s = e.to_string();
        assert!(s.contains("FROM") && s.contains(','));
    }
}
