//! Recursive-descent parser for the `qrec` SQL dialect.
//!
//! Entry point: [`parse`]. The grammar covers `SELECT` statements with
//! joins, derived tables, subqueries (scalar / `IN` / `EXISTS`), set
//! operations, `GROUP BY`/`HAVING`, `ORDER BY`, `TOP` and `LIMIT/OFFSET`,
//! `CASE`, `CAST`, and the standard predicate forms. Expressions use
//! precedence climbing.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::lex;
use crate::token::{Keyword as Kw, Span, SpannedToken, Token};

/// Parse a single SQL query. Trailing semicolons are allowed; any other
/// trailing input is an error.
///
/// # Errors
///
/// Returns [`ParseError`] for lexical errors, syntax errors, or trailing
/// tokens.
pub fn parse(sql: &str) -> Result<Query, ParseError> {
    let tokens = lex(sql)?;
    let mut parser = Parser::new(tokens);
    if parser.at_end() {
        return Err(ParseError::new(ParseErrorKind::EmptyInput, Span::point(0)));
    }
    let query = parser.query()?;
    while parser.eat(&Token::Semicolon) {}
    if let Some(t) = parser.peek_spanned() {
        return Err(ParseError::new(
            ParseErrorKind::TrailingTokens {
                got: t.token.clone(),
            },
            t.span,
        ));
    }
    Ok(query)
}

/// Parse a script containing multiple `;`-separated queries. Returns the
/// queries in order; empty statements (stray semicolons) are skipped.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_many(sql: &str) -> Result<Vec<Query>, ParseError> {
    let tokens = lex(sql)?;
    let mut parser = Parser::new(tokens);
    let mut out = Vec::new();
    while !parser.at_end() {
        if parser.eat(&Token::Semicolon) {
            continue;
        }
        out.push(parser.query()?);
        if !parser.at_end() && !parser.eat(&Token::Semicolon) {
            return Err(parser.expected(";"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<SpannedToken>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_spanned(&self) -> Option<&SpannedToken> {
        self.tokens.get(self.pos)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<&SpannedToken> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: Kw) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if *k == kw)
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.expected(kw.as_str()))
        }
    }

    fn expect(&mut self, token: Token) -> Result<(), ParseError> {
        if self.eat(&token) {
            Ok(())
        } else {
            Err(self.expected(&token.to_string()))
        }
    }

    fn expected(&self, what: &str) -> ParseError {
        match self.peek_spanned() {
            Some(t) => ParseError::new(
                ParseErrorKind::UnexpectedToken {
                    expected: what.to_string(),
                    got: t.token.clone(),
                },
                t.span,
            ),
            None => ParseError::new(
                ParseErrorKind::UnexpectedEof {
                    expected: what.to_string(),
                },
                Span::point(self.tokens.last().map_or(0, |t| t.span.end)),
            ),
        }
    }

    /// True if the upcoming tokens begin a query: `SELECT …` possibly behind
    /// one or more opening parentheses (`((SELECT …`).
    fn looking_at_query(&self) -> bool {
        let mut off = 0;
        while self.peek_at(off) == Some(&Token::LParen) {
            off += 1;
        }
        matches!(
            self.peek_at(off),
            Some(Token::Keyword(Kw::Select)) | Some(Token::Keyword(Kw::With))
        )
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s) | Token::QuotedIdent(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.expected("identifier")),
        }
    }

    // ---- query / set expressions ------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        let mut with = Vec::new();
        if self.eat_kw(Kw::With) {
            loop {
                let name = self.ident()?;
                self.expect_kw(Kw::As)?;
                self.expect(Token::LParen)?;
                let query = self.query()?;
                self.expect(Token::RParen)?;
                with.push(Cte { name, query });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw(Kw::Asc) {
                    Some(true)
                } else if self.eat_kw(Kw::Desc) {
                    Some(false)
                } else {
                    None
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Kw::Limit) {
            Some(self.expr()?)
        } else {
            None
        };
        let offset = if self.eat_kw(Kw::Offset) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Query {
            with,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr, ParseError> {
        let mut left = self.select_core()?;
        loop {
            let op = if self.eat_kw(Kw::Union) {
                if self.eat_kw(Kw::All) {
                    SetOp::UnionAll
                } else {
                    SetOp::Union
                }
            } else if self.eat_kw(Kw::Except) {
                SetOp::Except
            } else if self.eat_kw(Kw::Intersect) {
                SetOp::Intersect
            } else {
                break;
            };
            let right = self.select_core()?;
            left = SetExpr::SetOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn select_core(&mut self) -> Result<SetExpr, ParseError> {
        // Allow a parenthesised select block inside set operations.
        if self.peek() == Some(&Token::LParen) && {
            let mut off = 1;
            while self.peek_at(off) == Some(&Token::LParen) {
                off += 1;
            }
            matches!(self.peek_at(off), Some(Token::Keyword(Kw::Select)))
        } {
            self.expect(Token::LParen)?;
            let inner = self.set_expr()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        Ok(SetExpr::Select(Box::new(self.select_block()?)))
    }

    fn select_block(&mut self) -> Result<Select, ParseError> {
        self.expect_kw(Kw::Select)?;
        let distinct = if self.eat_kw(Kw::Distinct) {
            true
        } else {
            self.eat_kw(Kw::All);
            false
        };
        let top = if self.eat_kw(Kw::Top) {
            let e = self.primary_expr()?;
            Some(e)
        } else {
            None
        };
        let mut projection = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            projection.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw(Kw::From) {
            from.push(self.table_ref()?);
            while self.eat(&Token::Comma) {
                from.push(self.table_ref()?);
            }
        }
        let selection = if self.eat_kw(Kw::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Kw::Group) {
            self.expect_kw(Kw::By)?;
            group_by.push(self.expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw(Kw::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            top,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (
            Some(Token::Ident(_) | Token::QuotedIdent(_)),
            Some(Token::Dot),
            Some(Token::Star),
        ) = (self.peek(), self.peek_at(1), self.peek_at(2))
        {
            let table = self.ident()?;
            self.expect(Token::Dot)?;
            self.expect(Token::Star)?;
            return Ok(SelectItem::QualifiedWildcard(table));
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `AS ident` or a bare non-keyword identifier.
    fn optional_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw(Kw::As) {
            return Ok(Some(self.ident()?));
        }
        if matches!(self.peek(), Some(Token::Ident(_) | Token::QuotedIdent(_))) {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    // ---- table references --------------------------------------------

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut left = self.table_primary()?;
        loop {
            let kind = if self.eat_kw(Kw::Join) || {
                if self.eat_kw(Kw::Inner) {
                    self.expect_kw(Kw::Join)?;
                    true
                } else {
                    false
                }
            } {
                JoinKind::Inner
            } else if self.eat_kw(Kw::Left) {
                self.eat_kw(Kw::Outer);
                self.expect_kw(Kw::Join)?;
                JoinKind::Left
            } else if self.eat_kw(Kw::Right) {
                self.eat_kw(Kw::Outer);
                self.expect_kw(Kw::Join)?;
                JoinKind::Right
            } else if self.eat_kw(Kw::Full) {
                self.eat_kw(Kw::Outer);
                self.expect_kw(Kw::Join)?;
                JoinKind::Full
            } else if self.eat_kw(Kw::Cross) {
                self.expect_kw(Kw::Join)?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.table_primary()?;
            let on = if kind != JoinKind::Cross {
                if self.eat_kw(Kw::On) {
                    Some(self.expr()?)
                } else {
                    None
                }
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                kind,
                right: Box::new(right),
                on,
            };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> Result<TableRef, ParseError> {
        if self.eat(&Token::LParen) {
            // A derived table: ( query ) [alias]
            let subquery = self.query()?;
            self.expect(Token::RParen)?;
            let alias = self.optional_alias()?;
            return Ok(TableRef::Derived {
                subquery: Box::new(subquery),
                alias,
            });
        }
        let mut name = vec![self.ident()?];
        while self.peek() == Some(&Token::Dot) {
            // Only consume the dot if an identifier follows (not `t.*`).
            if matches!(
                self.peek_at(1),
                Some(Token::Ident(_) | Token::QuotedIdent(_))
            ) {
                self.expect(Token::Dot)?;
                name.push(self.ident()?);
            } else {
                break;
            }
        }
        let alias = self.optional_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Kw::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Kw::And) {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Kw::Not) {
            let expr = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            });
        }
        self.comparison_expr()
    }

    fn comparison_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.additive_expr()?;
        // postfix predicate forms
        let negated = self.eat_kw(Kw::Not);
        if self.eat_kw(Kw::Between) {
            let low = self.additive_expr()?;
            self.expect_kw(Kw::And)?;
            let high = self.additive_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_kw(Kw::Like) {
            let pattern = self.additive_expr()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                negated,
                pattern: Box::new(pattern),
            });
        }
        if self.eat_kw(Kw::In) {
            self.expect(Token::LParen)?;
            if self.looking_at_query() {
                let subquery = self.query()?;
                self.expect(Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    negated,
                    subquery: Box::new(subquery),
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                negated,
                list,
            });
        }
        if negated {
            return Err(self.expected("BETWEEN, LIKE, or IN after NOT"));
        }
        if self.eat_kw(Kw::Is) {
            let negated = self.eat_kw(Kw::Not);
            self.expect_kw(Kw::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinaryOp::Eq,
            Some(Token::Neq) => BinaryOp::Neq,
            Some(Token::Lt) => BinaryOp::Lt,
            Some(Token::LtEq) => BinaryOp::LtEq,
            Some(Token::Gt) => BinaryOp::Gt,
            Some(Token::GtEq) => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive_expr()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn additive_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Plus,
                Some(Token::Minus) => BinaryOp::Minus,
                Some(Token::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.eat(&Token::Plus) {
            let expr = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Pos,
                expr: Box::new(expr),
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Number(n)) => {
                let n = n.clone();
                self.pos += 1;
                Ok(Expr::Literal(Literal::Number(n)))
            }
            Some(Token::StringLit(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Expr::Literal(Literal::String(s)))
            }
            Some(Token::Keyword(Kw::Null)) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            Some(Token::Keyword(Kw::True)) => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(true)))
            }
            Some(Token::Keyword(Kw::False)) => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(false)))
            }
            Some(Token::Keyword(Kw::Case)) => self.case_expr(),
            Some(Token::Keyword(Kw::Cast)) => self.cast_expr(),
            Some(Token::Keyword(Kw::Exists)) => {
                self.advance();
                self.expect(Token::LParen)?;
                let subquery = self.query()?;
                self.expect(Token::RParen)?;
                Ok(Expr::Exists {
                    negated: false,
                    subquery: Box::new(subquery),
                })
            }
            Some(Token::Keyword(Kw::Not)) => {
                // NOT EXISTS (…) reached through primary position.
                self.advance();
                let inner = self.primary_expr()?;
                Ok(Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(inner),
                })
            }
            Some(Token::LParen) => {
                self.advance();
                if self.looking_at_query() {
                    let subquery = self.query()?;
                    self.expect(Token::RParen)?;
                    return Ok(Expr::Subquery(Box::new(subquery)));
                }
                let inner = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(Expr::Nested(Box::new(inner)))
            }
            Some(Token::Star) => {
                // `*` as an expression only appears as a function arg
                // (COUNT(*)); accept it here, validation is the caller's job.
                self.advance();
                Ok(Expr::Wildcard)
            }
            Some(Token::Ident(_)) | Some(Token::QuotedIdent(_)) => self.ident_expr(),
            _ => Err(self.expected("expression")),
        }
    }

    fn ident_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.ident()?;
        // Function call?
        if self.peek() == Some(&Token::LParen) {
            self.advance();
            let distinct = self.eat_kw(Kw::Distinct);
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                args.push(self.expr()?);
                while self.eat(&Token::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(Token::RParen)?;
            return Ok(Expr::Function {
                name: first,
                args,
                distinct,
            });
        }
        // Qualified column `t.x`?
        if self.peek() == Some(&Token::Dot)
            && matches!(
                self.peek_at(1),
                Some(Token::Ident(_) | Token::QuotedIdent(_))
            )
        {
            self.advance();
            let column = self.ident()?;
            return Ok(Expr::Column(ColumnRef {
                table: Some(first),
                column,
            }));
        }
        Ok(Expr::Column(ColumnRef {
            table: None,
            column: first,
        }))
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw(Kw::Case)?;
        let operand = if !self.peek_kw(Kw::When) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut arms = Vec::new();
        while self.eat_kw(Kw::When) {
            let when = self.expr()?;
            self.expect_kw(Kw::Then)?;
            let then = self.expr()?;
            arms.push((when, then));
        }
        if arms.is_empty() {
            return Err(self.expected("WHEN"));
        }
        let else_result = if self.eat_kw(Kw::Else) {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw(Kw::End)?;
        Ok(Expr::Case {
            operand,
            arms,
            else_result,
        })
    }

    fn cast_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw(Kw::Cast)?;
        self.expect(Token::LParen)?;
        let expr = self.expr()?;
        self.expect_kw(Kw::As)?;
        let mut data_type = self.ident()?;
        // Parameterised types: VARCHAR(20), DECIMAL(10, 2)
        if self.eat(&Token::LParen) {
            data_type.push('(');
            loop {
                match self.peek() {
                    Some(Token::Number(n)) => {
                        data_type.push_str(n);
                        self.advance();
                    }
                    _ => return Err(self.expected("number in type parameter")),
                }
                if self.eat(&Token::Comma) {
                    data_type.push(',');
                } else {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            data_type.push(')');
        }
        self.expect(Token::RParen)?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            data_type,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(sql: &str) -> Query {
        parse(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"))
    }

    fn sel(q: &Query) -> &Select {
        match &q.body {
            SetExpr::Select(s) => s,
            other => panic!("expected plain select, got {other:?}"),
        }
    }

    #[test]
    fn parse_minimal() {
        let q = p("SELECT * FROM PhotoTag");
        let s = sel(&q);
        assert_eq!(s.projection, vec![SelectItem::Wildcard]);
        assert_eq!(s.from.len(), 1);
    }

    #[test]
    fn parse_no_from() {
        let q = p("SELECT 1");
        assert!(sel(&q).from.is_empty());
    }

    #[test]
    fn parse_projection_aliases() {
        let q = p("SELECT a AS x, b y, t.c FROM t");
        let s = sel(&q);
        assert_eq!(s.projection.len(), 3);
        match &s.projection[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("x")),
            other => panic!("{other:?}"),
        }
        match &s.projection[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("y")),
            other => panic!("{other:?}"),
        }
        match &s.projection[2] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(*expr, Expr::Column(ColumnRef::qualified("t", "c")));
                assert!(alias.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_qualified_wildcard() {
        let q = p("SELECT t.* FROM t");
        assert_eq!(
            sel(&q).projection[0],
            SelectItem::QualifiedWildcard("t".into())
        );
    }

    #[test]
    fn parse_where_precedence() {
        let q = p("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
        // OR must be the root: x=1 OR (y=2 AND z=3)
        match sel(&q).selection.as_ref().unwrap() {
            Expr::Binary { op, .. } => assert_eq!(*op, BinaryOp::Or),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_arith_precedence() {
        let q = p("SELECT a + b * c FROM t");
        match &sel(&q).projection[0] {
            SelectItem::Expr {
                expr: Expr::Binary { op, right, .. },
                ..
            } => {
                assert_eq!(*op, BinaryOp::Plus);
                assert!(matches!(
                    right.as_ref(),
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_functions() {
        let q = p("SELECT COUNT(*), COUNT(DISTINCT type), AVG(ra + 1) FROM SpecObj");
        let s = sel(&q);
        match &s.projection[0] {
            SelectItem::Expr {
                expr: Expr::Function { name, args, .. },
                ..
            } => {
                assert_eq!(name, "COUNT");
                assert_eq!(args, &vec![Expr::Wildcard]);
            }
            other => panic!("{other:?}"),
        }
        match &s.projection[1] {
            SelectItem::Expr {
                expr: Expr::Function { distinct, .. },
                ..
            } => assert!(distinct),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_joins() {
        let q = p(
            "SELECT s.ra FROM SpecObj s JOIN PhotoObj p ON s.objid = p.objid \
             LEFT OUTER JOIN Neighbors n ON p.objid = n.objid",
        );
        match &sel(&q).from[0] {
            TableRef::Join { kind, left, .. } => {
                assert_eq!(*kind, JoinKind::Left);
                assert!(matches!(
                    left.as_ref(),
                    TableRef::Join {
                        kind: JoinKind::Inner,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_cross_join() {
        let q = p("SELECT * FROM a CROSS JOIN b");
        match &sel(&q).from[0] {
            TableRef::Join { kind, on, .. } => {
                assert_eq!(*kind, JoinKind::Cross);
                assert!(on.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_comma_from_list() {
        let q = p("SELECT * FROM Jobs j, Status s WHERE j.queue = s.queue");
        assert_eq!(sel(&q).from.len(), 2);
    }

    #[test]
    fn parse_derived_table() {
        let q = p("SELECT x FROM (SELECT DISTINCT gene x FROM Experiments) d");
        match &sel(&q).from[0] {
            TableRef::Derived { alias, .. } => assert_eq!(alias.as_deref(), Some("d")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_in_subquery_and_exists() {
        let q = p(
            "SELECT * FROM t WHERE id IN (SELECT id FROM u) AND EXISTS (SELECT 1 FROM v) \
             AND kind NOT IN ('a', 'b')",
        );
        let mut in_sub = 0;
        let mut exists = 0;
        let mut in_list = 0;
        sel(&q).selection.as_ref().unwrap().walk(&mut |e| match e {
            Expr::InSubquery { .. } => in_sub += 1,
            Expr::Exists { .. } => exists += 1,
            Expr::InList { negated, .. } => {
                assert!(*negated);
                in_list += 1;
            }
            _ => {}
        });
        assert_eq!((in_sub, exists, in_list), (1, 1, 1));
    }

    #[test]
    fn parse_between_like_isnull() {
        let q = p(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b NOT BETWEEN 3 AND 4 \
             AND c LIKE '%x%' AND d NOT LIKE 'y' AND e IS NULL AND f IS NOT NULL",
        );
        let mut between = 0;
        let mut like = 0;
        let mut is_null = 0;
        sel(&q).selection.as_ref().unwrap().walk(&mut |e| match e {
            Expr::Between { .. } => between += 1,
            Expr::Like { .. } => like += 1,
            Expr::IsNull { .. } => is_null += 1,
            _ => {}
        });
        assert_eq!((between, like, is_null), (2, 2, 2));
    }

    #[test]
    fn parse_group_having_order_limit() {
        let q = p("SELECT type, COUNT(*) c FROM Experiments GROUP BY type \
             HAVING COUNT(*) > 5 ORDER BY c DESC, type LIMIT 10 OFFSET 20");
        let s = sel(&q);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].ascending, Some(false));
        assert_eq!(q.order_by[1].ascending, None);
        assert!(q.limit.is_some() && q.offset.is_some());
    }

    #[test]
    fn parse_top() {
        let q = p("SELECT TOP 10 objid FROM SpecObj ORDER BY z DESC");
        assert_eq!(
            sel(&q).top,
            Some(Expr::Literal(Literal::Number("10".into())))
        );
    }

    #[test]
    fn parse_set_operations() {
        let q = p("SELECT a FROM t UNION SELECT b FROM u UNION ALL SELECT c FROM v");
        match &q.body {
            SetExpr::SetOp { op, left, .. } => {
                assert_eq!(*op, SetOp::UnionAll);
                assert!(matches!(
                    left.as_ref(),
                    SetExpr::SetOp {
                        op: SetOp::Union,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_parenthesised_set_member() {
        let q = p("(SELECT a FROM t) EXCEPT (SELECT a FROM u)");
        assert!(matches!(
            q.body,
            SetExpr::SetOp {
                op: SetOp::Except,
                ..
            }
        ));
    }

    #[test]
    fn parse_case_forms() {
        let q = p("SELECT CASE WHEN z > 1 THEN 'far' ELSE 'near' END, \
             CASE kind WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM t");
        let s = sel(&q);
        match &s.projection[0] {
            SelectItem::Expr {
                expr:
                    Expr::Case {
                        operand,
                        arms,
                        else_result,
                    },
                ..
            } => {
                assert!(operand.is_none());
                assert_eq!(arms.len(), 1);
                assert!(else_result.is_some());
            }
            other => panic!("{other:?}"),
        }
        match &s.projection[1] {
            SelectItem::Expr {
                expr: Expr::Case { operand, arms, .. },
                ..
            } => {
                assert!(operand.is_some());
                assert_eq!(arms.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_cast() {
        let q = p("SELECT CAST(j.estimate AS VARCHAR), CAST(x AS DECIMAL(10,2)) FROM Jobs j");
        let s = sel(&q);
        match &s.projection[1] {
            SelectItem::Expr {
                expr: Expr::Cast { data_type, .. },
                ..
            } => assert_eq!(data_type, "DECIMAL(10,2)"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_scalar_subquery() {
        let q = p("SELECT name FROM t WHERE n > (SELECT AVG(n) FROM t)");
        let mut found = false;
        sel(&q).selection.as_ref().unwrap().walk(&mut |e| {
            if matches!(e, Expr::Subquery(_)) {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn parse_nested_top_k_sdss_style() {
        // Mirrors the paper's Figure 2 queries.
        let q = p(
            "SELECT TOP 10 ra, [dec] FROM SpecObj WHERE z BETWEEN 0.3 AND 0.4 AND zConf > 0.9 \
             AND specClass IN (1, 3)",
        );
        assert!(sel(&q).top.is_some());
    }

    #[test]
    fn parse_sqlshare_genomics_session() {
        // Mirrors the paper's Figure 1 session.
        p("SELECT COUNT(DISTINCT type) FROM [experiments.csv]");
        p("SELECT gene, type FROM [experiments.csv]");
        p(
            "SELECT type, COUNT(DISTINCT gene) AS genes FROM [experiments.csv] \
             GROUP BY type HAVING COUNT(DISTINCT gene) > 5",
        );
    }

    #[test]
    fn parse_unary_operators() {
        let q = p("SELECT -x, +y, NOT z FROM t WHERE NOT a = 1");
        assert_eq!(sel(&q).projection.len(), 3);
    }

    #[test]
    fn parse_many_splits_statements() {
        let qs = parse_many("SELECT 1; SELECT a FROM t;; SELECT b FROM u").unwrap();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[2].to_string(), "SELECT b FROM u");
        assert!(parse_many("").unwrap().is_empty());
        assert!(parse_many(";;;").unwrap().is_empty());
        assert!(parse_many("SELECT 1 SELECT 2").is_err());
        assert!(parse_many("SELECT 1; NOT SQL").is_err());
    }

    #[test]
    fn parse_trailing_semicolon_ok() {
        p("SELECT 1;");
        p("SELECT 1;;");
    }

    #[test]
    fn reject_trailing_garbage() {
        assert!(parse("SELECT 1 SELECT 2").is_err());
        assert!(parse("SELECT a FROM t )").is_err());
    }

    #[test]
    fn reject_empty_and_malformed() {
        assert!(parse("").is_err());
        assert!(parse("   -- just a comment").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t GROUP").is_err());
        assert!(parse("SELECT CASE END FROM t").is_err());
        assert!(parse("SELECT a NOT 5 FROM t").is_err());
    }

    #[test]
    fn parse_dotted_table_names() {
        let q = p("SELECT * FROM BestDR7.dbo.PhotoObjAll p");
        match &sel(&q).from[0] {
            TableRef::Named { name, alias } => {
                assert_eq!(name.len(), 3);
                assert_eq!(alias.as_deref(), Some("p"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_concat_operator() {
        let q = p("SELECT a || '-' || b FROM t");
        match &sel(&q).projection[0] {
            SelectItem::Expr {
                expr: Expr::Binary { op, .. },
                ..
            } => assert_eq!(*op, BinaryOp::Concat),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_cte() {
        let q = p(
            "WITH hot AS (SELECT objid FROM SpecObj WHERE z > 1),              cold AS (SELECT objid FROM SpecObj WHERE z < 1)              SELECT COUNT(*) FROM hot JOIN cold ON hot.objid = cold.objid",
        );
        assert_eq!(q.with.len(), 2);
        assert_eq!(q.with[0].name, "hot");
        assert_eq!(q.with[1].name, "cold");
    }

    #[test]
    fn parse_nested_cte_in_derived_table() {
        p("SELECT * FROM (WITH t AS (SELECT a FROM u) SELECT * FROM t) d");
    }

    #[test]
    fn reject_malformed_cte() {
        assert!(parse("WITH x SELECT 1").is_err());
        assert!(parse("WITH x AS SELECT 1").is_err());
        assert!(parse("WITH x AS (SELECT 1)").is_err());
    }

    #[test]
    fn keyword_not_usable_as_bare_alias() {
        // `FROM` after the expression must start the FROM clause, not be an alias.
        let q = p("SELECT a FROM t");
        assert_eq!(sel(&q).from.len(), 1);
    }
}
