//! Lexical tokens for the SQL dialect understood by `qrec`.
//!
//! The dialect covers the query shapes observed in the SDSS and SQLShare
//! workloads the paper studies: `SELECT` queries with joins, subqueries,
//! set operations, aggregation, `TOP`/`LIMIT`, `CASE`, `CAST`, and the usual
//! predicate zoo (`LIKE`, `BETWEEN`, `IN`, `EXISTS`, `IS NULL`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A source span in byte offsets, used for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character of the token.
    pub start: usize,
    /// Byte offset one past the last character of the token.
    pub end: usize,
}

impl Span {
    /// Create a new span. `start <= end` is expected but not enforced.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at the given offset.
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }
}

/// SQL keywords recognised by the lexer.
///
/// Identifiers are matched case-insensitively against this list; anything not
/// listed lexes as [`Token::Ident`]. Function names such as `COUNT` are *not*
/// keywords — they are ordinary identifiers resolved by the parser when
/// followed by `(`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    Top,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Limit,
    Offset,
    As,
    On,
    Join,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    Cross,
    Union,
    All,
    Except,
    Intersect,
    And,
    Or,
    Not,
    In,
    Exists,
    Between,
    Like,
    Is,
    Null,
    Case,
    When,
    Then,
    Else,
    End,
    Cast,
    True,
    False,
    With,
}

impl Keyword {
    /// Parse a keyword from an identifier-shaped word, case-insensitively.
    pub fn from_word(word: &str) -> Option<Keyword> {
        // Keywords are short; uppercase into a stack buffer-sized String.
        let upper = word.to_ascii_uppercase();
        Some(match upper.as_str() {
            "SELECT" => Keyword::Select,
            "DISTINCT" => Keyword::Distinct,
            "TOP" => Keyword::Top,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "ORDER" => Keyword::Order,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "OFFSET" => Keyword::Offset,
            "AS" => Keyword::As,
            "ON" => Keyword::On,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "LEFT" => Keyword::Left,
            "RIGHT" => Keyword::Right,
            "FULL" => Keyword::Full,
            "OUTER" => Keyword::Outer,
            "CROSS" => Keyword::Cross,
            "UNION" => Keyword::Union,
            "ALL" => Keyword::All,
            "EXCEPT" => Keyword::Except,
            "INTERSECT" => Keyword::Intersect,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "EXISTS" => Keyword::Exists,
            "BETWEEN" => Keyword::Between,
            "LIKE" => Keyword::Like,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "CASE" => Keyword::Case,
            "WHEN" => Keyword::When,
            "THEN" => Keyword::Then,
            "ELSE" => Keyword::Else,
            "END" => Keyword::End,
            "CAST" => Keyword::Cast,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "WITH" => Keyword::With,
            _ => return None,
        })
    }

    /// Canonical upper-case spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::Distinct => "DISTINCT",
            Keyword::Top => "TOP",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Group => "GROUP",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::Order => "ORDER",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::Limit => "LIMIT",
            Keyword::Offset => "OFFSET",
            Keyword::As => "AS",
            Keyword::On => "ON",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::Left => "LEFT",
            Keyword::Right => "RIGHT",
            Keyword::Full => "FULL",
            Keyword::Outer => "OUTER",
            Keyword::Cross => "CROSS",
            Keyword::Union => "UNION",
            Keyword::All => "ALL",
            Keyword::Except => "EXCEPT",
            Keyword::Intersect => "INTERSECT",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::In => "IN",
            Keyword::Exists => "EXISTS",
            Keyword::Between => "BETWEEN",
            Keyword::Like => "LIKE",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::Case => "CASE",
            Keyword::When => "WHEN",
            Keyword::Then => "THEN",
            Keyword::Else => "ELSE",
            Keyword::End => "END",
            Keyword::Cast => "CAST",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
            Keyword::With => "WITH",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    /// A reserved keyword (see [`Keyword`]).
    Keyword(Keyword),
    /// An unquoted identifier (table, column, function, type name …).
    Ident(String),
    /// A quoted identifier: `"name"` or `[name]`. Quotes are stripped.
    QuotedIdent(String),
    /// A numeric literal, kept verbatim (e.g. `3`, `0.5`, `1e-4`).
    Number(String),
    /// A string literal; the value has quotes stripped and `''` unescaped.
    StringLit(String),
    /// `=`
    Eq,
    /// `<>` or `!=` (normalised to `<>`)
    Neq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` (multiplication or wildcard; disambiguated by the parser)
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||` string concatenation
    Concat,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
}

impl Token {
    /// True if this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self, Token::Keyword(k) if *k == kw)
    }

    /// Identifier text, if this token is a (possibly quoted) identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) | Token::QuotedIdent(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(s) => f.write_str(s),
            Token::QuotedIdent(s) => write!(f, "\"{s}\""),
            Token::Number(s) => f.write_str(s),
            Token::StringLit(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::Eq => f.write_str("="),
            Token::Neq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Concat => f.write_str("||"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Semicolon => f.write_str(";"),
        }
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Where it came from in the input.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Select,
            Keyword::From,
            Keyword::Where,
            Keyword::Between,
            Keyword::Intersect,
            Keyword::Cast,
            Keyword::False,
        ] {
            assert_eq!(Keyword::from_word(kw.as_str()), Some(kw));
            assert_eq!(Keyword::from_word(&kw.as_str().to_lowercase()), Some(kw));
        }
    }

    #[test]
    fn keyword_rejects_identifiers() {
        assert_eq!(Keyword::from_word("PhotoObj"), None);
        assert_eq!(Keyword::from_word("count"), None);
        assert_eq!(Keyword::from_word(""), None);
    }

    #[test]
    fn token_display_escapes_strings() {
        let t = Token::StringLit("o'brien".into());
        assert_eq!(t.to_string(), "'o''brien'");
    }

    #[test]
    fn token_ident_accessor() {
        assert_eq!(Token::Ident("t".into()).ident(), Some("t"));
        assert_eq!(Token::QuotedIdent("t x".into()).ident(), Some("t x"));
        assert_eq!(Token::Star.ident(), None);
    }

    #[test]
    fn is_keyword_matches_exact_variant() {
        let t = Token::Keyword(Keyword::Select);
        assert!(t.is_keyword(Keyword::Select));
        assert!(!t.is_keyword(Keyword::From));
        assert!(!Token::Ident("select2".into()).is_keyword(Keyword::Select));
    }
}
