//! Query normalisation: alias resolution and literal canonicalisation.
//!
//! The paper's pre-processing (Section 5.4.1) replaces table aliases with
//! the table name they bind ("aliases encode implicit information about
//! the schema and intent, so we replaced aliases with the corresponding
//! table name") and replaces numeric literals with a `<NUM>` token to
//! bound the vocabulary. [`resolve_aliases`] implements the former on the
//! AST; [`normalize_numbers`] the latter.

use crate::ast::*;
use std::collections::HashMap;

/// Rewrite `query` so that every column qualifier that names an alias
/// refers to the aliased table instead, and drop the alias definitions on
/// named tables. Derived-table aliases are kept (they have no table name
/// to resolve to) and qualifiers that reference them are left untouched.
///
/// Scoping: inner queries see their own aliases first, then the enclosing
/// scopes (correlated subqueries resolve through the outer query).
pub fn resolve_aliases(query: &Query) -> Query {
    let mut q = query.clone();
    rewrite_query(&mut q, &AliasScope::root());
    q
}

/// Replace every numeric literal in the query with `0` rendered as the
/// canonical `<NUM>` marker value. Because [`crate::fragments`] and
/// [`crate::tokenize`] already collapse numbers on their own, this pass is
/// only needed when callers want an AST-level canonical form (e.g. for
/// deduplicating queries that differ only in constants).
pub fn normalize_numbers(query: &Query) -> Query {
    let mut q = query.clone();
    map_literals(&mut q, &mut |l| {
        if let Literal::Number(n) = l {
            *n = "0".to_string();
        }
    });
    q
}

/// One level of alias bindings plus a parent pointer.
struct AliasScope<'a> {
    bindings: HashMap<String, Vec<String>>,
    parent: Option<&'a AliasScope<'a>>,
}

impl<'a> AliasScope<'a> {
    fn root() -> Self {
        AliasScope {
            bindings: HashMap::new(),
            parent: None,
        }
    }

    fn child(&'a self) -> AliasScope<'a> {
        AliasScope {
            bindings: HashMap::new(),
            parent: Some(self),
        }
    }

    fn resolve(&self, alias: &str) -> Option<&[String]> {
        match self.bindings.get(alias) {
            Some(name) => Some(name),
            None => self.parent.and_then(|p| p.resolve(alias)),
        }
    }
}

fn collect_bindings(t: &TableRef, scope: &mut AliasScope<'_>) {
    match t {
        TableRef::Named {
            name,
            alias: Some(alias),
        } => {
            scope.bindings.insert(alias.clone(), name.clone());
        }
        TableRef::Named { .. } | TableRef::Derived { .. } => {}
        TableRef::Join { left, right, .. } => {
            collect_bindings(left, scope);
            collect_bindings(right, scope);
        }
    }
}

fn rewrite_query(q: &mut Query, outer: &AliasScope<'_>) {
    for cte in &mut q.with {
        rewrite_query(&mut cte.query, outer);
    }
    rewrite_set_expr(&mut q.body, outer);
    // ORDER BY / LIMIT resolve in the scope of the left-most select; for
    // alias purposes use the union of all top-level FROM bindings, which
    // rewrite_set_expr has already applied to the body. Order-by aliases of
    // *tables* are rare; resolve against the outer scope only.
    for o in &mut q.order_by {
        rewrite_expr(&mut o.expr, outer);
    }
    if let Some(l) = &mut q.limit {
        rewrite_expr(l, outer);
    }
    if let Some(off) = &mut q.offset {
        rewrite_expr(off, outer);
    }
}

fn rewrite_set_expr(body: &mut SetExpr, outer: &AliasScope<'_>) {
    match body {
        SetExpr::Select(s) => rewrite_select(s, outer),
        SetExpr::SetOp { left, right, .. } => {
            rewrite_set_expr(left, outer);
            rewrite_set_expr(right, outer);
        }
    }
}

fn rewrite_select(s: &mut Select, outer: &AliasScope<'_>) {
    let mut scope = outer.child();
    for t in &s.from {
        collect_bindings(t, &mut scope);
    }

    for t in &mut s.from {
        rewrite_table_ref(t, &scope);
    }
    if let Some(top) = &mut s.top {
        rewrite_expr(top, &scope);
    }
    for item in &mut s.projection {
        match item {
            SelectItem::Wildcard => {}
            SelectItem::QualifiedWildcard(q) => {
                if let Some(name) = scope.resolve(q) {
                    if let Some(last) = name.last() {
                        *q = last.clone();
                    }
                }
            }
            SelectItem::Expr { expr, .. } => rewrite_expr(expr, &scope),
        }
    }
    if let Some(w) = &mut s.selection {
        rewrite_expr(w, &scope);
    }
    for g in &mut s.group_by {
        rewrite_expr(g, &scope);
    }
    if let Some(h) = &mut s.having {
        rewrite_expr(h, &scope);
    }
}

fn rewrite_table_ref(t: &mut TableRef, scope: &AliasScope<'_>) {
    match t {
        TableRef::Named { alias, .. } => {
            // Drop the alias: downstream consumers see the real name.
            *alias = None;
        }
        TableRef::Derived { subquery, .. } => {
            rewrite_query(subquery, scope);
        }
        TableRef::Join {
            left, right, on, ..
        } => {
            rewrite_table_ref(left, scope);
            rewrite_table_ref(right, scope);
            if let Some(on) = on {
                rewrite_expr(on, scope);
            }
        }
    }
}

fn rewrite_expr(e: &mut Expr, scope: &AliasScope<'_>) {
    match e {
        Expr::Column(c) => {
            if let Some(q) = &c.table {
                if let Some(name) = scope.resolve(q) {
                    if let Some(last) = name.last() {
                        c.table = Some(last.clone());
                    }
                }
            }
        }
        Expr::Binary { left, right, .. } => {
            rewrite_expr(left, scope);
            rewrite_expr(right, scope);
        }
        Expr::Unary { expr, .. }
        | Expr::Cast { expr, .. }
        | Expr::Nested(expr)
        | Expr::IsNull { expr, .. } => rewrite_expr(expr, scope),
        Expr::Function { args, .. } => {
            for a in args {
                rewrite_expr(a, scope);
            }
        }
        Expr::Case {
            operand,
            arms,
            else_result,
        } => {
            if let Some(op) = operand {
                rewrite_expr(op, scope);
            }
            for (w, t) in arms {
                rewrite_expr(w, scope);
                rewrite_expr(t, scope);
            }
            if let Some(el) = else_result {
                rewrite_expr(el, scope);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            rewrite_expr(expr, scope);
            rewrite_expr(low, scope);
            rewrite_expr(high, scope);
        }
        Expr::InList { expr, list, .. } => {
            rewrite_expr(expr, scope);
            for i in list {
                rewrite_expr(i, scope);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            rewrite_expr(expr, scope);
            rewrite_query(subquery, scope);
        }
        Expr::Exists { subquery, .. } => rewrite_query(subquery, scope),
        Expr::Subquery(q) => rewrite_query(q, scope),
        Expr::Like { expr, pattern, .. } => {
            rewrite_expr(expr, scope);
            rewrite_expr(pattern, scope);
        }
        Expr::Literal(_) | Expr::Wildcard => {}
    }
}

/// Apply `f` to every literal in the query, recursing into subqueries.
fn map_literals(q: &mut Query, f: &mut impl FnMut(&mut Literal)) {
    fn expr(e: &mut Expr, f: &mut impl FnMut(&mut Literal)) {
        match e {
            Expr::Literal(l) => f(l),
            Expr::Binary { left, right, .. } => {
                expr(left, f);
                expr(right, f);
            }
            Expr::Unary { expr: x, .. }
            | Expr::Cast { expr: x, .. }
            | Expr::Nested(x)
            | Expr::IsNull { expr: x, .. } => expr(x, f),
            Expr::Function { args, .. } => {
                for a in args {
                    expr(a, f);
                }
            }
            Expr::Case {
                operand,
                arms,
                else_result,
            } => {
                if let Some(op) = operand {
                    expr(op, f);
                }
                for (w, t) in arms {
                    expr(w, f);
                    expr(t, f);
                }
                if let Some(el) = else_result {
                    expr(el, f);
                }
            }
            Expr::Between {
                expr: x, low, high, ..
            } => {
                expr(x, f);
                expr(low, f);
                expr(high, f);
            }
            Expr::InList { expr: x, list, .. } => {
                expr(x, f);
                for i in list {
                    expr(i, f);
                }
            }
            Expr::InSubquery {
                expr: x, subquery, ..
            } => {
                expr(x, f);
                map_literals(subquery, f);
            }
            Expr::Exists { subquery, .. } => map_literals(subquery, f),
            Expr::Subquery(q) => map_literals(q, f),
            Expr::Like {
                expr: x, pattern, ..
            } => {
                expr(x, f);
                expr(pattern, f);
            }
            Expr::Column(_) | Expr::Wildcard => {}
        }
    }
    fn set_expr(b: &mut SetExpr, f: &mut impl FnMut(&mut Literal)) {
        match b {
            SetExpr::Select(s) => {
                if let Some(top) = &mut s.top {
                    expr(top, f);
                }
                for item in &mut s.projection {
                    if let SelectItem::Expr { expr: e, .. } = item {
                        expr(e, f);
                    }
                }
                for t in &mut s.from {
                    table(t, f);
                }
                if let Some(w) = &mut s.selection {
                    expr(w, f);
                }
                for g in &mut s.group_by {
                    expr(g, f);
                }
                if let Some(h) = &mut s.having {
                    expr(h, f);
                }
            }
            SetExpr::SetOp { left, right, .. } => {
                set_expr(left, f);
                set_expr(right, f);
            }
        }
    }
    fn table(t: &mut TableRef, f: &mut impl FnMut(&mut Literal)) {
        match t {
            TableRef::Named { .. } => {}
            TableRef::Derived { subquery, .. } => map_literals(subquery, f),
            TableRef::Join {
                left, right, on, ..
            } => {
                table(left, f);
                table(right, f);
                if let Some(on) = on {
                    expr(on, f);
                }
            }
        }
    }
    for cte in &mut q.with {
        map_literals(&mut cte.query, f);
    }
    set_expr(&mut q.body, f);
    for o in &mut q.order_by {
        expr(&mut o.expr, f);
    }
    if let Some(l) = &mut q.limit {
        expr(l, f);
    }
    if let Some(off) = &mut q.offset {
        expr(off, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn aliases_resolve_to_table_names() {
        let q = parse("SELECT j.target FROM Jobs j WHERE j.queue = 'FULL'").unwrap();
        let r = resolve_aliases(&q);
        assert_eq!(
            r.to_string(),
            "SELECT Jobs.target FROM Jobs WHERE Jobs.queue = 'FULL'"
        );
    }

    #[test]
    fn join_aliases_resolve() {
        let q =
            parse("SELECT s.ra, p.g FROM SpecObj s JOIN PhotoObj p ON s.objid = p.objid").unwrap();
        let r = resolve_aliases(&q);
        assert_eq!(
            r.to_string(),
            "SELECT SpecObj.ra, PhotoObj.g FROM SpecObj INNER JOIN PhotoObj ON \
             SpecObj.objid = PhotoObj.objid"
        );
    }

    #[test]
    fn correlated_subquery_sees_outer_alias() {
        let q = parse(
            "SELECT 1 FROM Jobs j WHERE EXISTS (SELECT 1 FROM Status WHERE status = j.queue)",
        )
        .unwrap();
        let r = resolve_aliases(&q);
        assert!(r.to_string().contains("= Jobs.queue"));
    }

    #[test]
    fn inner_alias_shadows_outer() {
        let q = parse("SELECT 1 FROM Jobs t WHERE EXISTS (SELECT t.x FROM Other t WHERE t.x > 0)")
            .unwrap();
        let r = resolve_aliases(&q);
        // Inner t binds Other, so both inner references resolve to Other.
        let s = r.to_string();
        assert!(
            s.contains("SELECT Other.x FROM Other WHERE Other.x > 0"),
            "{s}"
        );
    }

    #[test]
    fn derived_table_alias_kept() {
        let q = parse("SELECT d.x FROM (SELECT gene AS x FROM e) d").unwrap();
        let r = resolve_aliases(&q);
        let s = r.to_string();
        // d has no table name; the qualifier and the alias survive.
        assert!(s.contains("d.x"), "{s}");
        assert!(s.contains(") AS d"), "{s}");
    }

    #[test]
    fn dotted_alias_resolves_to_last_segment() {
        let q = parse("SELECT p.ra FROM BestDR7.dbo.PhotoObjAll p").unwrap();
        let r = resolve_aliases(&q);
        assert!(r.to_string().starts_with("SELECT PhotoObjAll.ra"));
    }

    #[test]
    fn qualified_wildcard_resolves() {
        let q = parse("SELECT j.* FROM Jobs j").unwrap();
        let r = resolve_aliases(&q);
        assert_eq!(r.to_string(), "SELECT Jobs.* FROM Jobs");
    }

    #[test]
    fn unaliased_query_is_unchanged() {
        let q = parse("SELECT a, b FROM t WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2").unwrap();
        assert_eq!(resolve_aliases(&q), q);
    }

    #[test]
    fn normalize_numbers_zeroes_constants() {
        let q = parse("SELECT TOP 5 x FROM t WHERE a > 17 AND b = 'keep' LIMIT 9").unwrap();
        let n = normalize_numbers(&q);
        let s = n.to_string();
        assert!(s.contains("TOP 0") && s.contains("> 0") && s.contains("LIMIT 0"));
        assert!(s.contains("'keep'"));
    }

    #[test]
    fn resolve_is_idempotent() {
        let q = parse("SELECT j.target FROM Jobs j, Status s WHERE s.ok = j.queue").unwrap();
        let once = resolve_aliases(&q);
        let twice = resolve_aliases(&once);
        assert_eq!(once, twice);
    }
}
