//! Query template extraction (Definition 5 of the paper).
//!
//! The template of a query is its AST with every fragment — table, column,
//! function name, literal — replaced by the placeholders `Table`, `Column`,
//! `Function`, `Literal`, and with aliases removed. Structurally identical
//! queries that differ only in which tables/columns/constants they touch
//! therefore share a template, which is exactly what the paper's template
//! classification task needs.

use crate::ast::*;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Placeholder spelling for tables.
pub const TABLE_PLACEHOLDER: &str = "Table";
/// Placeholder spelling for columns.
pub const COLUMN_PLACEHOLDER: &str = "Column";
/// Placeholder spelling for function names.
pub const FUNCTION_PLACEHOLDER: &str = "Function";
/// Placeholder spelling for literals.
pub const LITERAL_PLACEHOLDER: &str = "Literal";

/// A query template: the placeholder-ised statement in canonical form.
///
/// Templates are value types — equality and hashing are on the canonical
/// statement string, so they can key maps and act as classification labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Template {
    statement: String,
}

impl Template {
    /// The canonical template statement, e.g.
    /// `SELECT Column, Function(Column) FROM Table WHERE Column = Literal`.
    pub fn statement(&self) -> &str {
        &self.statement
    }

    /// A stable 64-bit identifier derived from the statement.
    pub fn id(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.statement.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.statement)
    }
}

/// Extract the template of `query` (Definition 5).
pub fn template(query: &Query) -> Template {
    let mut q = query.clone();
    template_query(&mut q);
    Template {
        statement: q.to_string(),
    }
}

/// Extract the template and also return the placeholder-ised AST.
pub fn template_ast(query: &Query) -> (Template, Query) {
    let mut q = query.clone();
    template_query(&mut q);
    let t = Template {
        statement: q.to_string(),
    };
    (t, q)
}

fn template_query(q: &mut Query) {
    for cte in &mut q.with {
        cte.name = TABLE_PLACEHOLDER.to_string();
        template_query(&mut cte.query);
    }
    template_set_expr(&mut q.body);
    for o in &mut q.order_by {
        template_expr(&mut o.expr);
    }
    if let Some(l) = &mut q.limit {
        template_expr(l);
    }
    if let Some(off) = &mut q.offset {
        template_expr(off);
    }
}

fn template_set_expr(b: &mut SetExpr) {
    match b {
        SetExpr::Select(s) => template_select(s),
        SetExpr::SetOp { left, right, .. } => {
            template_set_expr(left);
            template_set_expr(right);
        }
    }
}

fn template_select(s: &mut Select) {
    if let Some(top) = &mut s.top {
        template_expr(top);
    }
    for item in &mut s.projection {
        match item {
            SelectItem::Wildcard => {}
            SelectItem::QualifiedWildcard(t) => *t = TABLE_PLACEHOLDER.to_string(),
            SelectItem::Expr { expr, alias } => {
                template_expr(expr);
                *alias = None;
            }
        }
    }
    for t in &mut s.from {
        template_table_ref(t);
    }
    if let Some(w) = &mut s.selection {
        template_expr(w);
    }
    for g in &mut s.group_by {
        template_expr(g);
    }
    if let Some(h) = &mut s.having {
        template_expr(h);
    }
}

fn template_table_ref(t: &mut TableRef) {
    match t {
        TableRef::Named { name, alias } => {
            *name = vec![TABLE_PLACEHOLDER.to_string()];
            *alias = None;
        }
        TableRef::Derived { subquery, alias } => {
            template_query(subquery);
            *alias = None;
        }
        TableRef::Join {
            left, right, on, ..
        } => {
            template_table_ref(left);
            template_table_ref(right);
            if let Some(on) = on {
                template_expr(on);
            }
        }
    }
}

fn template_expr(e: &mut Expr) {
    match e {
        Expr::Column(c) => {
            // Keep existing placeholders intact so templating is idempotent
            // (template statements re-parse with `Literal` as a bare ident).
            if c.table.is_none() && c.column == LITERAL_PLACEHOLDER {
                return;
            }
            *e = Expr::Column(ColumnRef::bare(COLUMN_PLACEHOLDER));
        }
        Expr::Literal(_) => {
            // Render literal placeholders as a bare identifier so the
            // template statement reads `… LIKE Literal` (Figure 5).
            *e = Expr::Column(ColumnRef::bare(LITERAL_PLACEHOLDER));
        }
        Expr::Wildcard => {}
        Expr::Binary { left, right, .. } => {
            template_expr(left);
            template_expr(right);
        }
        Expr::Unary { expr, .. } | Expr::Nested(expr) | Expr::IsNull { expr, .. } => {
            template_expr(expr)
        }
        Expr::Cast { expr, .. } => {
            // CAST is structural (it keeps its AS type), matching Figure 5's
            // `Function(Column AS VARCHAR)` reading of templates: the type
            // survives, the inner fragments do not.
            template_expr(expr);
        }
        Expr::Function { name, args, .. } => {
            *name = FUNCTION_PLACEHOLDER.to_string();
            for a in args {
                template_expr(a);
            }
        }
        Expr::Case {
            operand,
            arms,
            else_result,
        } => {
            if let Some(op) = operand {
                template_expr(op);
            }
            for (w, t) in arms {
                template_expr(w);
                template_expr(t);
            }
            if let Some(el) = else_result {
                template_expr(el);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            template_expr(expr);
            template_expr(low);
            template_expr(high);
        }
        Expr::InList { expr, list, .. } => {
            template_expr(expr);
            for i in list {
                template_expr(i);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            template_expr(expr);
            template_query(subquery);
        }
        Expr::Exists { subquery, .. } => template_query(subquery),
        Expr::Subquery(q) => template_query(q),
        Expr::Like { expr, pattern, .. } => {
            template_expr(expr);
            template_expr(pattern);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn tpl(sql: &str) -> String {
        template(&parse(sql).unwrap()).statement().to_string()
    }

    #[test]
    fn paper_figure_5_shape() {
        let t = tpl("SELECT j.target, CAST(j.estimate AS VARCHAR) AS estimate \
             FROM Jobs j, Status s WHERE j.queue = 'FULL' AND j.outputtype LIKE '%QUERY%'");
        assert_eq!(
            t,
            "SELECT Column, CAST(Column AS VARCHAR) FROM Table, Table \
             WHERE Column = Literal AND Column LIKE Literal"
        );
    }

    #[test]
    fn structurally_equal_queries_share_template() {
        let a = tpl("SELECT ra FROM SpecObj WHERE z > 0.3");
        let b = tpl("SELECT g FROM PhotoObj WHERE r > 17");
        assert_eq!(a, b);
    }

    #[test]
    fn template_invariant_under_aliases() {
        let a = tpl("SELECT j.target FROM Jobs j");
        let b = tpl("SELECT target FROM Jobs");
        assert_eq!(a, b);
        assert_eq!(a, "SELECT Column FROM Table");
    }

    #[test]
    fn template_invariant_under_projection_alias() {
        assert_eq!(tpl("SELECT a AS x FROM t"), tpl("SELECT a FROM t"));
    }

    #[test]
    fn different_structure_different_template() {
        assert_ne!(tpl("SELECT a FROM t"), tpl("SELECT a, b FROM t"));
        assert_ne!(tpl("SELECT a FROM t"), tpl("SELECT DISTINCT a FROM t"));
        assert_ne!(tpl("SELECT a FROM t"), tpl("SELECT a FROM t WHERE a = 1"));
        assert_ne!(
            tpl("SELECT a FROM t WHERE a = 1"),
            tpl("SELECT a FROM t WHERE a > 1")
        );
    }

    #[test]
    fn nested_query_templates() {
        let t = tpl("SELECT x FROM (SELECT DISTINCT g AS x FROM e) d WHERE x > 5");
        assert_eq!(
            t,
            "SELECT Column FROM (SELECT DISTINCT Column FROM Table) WHERE Column > Literal"
        );
    }

    #[test]
    fn functions_become_placeholder() {
        assert_eq!(
            tpl("SELECT COUNT(DISTINCT gene) FROM e GROUP BY type"),
            "SELECT Function(DISTINCT Column) FROM Table GROUP BY Column"
        );
    }

    #[test]
    fn top_and_limit_literals_placeholderised() {
        assert_eq!(
            tpl("SELECT TOP 10 a FROM t"),
            "SELECT TOP Literal Column FROM Table"
        );
        assert_eq!(
            tpl("SELECT a FROM t LIMIT 5 OFFSET 2"),
            "SELECT Column FROM Table LIMIT Literal OFFSET Literal"
        );
    }

    #[test]
    fn qualified_wildcard_uses_table_placeholder() {
        assert_eq!(tpl("SELECT t.* FROM t"), "SELECT Table.* FROM Table");
    }

    #[test]
    fn template_id_stable_and_distinct() {
        let a = template(&parse("SELECT a FROM t").unwrap());
        let b = template(&parse("SELECT x FROM y").unwrap());
        let c = template(&parse("SELECT x, y FROM y").unwrap());
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn template_statement_reparses() {
        // Template statements remain valid SQL in our dialect.
        for sql in [
            "SELECT TOP 3 a, COUNT(*) FROM t JOIN u ON t.x = u.y WHERE a LIKE 'z%' \
             GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC",
            "SELECT a FROM t UNION SELECT b FROM u",
            "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
        ] {
            let t = tpl(sql);
            parse(&t).unwrap_or_else(|e| panic!("template {t:?} must reparse: {e}"));
        }
    }

    #[test]
    fn cte_templates() {
        let a = tpl("WITH hot AS (SELECT objid FROM SpecObj) SELECT x FROM hot");
        let b = tpl("WITH recent AS (SELECT id FROM Jobs) SELECT y FROM recent");
        assert_eq!(a, b);
        assert_eq!(
            a,
            "WITH Table AS (SELECT Column FROM Table) SELECT Column FROM Table"
        );
    }

    #[test]
    fn template_is_idempotent() {
        let sql = "SELECT j.target, CAST(j.estimate AS VARCHAR) FROM Jobs j WHERE j.q = 1";
        let t1 = tpl(sql);
        let t2 = tpl(&t1);
        assert_eq!(t1, t2);
    }
}
