//! # qrec-sql — SQL substrate for workload-aware query recommendation
//!
//! This crate provides everything the `qrec` stack needs to understand SQL
//! query *statements* the way the paper does:
//!
//! * [`lexer`] / [`parser`] — a hand-written lexer and recursive-descent
//!   parser for the `SELECT` dialect the SDSS and SQLShare workloads use
//!   (joins, subqueries, set ops, `TOP`/`LIMIT`, `CASE`, `CAST`, …).
//! * [`ast`] — the abstract syntax tree, with a canonical
//!   [`Display`](std::fmt::Display) rendering ([`display`]).
//! * [`mod@template`] — query templates (Definition 5): the AST with tables,
//!   columns, functions, and literals replaced by placeholders and aliases
//!   removed. These are the classification labels of the paper's next
//!   template prediction task.
//! * [`fragments`] — query fragments (Definition 4): the sets of tables,
//!   columns, functions, and literals in a query, the targets of next
//!   fragment prediction.
//! * [`normalize`] — alias resolution and numeric-literal canonicalisation
//!   (the paper's pre-processing, Section 5.4.1).
//! * [`tokenize`] — the word-token sequences fed to the sequence models
//!   (Definition 1), with numbers collapsed to `<NUM>`.
//!
//! ## Quick example
//!
//! ```
//! use qrec_sql::{parse, template, fragments};
//!
//! let q = parse("SELECT j.target FROM Jobs j WHERE j.queue = 'FULL'").unwrap();
//! let t = template::template(&q);
//! assert_eq!(t.statement(), "SELECT Column FROM Table WHERE Column = Literal");
//! let f = fragments::extract(&q);
//! assert!(f.tables.contains("Jobs"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod display;
pub mod error;
pub mod fragments;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod template;
pub mod token;
pub mod tokenize;

pub use ast::Query;
pub use error::ParseError;
pub use fragments::{extract as extract_fragments, FragmentKind, FragmentSet};
pub use parser::{parse, parse_many};
pub use template::{template, Template};
pub use tokenize::{query_tokens, sql_tokens};
