#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, full test suite.
# Everything runs offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> qrec-lint"
cargo run --offline -q -p qrec-lint

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test -q"
cargo test --offline -q

echo "CI green."
