#!/usr/bin/env bash
# Repository CI gate: formatting, lints, release build, full test suite.
# Everything runs offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> qrec-lint (with baseline staleness gate)"
cargo run --offline -q -p qrec-lint -- --check-baseline

echo "==> qrec-lint findings artifact (target/lint-findings.json)"
cargo run --offline -q -p qrec-lint -- --json > target/lint-findings.json
python3 -m json.tool target/lint-findings.json >/dev/null \
    || { echo "lint-findings.json is not well-formed JSON"; exit 1; }

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test -q"
cargo test --offline -q

echo "==> cargo test -q (workspace, QREC_LOCK_ORDER_CHECK=1)"
# Runtime lock-order sanitizer: every blocking acquisition in the whole
# suite is checked against the global acquisition-order graph; an ABBA
# inversion panics with both witness stacks instead of deadlocking.
QREC_LOCK_ORDER_CHECK=1 cargo test --offline -q --workspace

echo "==> store recovery smoke (SIGKILL mid-write, torn tails, restart)"
cargo test --offline -q -p qrec-store --test crash_recovery
cargo test --offline -q -p qrec-serve --test restart_recovery

echo "==> int8 quant equivalence smoke (agreement gate + QREC_THREADS 1/2/8 reruns)"
cargo test --offline -q -p qrec-nn --test quant_equivalence

echo "==> serve front-end suites vs the event loop (incl. lock-order sanitizer)"
# The event loop is the default front end, so these suites exercise it
# end-to-end: protocol integration, framing robustness (partial frames,
# pipelining, slowloris, slow consumers), tracing, and crash recovery.
cargo test --offline -q -p qrec-serve --test serve_integration
cargo test --offline -q -p qrec-serve --test frontend_robustness
QREC_LOCK_ORDER_CHECK=1 cargo test --offline -q -p qrec-serve \
    --test serve_integration --test frontend_robustness \
    --test trace_e2e --test restart_recovery

echo "==> bench --smoke"
./scripts/bench.sh --smoke >/dev/null
python3 -m json.tool target/BENCH_tensor_smoke.json >/dev/null \
    || { echo "BENCH_tensor_smoke.json is not well-formed JSON"; exit 1; }
python3 -m json.tool target/BENCH_decode_smoke.json >/dev/null \
    || { echo "BENCH_decode_smoke.json is not well-formed JSON"; exit 1; }
python3 -m json.tool target/BENCH_store_smoke.json >/dev/null \
    || { echo "BENCH_store_smoke.json is not well-formed JSON"; exit 1; }
python3 -m json.tool target/BENCH_quant_smoke.json >/dev/null \
    || { echo "BENCH_quant_smoke.json is not well-formed JSON"; exit 1; }
python3 -m json.tool target/BENCH_serve_smoke.json >/dev/null \
    || { echo "BENCH_serve_smoke.json is not well-formed JSON"; exit 1; }
if [ -f BENCH_tensor.json ]; then
    python3 -m json.tool BENCH_tensor.json >/dev/null \
        || { echo "BENCH_tensor.json is not well-formed JSON"; exit 1; }
fi
if [ -f BENCH_decode.json ]; then
    python3 -m json.tool BENCH_decode.json >/dev/null \
        || { echo "BENCH_decode.json is not well-formed JSON"; exit 1; }
fi
if [ -f BENCH_store.json ]; then
    python3 -m json.tool BENCH_store.json >/dev/null \
        || { echo "BENCH_store.json is not well-formed JSON"; exit 1; }
fi
if [ -f BENCH_quant.json ]; then
    python3 -m json.tool BENCH_quant.json >/dev/null \
        || { echo "BENCH_quant.json is not well-formed JSON"; exit 1; }
fi
if [ -f BENCH_serve.json ]; then
    python3 -m json.tool BENCH_serve.json >/dev/null \
        || { echo "BENCH_serve.json is not well-formed JSON"; exit 1; }
fi
if [ -f BENCH_obs.json ]; then
    python3 -m json.tool BENCH_obs.json >/dev/null \
        || { echo "BENCH_obs.json is not well-formed JSON"; exit 1; }
fi

echo "==> obs overhead gate (bench_obs, budget ${QREC_OBS_OVERHEAD_MAX:-0.03})"
cargo build --offline --release -q -p qrec-bench --bin bench_obs
# Exits non-zero when the geomean on/off overhead exceeds the budget.
./target/release/bench_obs --out target/BENCH_obs_smoke.json
python3 -m json.tool target/BENCH_obs_smoke.json >/dev/null \
    || { echo "BENCH_obs_smoke.json is not well-formed JSON"; exit 1; }

echo "CI green."
