#!/usr/bin/env bash
# Reproducible GEMM + decode + durability + serving baselines (README
# "Performance", "Durability" and "Serving").
#
#   scripts/bench.sh              full run, writes BENCH_tensor.json,
#                                 BENCH_decode.json, BENCH_store.json,
#                                 BENCH_quant.json, BENCH_serve.json and
#                                 BENCH_obs.json at the repo root
#   scripts/bench.sh --smoke      tiny shapes, writes target/BENCH_*_smoke.json
#   QREC_THREADS=4 scripts/bench.sh   size the serving pool (bench pools stay 1 and 8)
#
# Everything builds offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --release -q -p qrec-bench \
    --bin bench_tensor --bin bench_decode --bin bench_store --bin bench_quant \
    --bin bench_serve --bin bench_obs
./target/release/bench_tensor "$@"
./target/release/bench_decode "$@"
./target/release/bench_store "$@"
./target/release/bench_quant "$@"
./target/release/bench_serve "$@"
./target/release/bench_obs "$@"

# In smoke mode, validate the extended report schema: every row must
# carry the per-rep latency distribution (best/p50/p95/p99/reps)
# alongside the legacy best-of-N keys.
if [[ " $* " == *" --smoke "* || "${1:-}" == "--smoke" ]]; then
    python3 - <<'PYEOF'
import json, sys

PCT_KEYS = {"best_s", "p50_s", "p95_s", "p99_s", "reps"}

def check_pct(obj, where):
    missing = PCT_KEYS - set(obj)
    if missing:
        sys.exit(f"{where}: missing percentile keys {sorted(missing)}")
    if not all(obj[k] >= 0 for k in PCT_KEYS):
        sys.exit(f"{where}: negative timing values: {obj}")
    if not obj["p50_s"] <= obj["p95_s"] <= obj["p99_s"]:
        sys.exit(f"{where}: percentiles not monotone: {obj}")

tensor = json.load(open("target/BENCH_tensor_smoke.json"))
for row in tensor["shapes"]:
    pct = row.get("percentiles")
    if pct is None:
        sys.exit(f"tensor shape {row.get('shape')}: no 'percentiles' object")
    for case, obj in pct.items():
        check_pct(obj, f"tensor shape {row.get('shape')} case {case}")

decode = json.load(open("target/BENCH_decode_smoke.json"))
for row in decode["rows"]:
    for key in ("reference_percentiles", "incremental_percentiles"):
        obj = row.get(key)
        if obj is None:
            sys.exit(f"decode row {row.get('label')}: no {key!r} object")
        check_pct(obj, f"decode row {row.get('label')} {key}")

store = json.load(open("target/BENCH_store_smoke.json"))
STORE_APPEND_KEYS = {"policy", "p50_us", "p99_us", "appends_per_s"}
policies = set()
for row in store["append"]:
    missing = STORE_APPEND_KEYS - set(row)
    if missing:
        sys.exit(f"store append row {row.get('policy')}: missing keys {sorted(missing)}")
    if not 0 <= row["p50_us"] <= row["p99_us"]:
        sys.exit(f"store append row {row['policy']}: quantiles not monotone: {row}")
    policies.add(row["policy"])
if not {"always", "never"} <= policies:
    sys.exit(f"store append rows must cover the fsync policy range, got {sorted(policies)}")
for row in store["recovery"]:
    if row.get("recovery_ms", -1) < 0 or "records" not in row:
        sys.exit(f"store recovery row malformed: {row}")
    if row.get("recovered_records") != row["records"]:
        sys.exit(f"store recovery dropped records: {row}")

quant = json.load(open("target/BENCH_quant_smoke.json"))
QUANT_ROW_KEYS = {"speedup", "topk_agreement", "mem_ratio"}
if not quant["rows"]:
    sys.exit("quant report has no rows")
for row in quant["rows"]:
    missing = QUANT_ROW_KEYS - set(row)
    if missing:
        sys.exit(f"quant row {row.get('label')}: missing keys {sorted(missing)}")
    if not 0.0 <= row["topk_agreement"] <= 1.0:
        sys.exit(f"quant row {row['label']}: agreement out of range: {row['topk_agreement']}")
    if row["speedup"] <= 0 or row["mem_ratio"] <= 0:
        sys.exit(f"quant row {row['label']}: non-positive ratio: {row}")
    for key in ("f32_percentiles", "quant_percentiles"):
        obj = row.get(key)
        if obj is None:
            sys.exit(f"quant row {row.get('label')}: no {key!r} object")
        check_pct(obj, f"quant row {row.get('label')} {key}")

serve = json.load(open("target/BENCH_serve_smoke.json"))
SERVE_ROW_KEYS = {"frontend", "mode", "conns", "throughput_rps",
                  "p50_us", "p95_us", "p99_us", "server_threads",
                  "sent", "received", "errors"}
if not serve["rows"]:
    sys.exit("serve report has no rows")
frontends = set()
for row in serve["rows"]:
    missing = SERVE_ROW_KEYS - set(row)
    if missing:
        sys.exit(f"serve row {row.get('frontend')}/{row.get('conns')}: "
                 f"missing keys {sorted(missing)}")
    if not 0 <= row["p50_us"] <= row["p95_us"] <= row["p99_us"]:
        sys.exit(f"serve row {row['frontend']}/{row['conns']}: "
                 f"quantiles not monotone: {row}")
    if row["mode"] == "closed" and row["received"] == 0:
        sys.exit(f"serve row {row['frontend']}/{row['conns']}: no responses")
    frontends.add(row["frontend"])
if frontends != {"eventloop", "threadpool"}:
    sys.exit(f"serve rows must cover both front ends, got {sorted(frontends)}")
idle = serve["idle"]
if idle["held"] < idle["conns"]:
    sys.exit(f"serve idle herd dropped connections: {idle}")
if idle["server_threads_held"] > idle["server_threads_before"] + 2:
    sys.exit(f"serve idle herd grew the thread count: {idle}")
if not serve["slow_client"]["disconnected"]:
    sys.exit(f"serve slow client was not disconnected: {serve['slow_client']}")

obs = json.load(open("target/BENCH_obs_smoke.json"))
OBS_TOP_KEYS = {"scenarios", "geomean_ratio", "overhead", "pass", "micro", "threshold"}
missing = OBS_TOP_KEYS - set(obs)
if missing:
    sys.exit(f"obs report: missing keys {sorted(missing)}")
if not obs["scenarios"]:
    sys.exit("obs report has no scenarios")
OBS_SCENARIO_KEYS = {"label", "median_ratio", "round_ratios",
                     "last_round_fast_half_mean_on_s",
                     "last_round_fast_half_mean_off_s"}
for row in obs["scenarios"]:
    missing = OBS_SCENARIO_KEYS - set(row)
    if missing:
        sys.exit(f"obs scenario {row.get('label')}: missing keys {sorted(missing)}")
    if not row["round_ratios"]:
        sys.exit(f"obs scenario {row['label']}: no round ratios")
    if row["median_ratio"] <= 0:
        sys.exit(f"obs scenario {row['label']}: non-positive median ratio: {row}")
for name in ("window_record", "sketch_update"):
    m = obs["micro"].get(name)
    if m is None:
        sys.exit(f"obs micro section missing {name!r}")
    if m.get("best_ns_per_op", -1) <= 0 or m.get("p50_ns_per_op", -1) <= 0:
        sys.exit(f"obs micro {name}: non-positive ns/op: {m}")
    pct_obj = m.get("percentiles")
    if pct_obj is None:
        sys.exit(f"obs micro {name}: no 'percentiles' object")
    check_pct(pct_obj, f"obs micro {name}")
if not obs["pass"]:
    sys.exit(f"obs overhead gate failed: overhead {obs['overhead']:.4f} "
             f"> threshold {obs['threshold']:.4f}")

print("bench.sh: extended schema OK "
      f"({len(tensor['shapes'])} tensor shapes, {len(decode['rows'])} decode rows, "
      f"{len(store['append'])}+{len(store['recovery'])} store rows, "
      f"{len(quant['rows'])} quant rows, {len(serve['rows'])} serve rows, "
      f"{len(obs['scenarios'])} obs scenarios)")
PYEOF
fi
