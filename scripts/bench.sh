#!/usr/bin/env bash
# Reproducible GEMM + decode performance baselines (README "Performance").
#
#   scripts/bench.sh              full run, writes BENCH_tensor.json and
#                                 BENCH_decode.json at the repo root
#   scripts/bench.sh --smoke      tiny shapes, writes target/BENCH_*_smoke.json
#   QREC_THREADS=4 scripts/bench.sh   size the serving pool (bench pools stay 1 and 8)
#
# Everything builds offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --release -q -p qrec-bench --bin bench_tensor --bin bench_decode
./target/release/bench_tensor "$@"
./target/release/bench_decode "$@"

# In smoke mode, validate the extended report schema: every row must
# carry the per-rep latency distribution (best/p50/p95/p99/reps)
# alongside the legacy best-of-N keys.
if [[ " $* " == *" --smoke "* || "${1:-}" == "--smoke" ]]; then
    python3 - <<'PYEOF'
import json, sys

PCT_KEYS = {"best_s", "p50_s", "p95_s", "p99_s", "reps"}

def check_pct(obj, where):
    missing = PCT_KEYS - set(obj)
    if missing:
        sys.exit(f"{where}: missing percentile keys {sorted(missing)}")
    if not all(obj[k] >= 0 for k in PCT_KEYS):
        sys.exit(f"{where}: negative timing values: {obj}")
    if not obj["p50_s"] <= obj["p95_s"] <= obj["p99_s"]:
        sys.exit(f"{where}: percentiles not monotone: {obj}")

tensor = json.load(open("target/BENCH_tensor_smoke.json"))
for row in tensor["shapes"]:
    pct = row.get("percentiles")
    if pct is None:
        sys.exit(f"tensor shape {row.get('shape')}: no 'percentiles' object")
    for case, obj in pct.items():
        check_pct(obj, f"tensor shape {row.get('shape')} case {case}")

decode = json.load(open("target/BENCH_decode_smoke.json"))
for row in decode["rows"]:
    for key in ("reference_percentiles", "incremental_percentiles"):
        obj = row.get(key)
        if obj is None:
            sys.exit(f"decode row {row.get('label')}: no {key!r} object")
        check_pct(obj, f"decode row {row.get('label')} {key}")

print("bench.sh: extended schema OK "
      f"({len(tensor['shapes'])} tensor shapes, {len(decode['rows'])} decode rows)")
PYEOF
fi
