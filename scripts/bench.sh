#!/usr/bin/env bash
# Reproducible GEMM + decode performance baseline (README "Performance").
#
#   scripts/bench.sh              full run, writes BENCH_tensor.json at repo root
#   scripts/bench.sh --smoke      tiny shapes, writes target/BENCH_tensor_smoke.json
#   QREC_THREADS=4 scripts/bench.sh   size the serving pool (bench pools stay 1 and 8)
#
# Everything builds offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --release -q -p qrec-bench --bin bench_tensor
exec ./target/release/bench_tensor "$@"
