#!/usr/bin/env bash
# Reproducible GEMM + decode performance baselines (README "Performance").
#
#   scripts/bench.sh              full run, writes BENCH_tensor.json and
#                                 BENCH_decode.json at the repo root
#   scripts/bench.sh --smoke      tiny shapes, writes target/BENCH_*_smoke.json
#   QREC_THREADS=4 scripts/bench.sh   size the serving pool (bench pools stay 1 and 8)
#
# Everything builds offline against the vendored shims in shims/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --release -q -p qrec-bench --bin bench_tensor --bin bench_decode
./target/release/bench_tensor "$@"
./target/release/bench_decode "$@"
