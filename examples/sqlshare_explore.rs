//! Exploring a multi-tenant (SQLShare-like) workload: shows why the
//! `popular` baseline collapses when every user uploads their own
//! dataset, and how the workload-aware model adapts — the paper's
//! Section 6.3.2 finding.
//!
//! ```sh
//! cargo run --release --example sqlshare_explore
//! ```

use qrec::core::prelude::*;
use qrec::workload::gen::{generate, WorkloadProfile};
use qrec::workload::stats::workload_stats;
use qrec::workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut profile = WorkloadProfile::sqlshare();
    profile.sessions = 200;
    let (workload, _catalog) = generate(&profile, 2024);
    let stats = workload_stats(&workload);
    println!("SQLShare-like workload:");
    println!(
        "  sessions: {}  datasets: {}",
        stats.sessions, stats.datasets
    );
    println!(
        "  tables: {}  columns: {}  functions: {}  literals: {}",
        stats.tables, stats.columns, stats.functions, stats.literals
    );

    let mut rng = StdRng::seed_from_u64(11);
    let split = Split::paper(workload.pairs(), &mut rng);
    let test = &split.test;

    // Baselines.
    let mut popular = PopularBaseline::fit(&split.train);
    let mut naive = NaiveQi::fit(&split.train);
    let mut querie = Querie::fit(&split.train, 10);

    // A workload-aware model (small training budget: this is a demo).
    let mut cfg = RecommenderConfig::new(Arch::Transformer, SeqMode::Aware);
    // Small corpus: afford real training (still ~2 minutes on one core).
    cfg.train.epochs = 30;
    cfg.train.patience = 5;
    println!(
        "\ntraining {} on {} pairs …",
        cfg.label(),
        split.train.len()
    );
    let (mut rec, _) = Recommender::train(&split, &workload, cfg);

    println!(
        "\ntable-fragment prediction (top-3), micro F1 on {} test pairs:",
        test.len()
    );
    let rows: Vec<(String, PerKind<SetMetrics>)> = vec![
        ("popular".into(), eval_n_fragments(&mut popular, test, 3)),
        ("naive-Qi".into(), eval_n_fragments(&mut naive, test, 3)),
        ("querie".into(), eval_n_fragments(&mut querie, test, 3)),
        (rec.name(), eval_n_fragments(&mut rec, test, 3)),
    ];
    println!(
        "  {:<24} {:>8} {:>8} {:>8} {:>8}",
        "method", "table", "column", "function", "literal"
    );
    for (name, m) in &rows {
        println!(
            "  {:<24} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name,
            m.table.f1(),
            m.column.f1(),
            m.function.f1(),
            m.literal.f1()
        );
    }

    // The headline contrast: popular's table F1 vs the model's.
    let popular_f1 = rows[0].1.table.f1();
    let model_f1 = rows[3].1.table.f1();
    println!("\npopular baseline table F1 = {popular_f1:.3}; workload-aware model = {model_f1:.3}");
    println!(
        "(on a single-schema SDSS-like workload the popular baseline is far \
         stronger — run the fig12 experiment to see both.)"
    );
}
