//! Quickstart: train a small workload-aware recommender and ask it for
//! next-query suggestions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qrec::core::prelude::*;
use qrec::workload::gen::{generate, WorkloadProfile};
use qrec::workload::Split;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A workload: normally this comes from your query logs; here we
    //    synthesise an SDSS-flavoured one (scaled down for a quick run).
    let mut profile = WorkloadProfile::sdss();
    profile.sessions = 220; // keep the example snappy
    let (workload, _catalog) = generate(&profile, 42);
    println!(
        "workload: {} sessions, {} query pairs",
        workload.sessions.len(),
        workload.pair_count()
    );

    // 2. The paper's 80/10/10 split over consecutive query pairs.
    let mut rng = StdRng::seed_from_u64(7);
    let split = Split::paper(workload.pairs(), &mut rng);

    // 3. Offline training (step 1): seq2seq on (Q_i, Q_{i+1}).
    let mut cfg = RecommenderConfig::new(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 3;
    println!("training a {} …", cfg.label());
    let (mut rec, report) = Recommender::train(&split, &workload, cfg);
    println!(
        "  {} epochs, best val loss {:.3}, {:.1?} wall clock, {} parameters",
        report.epoch_losses.len(),
        report.best_val_loss(),
        report.train_time,
        rec.param_count()
    );

    // 4. Fine-tune the template classifier (step 2).
    let mut clf_cfg = TemplateClfConfig::default();
    clf_cfg.train.epochs = 3;
    let (mut clf, _) = TemplateModel::train_fine_tuned(&rec, &split, clf_cfg);
    println!(
        "  fine-tuned classifier over {} template classes",
        clf.classes().len()
    );

    // 5. Online recommendation (steps 3–4) for a held-out session query.
    let pair = &split.test[0];
    println!("\ncurrent query (Q_i):\n  {}", pair.current.sql);
    println!("actual next query (Q_{{i+1}}):\n  {}", pair.next.sql);

    let frags = rec.predict_n(&pair.current, 3);
    println!("\nrecommended fragments for the next query:");
    println!("  tables:    {:?}", frags.table);
    println!("  columns:   {:?}", frags.column);
    println!("  functions: {:?}", frags.function);
    println!("  literals:  {:?}", frags.literal);

    println!("\nrecommended templates:");
    for (i, (t, p)) in clf.predict_ranked(&pair.current, 3).into_iter().enumerate() {
        println!("  {}. [p={:.2}] {}", i + 1, p, t.statement());
    }
    println!(
        "\nactual next template:\n  {}",
        pair.next.template.statement()
    );
}
