//! Template autocomplete: type (or pipe) a SQL query and get ranked
//! next-query *templates* plus fragment suggestions to fill them — the
//! paper's end-user interaction (Example 3: template + fragments beats a
//! fully-specified query).
//!
//! ```sh
//! echo "SELECT * FROM StarTag" | cargo run --release --example template_autocomplete
//! # or interactively:
//! cargo run --release --example template_autocomplete
//! ```

use qrec::core::prelude::*;
use qrec::workload::gen::{generate, WorkloadProfile};
use qrec::workload::{QueryRecord, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, BufRead, IsTerminal, Write};

fn main() {
    let mut profile = WorkloadProfile::sdss();
    profile.sessions = 220;
    let (workload, _catalog) = generate(&profile, 7);
    let mut rng = StdRng::seed_from_u64(1);
    let split = Split::paper(workload.pairs(), &mut rng);

    let mut cfg = RecommenderConfig::new(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 3;
    eprintln!("training recommendation models (one-time setup) …");
    let (mut rec, _) = Recommender::train(&split, &workload, cfg);
    let mut clf_cfg = TemplateClfConfig::default();
    clf_cfg.train.epochs = 3;
    let (mut clf, _) = TemplateModel::train_fine_tuned(&rec, &split, clf_cfg);
    eprintln!("ready. enter a SQL query (empty line to quit).\n");

    // Show the user what tables exist so interactive play is easy.
    let sample_q = &split.train[0].current;
    eprintln!("example input: {}", sample_q.sql);

    let stdin = io::stdin();
    let interactive = stdin.is_terminal();
    loop {
        if interactive {
            print!("sql> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        let record = match QueryRecord::new(line) {
            Ok(r) => r,
            Err(e) => {
                println!("  ! cannot parse that query: {e}");
                continue;
            }
        };

        println!("\nnext-query templates:");
        for (i, (t, p)) in clf.predict_ranked(&record, 3).into_iter().enumerate() {
            println!("  {}. [p={:.2}] {}", i + 1, p, t.statement());
        }
        let frags = rec.predict_n(&record, 4);
        println!("fragments to fill the placeholders:");
        println!("  Table     ← {:?}", frags.table);
        println!("  Column    ← {:?}", frags.column);
        println!("  Function  ← {:?}", frags.function);
        println!("  Literal   ← {:?}", frags.literal);
        println!();
        if !interactive {
            break;
        }
    }
}
