//! An interactive-style SQL assistant over an SDSS-like astronomy
//! workload: replays a held-out user session and shows, at every step,
//! what the recommender would have suggested *before* the user typed
//! their next query — the paper's motivating use case (Figure 1).
//!
//! ```sh
//! cargo run --release --example sdss_assistant
//! ```

use qrec::core::prelude::*;
use qrec::workload::gen::{generate, WorkloadProfile};
use qrec::workload::{Split, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut profile = WorkloadProfile::sdss();
    profile.sessions = 260;
    let (workload, _catalog) = generate(&profile, 99);

    // Hold out the last sessions entirely: the assistant must help users
    // it never saw.
    let n_train_sessions = workload.sessions.len() - 12;
    let mut train_w = Workload::new("sdss-train");
    train_w.sessions = workload.sessions[..n_train_sessions].to_vec();
    let held_out = &workload.sessions[n_train_sessions..];

    let mut rng = StdRng::seed_from_u64(3);
    let split = Split::random(train_w.pairs(), 0.9, 0.1, &mut rng);

    let mut cfg = RecommenderConfig::new(Arch::Transformer, SeqMode::Aware);
    cfg.train.epochs = 5;
    println!("training the assistant on {} pairs …", split.train.len());
    let (mut rec, _) = Recommender::train(&split, &train_w, cfg);
    let mut clf_cfg = TemplateClfConfig::default();
    clf_cfg.train.epochs = 8;
    clf_cfg.train.adam.lr = 6e-4;
    let (mut clf, _) = TemplateModel::train_fine_tuned(&rec, &split, clf_cfg);

    // Replay the longest held-out session.
    let session = held_out
        .iter()
        .max_by_key(|s| s.queries.len())
        .expect("held-out sessions");
    println!(
        "\nreplaying held-out session {} ({} queries)\n{}",
        session.id,
        session.queries.len(),
        "=".repeat(72)
    );

    let mut frag_hits = 0usize;
    let mut frag_total = 0usize;
    let mut tpl_hits = 0usize;
    let mut steps = 0usize;
    for pair in session.pairs() {
        steps += 1;
        println!("\nuser ran:\n  {}", pair.current.sql);

        let frags = rec.predict_n(pair.current, 3);
        let tpls = clf.predict_templates(pair.current, 3);
        println!(
            "assistant suggests tables {:?}, columns {:?}",
            frags.table, frags.column
        );
        if let Some(t) = tpls.first() {
            println!("assistant suggests template: {}", t.statement());
        }

        // Score the suggestions against what the user actually did next.
        let actual = &pair.next.fragments;
        for (kind, list) in [
            (qrec::sql::FragmentKind::Table, &frags.table),
            (qrec::sql::FragmentKind::Column, &frags.column),
        ] {
            for f in list {
                frag_total += 1;
                if actual.of(kind).contains(f) {
                    frag_hits += 1;
                }
            }
        }
        if tpls.contains(&pair.next.template) {
            tpl_hits += 1;
        }
        println!("user actually ran next:\n  {}", pair.next.sql);
    }

    println!("\n{}", "=".repeat(72));
    println!(
        "session summary: {}/{} suggested table/column fragments were used; \
         template hit in top-3 at {}/{} steps",
        frag_hits, frag_total, tpl_hits, steps
    );
}
