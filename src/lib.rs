//! `qrec` — umbrella crate re-exporting the workload-aware query
//! recommendation stack (EDBT 2023 reproduction).
//!
//! See [`qrec_core`] for the recommendation pipeline, [`qrec_workload`] for
//! workload generation and analysis, [`qrec_sql`] for the SQL substrate,
//! and [`qrec_nn`]/[`qrec_tensor`] for the deep-learning substrate.
pub use qrec_core as core;
pub use qrec_nn as nn;
pub use qrec_sql as sql;
pub use qrec_tensor as tensor;
pub use qrec_workload as workload;
